//! RSVP-style two-pass resource reservation (paper §3, stratum 4:
//! "out-of-band signaling protocols that perform distributed coordination
//! and (re)configuration of the lower strata. Examples are RSVP…").
//!
//! The protocol follows RSVP's shape without its full object model:
//!
//! * **PATH** messages travel sender → receiver through the routed
//!   topology, installing *path state* (the previous hop) at every node.
//! * **RESV** messages travel receiver → sender along the recorded
//!   reverse path; each hop runs **admission control** against the
//!   per-port bandwidth budget and installs *reservation state*.
//! * Both states are **soft**: they expire unless refreshed, and
//!   endpoints refresh on a timer (classic RSVP robustness).
//! * **PATH_TEAR** releases state early; **RESV_ERR** propagates
//!   admission failures back to the receiver.
//!
//! [`RsvpAgent`] is a [`NodeBehaviour`]:
//! it forwards ordinary data traffic like a router and interprets control
//! packets addressed to UDP port [`RSVP_PORT`].

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_sim::node::{decrement_ttl, NodeBehaviour, NodeCtx};

/// UDP port carrying reservation signaling.
pub const RSVP_PORT: u16 = 3455;

/// Identifies a reservation session end-to-end.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// The reservation request: a single-rate flow spec.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowSpec {
    /// Requested bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

/// Control message kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MsgKind {
    Path,
    Resv,
    PathTear,
    ResvErr,
    ResvConf,
}

impl MsgKind {
    fn to_u8(self) -> u8 {
        match self {
            MsgKind::Path => 1,
            MsgKind::Resv => 2,
            MsgKind::PathTear => 3,
            MsgKind::ResvErr => 4,
            MsgKind::ResvConf => 5,
        }
    }
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => MsgKind::Path,
            2 => MsgKind::Resv,
            3 => MsgKind::PathTear,
            4 => MsgKind::ResvErr,
            5 => MsgKind::ResvConf,
            _ => return None,
        })
    }
}

/// A decoded control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Msg {
    kind: MsgKind,
    session: SessionId,
    sender: Ipv4Addr,
    receiver: Ipv4Addr,
    bandwidth_bps: u64,
}

impl Msg {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 8 + 4 + 4 + 8);
        out.push(self.kind.to_u8());
        out.extend_from_slice(&self.session.0.to_be_bytes());
        out.extend_from_slice(&self.sender.octets());
        out.extend_from_slice(&self.receiver.octets());
        out.extend_from_slice(&self.bandwidth_bps.to_be_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 25 {
            return None;
        }
        Some(Self {
            kind: MsgKind::from_u8(buf[0])?,
            session: SessionId(u64::from_be_bytes(buf[1..9].try_into().ok()?)),
            sender: Ipv4Addr::new(buf[9], buf[10], buf[11], buf[12]),
            receiver: Ipv4Addr::new(buf[13], buf[14], buf[15], buf[16]),
            bandwidth_bps: u64::from_be_bytes(buf[17..25].try_into().ok()?),
        })
    }

    fn into_packet(self, from: Ipv4Addr, to: Ipv4Addr) -> Packet {
        PacketBuilder::udp_v4(&from.to_string(), &to.to_string(), RSVP_PORT, RSVP_PORT)
            .payload(&self.encode())
            .build()
    }
}

/// Per-session path state at a node.
#[derive(Clone, Copy, Debug)]
struct PathState {
    /// Port back towards the sender (where PATH arrived).
    prev_hop: u16,
    /// Expiry (ns).
    expires: u64,
}

/// Per-session reservation at a node.
#[derive(Clone, Copy, Debug)]
struct ResvState {
    /// Port towards the receiver (the data-path egress being reserved).
    egress: u16,
    bandwidth_bps: u64,
    expires: u64,
}

/// Role this agent plays for a session it originated.
#[derive(Clone, Copy, Debug)]
struct LocalSession {
    spec: FlowSpec,
    peer: Ipv4Addr,
    refreshing: bool,
}

/// Events surfaced to the application (tests/examples poll these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsvpEvent {
    /// A PATH for `session` reached this (receiver) node.
    PathArrived(SessionId),
    /// The reservation completed end-to-end (sender side).
    Established(SessionId),
    /// Admission failed somewhere along the path (receiver side).
    Refused(SessionId),
    /// Soft state for `session` expired at this node.
    Expired(SessionId),
}

/// Timer tokens.
const TOKEN_SWEEP: u64 = 1;
const TOKEN_REFRESH: u64 = 2;

/// Knobs for the soft-state machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RsvpConfig {
    /// Endpoint refresh period (ns).
    pub refresh_ns: u64,
    /// State lifetime as a multiple of the refresh period.
    pub lifetime_mult: u64,
    /// Soft-state sweep period (ns).
    pub sweep_ns: u64,
}

impl Default for RsvpConfig {
    fn default() -> Self {
        Self {
            refresh_ns: 30_000_000,
            lifetime_mult: 3,
            sweep_ns: 10_000_000,
        }
    }
}

/// An RSVP-capable router/host node.
///
/// Construct with the node's address and per-port reservable budgets,
/// add destination routes ([`route`](RsvpAgent::route)), then drive it
/// inside a [`Simulator`](netkit_sim::Simulator).
#[derive(Debug)]
pub struct RsvpAgent {
    addr: Ipv4Addr,
    routes: HashMap<Ipv4Addr, u16>,
    /// Reservable capacity per egress port.
    budgets: HashMap<u16, u64>,
    /// Currently allocated per egress port.
    allocated: HashMap<u16, u64>,
    path_state: HashMap<SessionId, PathState>,
    resv_state: HashMap<SessionId, ResvState>,
    /// Sessions this node originated (as sender).
    sending: HashMap<SessionId, LocalSession>,
    /// Sessions this node terminates (as receiver).
    receiving: HashMap<SessionId, LocalSession>,
    /// Sessions whose end-to-end establishment was already reported.
    established: std::collections::HashSet<SessionId>,
    events: Vec<RsvpEvent>,
    config: RsvpConfig,
    sweep_armed: bool,
    refresh_armed: bool,
    /// Data packets forwarded on a reserved session's path.
    pub data_forwarded: u64,
}

impl RsvpAgent {
    /// Creates an agent for `addr`.
    pub fn new(addr: Ipv4Addr, config: RsvpConfig) -> Self {
        Self {
            addr,
            routes: HashMap::new(),
            budgets: HashMap::new(),
            allocated: HashMap::new(),
            path_state: HashMap::new(),
            resv_state: HashMap::new(),
            sending: HashMap::new(),
            receiving: HashMap::new(),
            established: std::collections::HashSet::new(),
            events: Vec::new(),
            config,
            sweep_armed: false,
            refresh_armed: false,
            data_forwarded: 0,
        }
    }

    /// Adds a host route.
    pub fn route(&mut self, dst: Ipv4Addr, port: u16) -> &mut Self {
        self.routes.insert(dst, port);
        self
    }

    /// Sets the reservable budget of `port` to `bps`.
    pub fn budget(&mut self, port: u16, bps: u64) -> &mut Self {
        self.budgets.insert(port, bps);
        self
    }

    /// Bits per second currently reserved on `port`.
    pub fn allocated_on(&self, port: u16) -> u64 {
        self.allocated.get(&port).copied().unwrap_or(0)
    }

    /// Sessions with live reservation state at this node.
    pub fn reserved_sessions(&self) -> Vec<SessionId> {
        let mut v: Vec<SessionId> = self.resv_state.keys().copied().collect();
        v.sort();
        v
    }

    /// Drains the surfaced events.
    pub fn take_events(&mut self) -> Vec<RsvpEvent> {
        std::mem::take(&mut self.events)
    }

    /// Starts a reservation towards `receiver` (this node is the sender):
    /// emits the first PATH immediately and refreshes until
    /// [`teardown`](RsvpAgent::teardown).
    ///
    /// Call before the simulation runs or from a behaviour callback.
    pub fn open_session(&mut self, session: SessionId, receiver: Ipv4Addr, spec: FlowSpec) {
        self.sending.insert(
            session,
            LocalSession {
                spec,
                peer: receiver,
                refreshing: true,
            },
        );
    }

    /// Stops refreshing and emits PATH_TEAR on the next timer tick.
    pub fn teardown(&mut self, session: SessionId) {
        if let Some(s) = self.sending.get_mut(&session) {
            s.refreshing = false;
        }
    }

    fn admit(&mut self, port: u16, bps: u64) -> bool {
        let cap = self.budgets.get(&port).copied().unwrap_or(u64::MAX);
        let used = self.allocated.entry(port).or_insert(0);
        if *used + bps <= cap {
            *used += bps;
            true
        } else {
            false
        }
    }

    fn release(&mut self, session: SessionId) {
        if let Some(r) = self.resv_state.remove(&session) {
            if let Some(used) = self.allocated.get_mut(&r.egress) {
                *used = used.saturating_sub(r.bandwidth_bps);
            }
        }
    }

    /// Arms the lapsed timers that current state requires. Timers lapse
    /// (rather than re-arm forever) once their state drains, so an idle
    /// agent schedules no events.
    fn arm_timers(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.sweep_armed && (!self.path_state.is_empty() || !self.resv_state.is_empty()) {
            self.sweep_armed = true;
            ctx.set_timer(self.config.sweep_ns, TOKEN_SWEEP);
        }
        if !self.refresh_armed && !self.sending.is_empty() {
            self.refresh_armed = true;
            ctx.set_timer(0, TOKEN_REFRESH);
        }
    }

    fn lifetime(&self) -> u64 {
        self.config.refresh_ns * self.config.lifetime_mult
    }

    fn emit_towards(&mut self, ctx: &mut NodeCtx<'_>, to: Ipv4Addr, msg: Msg) {
        if to == self.addr {
            return;
        }
        if let Some(&port) = self.routes.get(&to) {
            ctx.emit(port, msg.into_packet(self.addr, to));
        }
    }

    fn handle_control(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, msg: Msg) {
        let now = ctx.now().as_nanos();
        match msg.kind {
            MsgKind::Path => {
                self.path_state.insert(
                    msg.session,
                    PathState {
                        prev_hop: ingress,
                        expires: now + self.lifetime(),
                    },
                );
                if msg.receiver == self.addr {
                    // Receiver: answer (or re-answer) with RESV.
                    if !self.receiving.contains_key(&msg.session) {
                        self.events.push(RsvpEvent::PathArrived(msg.session));
                        self.receiving.insert(
                            msg.session,
                            LocalSession {
                                spec: FlowSpec {
                                    bandwidth_bps: msg.bandwidth_bps,
                                },
                                peer: msg.sender,
                                refreshing: true,
                            },
                        );
                    }
                    let resv = Msg {
                        kind: MsgKind::Resv,
                        ..msg
                    };
                    ctx.emit(ingress, resv.into_packet(self.addr, msg.sender));
                } else {
                    self.emit_towards(ctx, msg.receiver, msg);
                }
            }
            MsgKind::Resv => {
                if msg.sender == self.addr {
                    // Reservation completed end-to-end; refreshes after
                    // the first confirmation are silent.
                    if self.established.insert(msg.session) {
                        self.events.push(RsvpEvent::Established(msg.session));
                    }
                    let conf = Msg {
                        kind: MsgKind::ResvConf,
                        ..msg
                    };
                    self.emit_towards(ctx, msg.receiver, conf);
                    return;
                }
                // Transit node: reserve on the egress the data path uses
                // (the port RESV arrived on — data flows the other way).
                let egress = ingress;
                let already = self.resv_state.contains_key(&msg.session);
                if already {
                    // Refresh.
                    if let Some(r) = self.resv_state.get_mut(&msg.session) {
                        r.expires = now + self.config.refresh_ns * self.config.lifetime_mult;
                    }
                } else if !self.admit(egress, msg.bandwidth_bps) {
                    let err = Msg {
                        kind: MsgKind::ResvErr,
                        ..msg
                    };
                    ctx.emit(ingress, err.into_packet(self.addr, msg.receiver));
                    return;
                } else {
                    self.resv_state.insert(
                        msg.session,
                        ResvState {
                            egress,
                            bandwidth_bps: msg.bandwidth_bps,
                            expires: now + self.lifetime(),
                        },
                    );
                }
                // Continue towards the sender along stored path state.
                if let Some(ps) = self.path_state.get(&msg.session).copied() {
                    ctx.emit(ps.prev_hop, msg.into_packet(self.addr, msg.sender));
                }
            }
            MsgKind::PathTear => {
                self.path_state.remove(&msg.session);
                self.release(msg.session);
                if msg.receiver == self.addr {
                    self.receiving.remove(&msg.session);
                } else {
                    self.emit_towards(ctx, msg.receiver, msg);
                }
            }
            MsgKind::ResvErr => {
                if msg.receiver == self.addr {
                    self.events.push(RsvpEvent::Refused(msg.session));
                    self.receiving.remove(&msg.session);
                } else if let Some(&port) = self.routes.get(&msg.receiver) {
                    ctx.emit(port, msg.into_packet(self.addr, msg.receiver));
                }
            }
            MsgKind::ResvConf => {
                if msg.receiver != self.addr {
                    self.emit_towards(ctx, msg.receiver, msg);
                }
            }
        }
    }

    fn forward_data(&mut self, ctx: &mut NodeCtx<'_>, mut pkt: Packet) {
        let Ok(ip) = pkt.ipv4() else {
            ctx.drop_packet(pkt);
            return;
        };
        if ip.dst == self.addr {
            ctx.deliver_local(pkt);
            return;
        }
        let Some(&port) = self.routes.get(&ip.dst) else {
            ctx.drop_packet(pkt);
            return;
        };
        if decrement_ttl(&mut pkt) {
            self.data_forwarded += 1;
            ctx.emit(port, pkt);
        } else {
            ctx.drop_packet(pkt);
        }
    }
}

impl NodeBehaviour for RsvpAgent {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkt: Packet) {
        self.arm_timers(ctx);
        let control = pkt
            .udp_v4()
            .ok()
            .filter(|u| u.dst_port == RSVP_PORT)
            .and_then(|_| pkt.udp_payload_v4().ok().and_then(Msg::decode));
        match control {
            Some(msg) => self.handle_control(ctx, ingress, msg),
            None => self.forward_data(ctx, pkt),
        }
        // Handling may have created state that needs sweeping/refreshing.
        self.arm_timers(ctx);
    }

    /// Native batch path: one timer arm around the whole batch instead
    /// of two per packet. Control and data packets keep their relative
    /// order — a RESV riding behind the data it reserves for is
    /// handled after it, exactly as on the per-packet path.
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkts: Vec<Packet>) {
        self.arm_timers(ctx);
        for pkt in pkts {
            let control = pkt
                .udp_v4()
                .ok()
                .filter(|u| u.dst_port == RSVP_PORT)
                .and_then(|_| pkt.udp_payload_v4().ok().and_then(Msg::decode));
            match control {
                Some(msg) => self.handle_control(ctx, ingress, msg),
                None => self.forward_data(ctx, pkt),
            }
        }
        self.arm_timers(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let now = ctx.now().as_nanos();
        match token {
            TOKEN_SWEEP => {
                // The maps iterate in RandomState order; sort so the
                // expiry events (and anything downstream of them) come
                // out the same on every run — the simulator's
                // bit-for-bit replay contract covers signaling too.
                let mut expired_paths: Vec<SessionId> = self
                    .path_state
                    .iter()
                    .filter(|(_, s)| s.expires <= now)
                    .map(|(id, _)| *id)
                    .collect();
                expired_paths.sort_unstable();
                for id in expired_paths {
                    self.path_state.remove(&id);
                    self.events.push(RsvpEvent::Expired(id));
                }
                let mut expired_resv: Vec<SessionId> = self
                    .resv_state
                    .iter()
                    .filter(|(_, s)| s.expires <= now)
                    .map(|(id, _)| *id)
                    .collect();
                expired_resv.sort_unstable();
                for id in expired_resv {
                    self.release(id);
                    self.events.push(RsvpEvent::Expired(id));
                }
                if self.path_state.is_empty() && self.resv_state.is_empty() {
                    self.sweep_armed = false; // lapse until new state appears
                } else {
                    ctx.set_timer(self.config.sweep_ns, TOKEN_SWEEP);
                }
            }
            TOKEN_REFRESH => {
                // Sorted for the same reason as the sweep: refresh
                // PATHs must hit the wire in a reproducible order.
                let mut sessions: Vec<(SessionId, LocalSession)> =
                    self.sending.iter().map(|(id, s)| (*id, *s)).collect();
                sessions.sort_unstable_by_key(|(id, _)| *id);
                for (id, s) in sessions {
                    if s.refreshing {
                        let path = Msg {
                            kind: MsgKind::Path,
                            session: id,
                            sender: self.addr,
                            receiver: s.peer,
                            bandwidth_bps: s.spec.bandwidth_bps,
                        };
                        self.emit_towards(ctx, s.peer, path);
                    } else {
                        let tear = Msg {
                            kind: MsgKind::PathTear,
                            session: id,
                            sender: self.addr,
                            receiver: s.peer,
                            bandwidth_bps: s.spec.bandwidth_bps,
                        };
                        self.emit_towards(ctx, s.peer, tear);
                        self.sending.remove(&id);
                    }
                }
                if self.sending.is_empty() {
                    self.refresh_armed = false; // lapse until a new session opens
                } else {
                    ctx.set_timer(self.config.refresh_ns, TOKEN_REFRESH);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "rsvp"
    }
}

/// Convenience: the address of an [`RsvpAgent`] as `IpAddr`.
pub fn addr_of(agent: &RsvpAgent) -> IpAddr {
    IpAddr::V4(agent.addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_sim::link::LinkSpec;
    use netkit_sim::Simulator;

    /// Builds a line of RSVP agents `10.0.0.1 … 10.0.0.n`, with routes
    /// and per-port budgets of `budget_bps`.
    fn rsvp_line(sim: &mut Simulator, n: usize, budget_bps: u64) -> Vec<netkit_sim::node::NodeId> {
        let addr = |i: usize| Ipv4Addr::new(10, 0, 0, (i + 1) as u8);
        let mut ids = Vec::new();
        for i in 0..n {
            let agent = RsvpAgent::new(
                addr(i),
                RsvpConfig {
                    refresh_ns: 1_000_000,
                    lifetime_mult: 3,
                    sweep_ns: 500_000,
                },
            );
            ids.push(sim.add_node(Box::new(agent)));
        }
        for w in ids.windows(2) {
            sim.connect(w[0], w[1], LinkSpec::lan());
        }
        // Routes: node i reaches lower addresses via port 0 (except node
        // 0), higher via its last port. On a line, interior nodes have
        // port 0 = left, port 1 = right; node 0 has only port 0 = right.
        for (i, &node) in ids.iter().enumerate() {
            let left = if i == 0 { None } else { Some(0u16) };
            let right = if i == n - 1 {
                None
            } else if i == 0 {
                Some(0u16)
            } else {
                Some(1u16)
            };
            let agent = sim.node_behaviour_mut::<RsvpAgent>(node).unwrap();
            for j in 0..n {
                if j < i {
                    if let Some(p) = left {
                        agent.route(addr(j), p);
                    }
                } else if j > i {
                    if let Some(p) = right {
                        agent.route(addr(j), p);
                    }
                }
            }
            for p in [left, right].into_iter().flatten() {
                agent.budget(p, budget_bps);
            }
        }
        ids
    }

    fn kick(sim: &mut Simulator, node: netkit_sim::node::NodeId) {
        // Agents arm their timers on first packet; poke each endpoint.
        let dummy = PacketBuilder::udp_v4("10.9.9.9", "10.9.9.8", 1, 1).build();
        sim.inject_after(node, 0, dummy);
    }

    #[test]
    fn reservation_establishes_over_four_hops() {
        let mut sim = Simulator::new(1);
        let ids = rsvp_line(&mut sim, 4, 10_000_000);
        let session = SessionId(42);
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .open_session(
                session,
                Ipv4Addr::new(10, 0, 0, 4),
                FlowSpec {
                    bandwidth_bps: 1_000_000,
                },
            );
        kick(&mut sim, ids[0]);
        sim.run_for(5_000_000);
        let sender = sim.node_behaviour_mut::<RsvpAgent>(ids[0]).unwrap();
        assert!(sender
            .take_events()
            .contains(&RsvpEvent::Established(session)));
        // Transit nodes hold reservation state on the receiver-facing port.
        for &mid in &ids[1..3] {
            let agent = sim.node_behaviour_mut::<RsvpAgent>(mid).unwrap();
            assert_eq!(agent.reserved_sessions(), [session]);
            assert_eq!(agent.allocated_on(1), 1_000_000);
        }
        // Receiver saw the PATH.
        let receiver = sim.node_behaviour_mut::<RsvpAgent>(ids[3]).unwrap();
        assert!(receiver
            .take_events()
            .contains(&RsvpEvent::PathArrived(session)));
    }

    #[test]
    fn admission_rejects_over_budget() {
        let mut sim = Simulator::new(1);
        let ids = rsvp_line(&mut sim, 3, 1_500_000);
        // First session takes 1 Mbit/s of the 1.5 Mbit/s budget.
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .open_session(
                SessionId(1),
                Ipv4Addr::new(10, 0, 0, 3),
                FlowSpec {
                    bandwidth_bps: 1_000_000,
                },
            );
        // Second wants another 1 Mbit/s: must be refused.
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .open_session(
                SessionId(2),
                Ipv4Addr::new(10, 0, 0, 3),
                FlowSpec {
                    bandwidth_bps: 1_000_000,
                },
            );
        kick(&mut sim, ids[0]);
        sim.run_for(5_000_000);
        let receiver = sim.node_behaviour_mut::<RsvpAgent>(ids[2]).unwrap();
        let events = receiver.take_events();
        assert!(
            events.contains(&RsvpEvent::Refused(SessionId(2)))
                || events.contains(&RsvpEvent::Refused(SessionId(1))),
            "one of the two competing sessions is refused: {events:?}"
        );
        let mid = sim.node_behaviour_mut::<RsvpAgent>(ids[1]).unwrap();
        assert_eq!(mid.reserved_sessions().len(), 1, "only one fits the budget");
        assert_eq!(mid.allocated_on(1), 1_000_000);
    }

    #[test]
    fn soft_state_expires_without_refresh() {
        let mut sim = Simulator::new(1);
        let ids = rsvp_line(&mut sim, 3, 10_000_000);
        let session = SessionId(9);
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .open_session(
                session,
                Ipv4Addr::new(10, 0, 0, 3),
                FlowSpec {
                    bandwidth_bps: 500_000,
                },
            );
        kick(&mut sim, ids[0]);
        sim.run_for(2_000_000);
        assert_eq!(
            sim.node_behaviour_mut::<RsvpAgent>(ids[1])
                .unwrap()
                .reserved_sessions(),
            [session]
        );
        // Stop refreshing (teardown also sends PATH_TEAR, so instead we
        // simulate sender death: drop its sending state outright).
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .sending
            .clear();
        // Lifetime is 3 × 1ms; run well past it.
        sim.run_for(10_000_000);
        let mid = sim.node_behaviour_mut::<RsvpAgent>(ids[1]).unwrap();
        assert!(mid.reserved_sessions().is_empty(), "state must expire");
        assert_eq!(mid.allocated_on(1), 0, "bandwidth returned");
    }

    #[test]
    fn teardown_releases_immediately() {
        let mut sim = Simulator::new(1);
        let ids = rsvp_line(&mut sim, 3, 10_000_000);
        let session = SessionId(5);
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .open_session(
                session,
                Ipv4Addr::new(10, 0, 0, 3),
                FlowSpec {
                    bandwidth_bps: 500_000,
                },
            );
        kick(&mut sim, ids[0]);
        sim.run_for(2_500_000);
        sim.node_behaviour_mut::<RsvpAgent>(ids[0])
            .unwrap()
            .teardown(session);
        sim.run_for(2_000_000);
        let mid = sim.node_behaviour_mut::<RsvpAgent>(ids[1]).unwrap();
        assert!(mid.reserved_sessions().is_empty());
        assert_eq!(mid.allocated_on(1), 0);
    }

    #[test]
    fn data_traffic_still_forwards() {
        let mut sim = Simulator::new(1);
        let ids = rsvp_line(&mut sim, 3, 10_000_000);
        let data = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.3", 7_000, 7_001)
            .payload(b"data")
            .build();
        sim.inject_after(ids[0], 0, data);
        let stats = sim.run_to_idle();
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn message_codec_roundtrip_and_rejects_junk() {
        let msg = Msg {
            kind: MsgKind::Resv,
            session: SessionId(77),
            sender: Ipv4Addr::new(10, 0, 0, 1),
            receiver: Ipv4Addr::new(10, 0, 0, 9),
            bandwidth_bps: 123_456,
        };
        let decoded = Msg::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert!(Msg::decode(b"short").is_none());
        let mut bad = msg.encode();
        bad[0] = 99;
        assert!(Msg::decode(&bad).is_none());
    }
}
