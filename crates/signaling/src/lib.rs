//! # netkit-signaling — stratum-4 coordination
//!
//! The paper's top stratum (paper §3): "out-of-band signaling protocols
//! that perform distributed coordination and (re)configuration of the
//! lower strata. Examples are RSVP, or protocols that coordinate resource
//! allocation on a set of routers participating in a dynamic private
//! virtual network, as employed by systems like Genesis."
//!
//! * [`rsvp`] — PATH/RESV two-pass reservation with per-hop admission
//!   control and soft state, running as a
//!   [`NodeBehaviour`](netkit_sim::node::NodeBehaviour) over the
//!   simulated network.
//! * [`genesis`] — spawning networks: dynamic private virtual networks
//!   with their own addressing, routing, and QoS share, each realised as
//!   per-node virtual routers built from real Router-CF components (the
//!   paper's Columbia collaboration, §7).

#![warn(missing_docs)]

pub mod genesis;
pub mod rsvp;

pub use genesis::{Genesis, GenesisError, SpawnReport, VirtnetDescriptor, VirtnetId};
pub use rsvp::{FlowSpec, RsvpAgent, RsvpConfig, RsvpEvent, SessionId, RSVP_PORT};
