//! Genesis-style **spawning networks** (paper §7: "This system supports
//! dynamic private virtual networks, each potentially with its own
//! semantics (addressing, routing, QoS, etc.) … particularly interesting
//! to us as an exemplar of a richly functioned stratum 4 system").
//!
//! [`Genesis`] spawns a *virtual network* over a subset of substrate
//! nodes. Spawning a virtnet builds, on every member node, a **virtual
//! router** out of real Router-CF components: an OpenCOM capsule hosting
//! a classifier (routing on the virtnet's own addressing) feeding
//! per-egress queues; the queues of all virtnets sharing a substrate port
//! are drained by one **WFQ link scheduler** whose weights realise each
//! virtnet's QoS share. Virtnets nest: a child is spawned over a subset
//! of its parent's nodes and receives a slice of the parent's share —
//! exactly the Genesis "spawning" hierarchy, here re-engineered on the
//! uniform component model (the paper's collaboration with Columbia).

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use opencom::capsule::Capsule;
use opencom::cf::Principal;
use opencom::error::Error as OcError;
use opencom::runtime::Runtime;

use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_router::api::{
    FilterPattern, FilterSpec, IClassifier, IPacketPull, IPacketPush, IPACKET_PULL, IPACKET_PUSH,
};
use netkit_router::cf::RouterCf;
use netkit_router::elements::{ClassifierEngine, DropTailQueue, Scheduler, WfqScheduler};

/// Identifies a spawned virtual network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VirtnetId(pub u64);

/// What a virtual network should look like.
#[derive(Clone, Debug)]
pub struct VirtnetDescriptor {
    /// Human-readable name.
    pub name: String,
    /// The virtnet's private address prefix; member `k` (in member-list
    /// order) receives `base + k + 1` as its virtual address.
    pub prefix: (Ipv4Addr, u8),
    /// Fraction of the parent's link share this virtnet receives
    /// (fraction of the substrate for root virtnets). Must be in
    /// `(0, 1]`.
    pub qos_share: f64,
    /// Per-egress queue depth in the member routers.
    pub queue_depth: usize,
}

impl VirtnetDescriptor {
    /// A descriptor with sensible defaults (share 1.0, queue depth 64).
    pub fn new(name: impl Into<String>, prefix: Ipv4Addr, prefix_len: u8) -> Self {
        Self {
            name: name.into(),
            prefix: (prefix, prefix_len),
            qos_share: 1.0,
            queue_depth: 64,
        }
    }

    /// Sets the QoS share (builder-style).
    pub fn share(mut self, share: f64) -> Self {
        self.qos_share = share;
        self
    }

    /// Sets the queue depth (builder-style).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }
}

/// Why a spawn/teardown failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GenesisError {
    /// Referenced virtnet does not exist.
    UnknownVirtnet,
    /// A member index is outside the substrate.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
    },
    /// A child member is not a member of the parent.
    NotInParent {
        /// The offending node index.
        node: usize,
    },
    /// Sibling shares would exceed the parent's capacity.
    ShareExceeded {
        /// Sum of sibling shares after the new spawn.
        requested: f64,
    },
    /// The share is not in `(0, 1]`.
    BadShare,
    /// Member list is empty or not connected in the substrate.
    NotConnected,
    /// Teardown refused: children still exist.
    HasChildren,
    /// An underlying component operation failed.
    Component(String),
}

impl fmt::Display for GenesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenesisError::UnknownVirtnet => write!(f, "unknown virtual network"),
            GenesisError::NodeOutOfRange { node } => write!(f, "node {node} outside substrate"),
            GenesisError::NotInParent { node } => {
                write!(f, "node {node} is not a member of the parent virtnet")
            }
            GenesisError::ShareExceeded { requested } => {
                write!(f, "sibling shares sum to {requested} > 1")
            }
            GenesisError::BadShare => write!(f, "share must be in (0, 1]"),
            GenesisError::NotConnected => {
                write!(f, "members are empty or not connected in the substrate")
            }
            GenesisError::HasChildren => write!(f, "virtnet still has children"),
            GenesisError::Component(msg) => write!(f, "component operation failed: {msg}"),
        }
    }
}

impl std::error::Error for GenesisError {}

impl From<OcError> for GenesisError {
    fn from(e: OcError) -> Self {
        GenesisError::Component(e.to_string())
    }
}

/// A virtual router: the per-(virtnet, node) data path.
pub struct VirtualRouter {
    capsule: Arc<Capsule>,
    cf: RouterCf,
    classifier: Arc<ClassifierEngine>,
    /// `(substrate port, queue)` pairs in port order.
    queues: Vec<(u16, Arc<DropTailQueue>)>,
    /// This node's virtual address in the virtnet.
    pub vaddr: Ipv4Addr,
}

impl VirtualRouter {
    /// Pushes a packet into the virtual data path (classifier ingress).
    ///
    /// # Errors
    ///
    /// Propagates the classifier's [`PushError`](netkit_router::api::PushError).
    pub fn push(&self, pkt: Packet) -> netkit_router::api::PushResult {
        self.classifier.push(pkt)
    }

    /// Pushes a whole batch into the virtual data path in one call —
    /// the batched mirror of [`push`](Self::push), delegating to the
    /// classifier's native batch entry so per-packet dispatch overhead
    /// is paid once per burst.
    pub fn push_batch(&self, batch: PacketBatch) -> netkit_router::api::BatchResult {
        self.classifier.push_batch(batch)
    }

    /// The virtual router's classifier (for installing extra filters).
    pub fn classifier(&self) -> &Arc<ClassifierEngine> {
        &self.classifier
    }

    /// Number of components in this virtual router's capsule.
    pub fn component_count(&self) -> usize {
        self.capsule.arch().component_count()
    }

    /// Number of bindings in this virtual router's capsule.
    pub fn binding_count(&self) -> usize {
        self.capsule.arch().binding_count()
    }

    /// Approximate bytes held by the virtual router.
    pub fn footprint_bytes(&self) -> usize {
        self.capsule.footprint_bytes()
    }

    /// The Router CF governing this virtual router.
    pub fn cf(&self) -> &RouterCf {
        &self.cf
    }
}

impl fmt::Debug for VirtualRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VirtualRouter(vaddr={}, {} queues)",
            self.vaddr,
            self.queues.len()
        )
    }
}

struct Virtnet {
    descriptor: VirtnetDescriptor,
    members: Vec<usize>,
    parent: Option<VirtnetId>,
    children: Vec<VirtnetId>,
    routers: HashMap<usize, VirtualRouter>,
    effective_share: f64,
}

/// Per-substrate-node shared state: one capsule for link schedulers, one
/// WFQ scheduler per substrate port.
struct SubstrateNode {
    capsule: Arc<Capsule>,
    /// Adjacency: `(local port, peer node)`.
    links: Vec<(u16, usize)>,
    port_scheds: HashMap<u16, Arc<Scheduler>>,
}

/// Statistics describing one spawn operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpawnReport {
    /// Member nodes configured.
    pub nodes: usize,
    /// Components instantiated across all members.
    pub components: usize,
    /// Bindings created across all members.
    pub bindings: usize,
    /// Classifier filters installed.
    pub filters: usize,
}

/// The spawning-networks controller over a substrate topology.
///
/// The substrate is an adjacency list (`links[n]` = `(port, peer)` pairs
/// for node `n`) — the same shape
/// [`netkit_sim::Simulator::adjacency`] produces.
pub struct Genesis {
    runtime: Arc<Runtime>,
    nodes: Vec<SubstrateNode>,
    virtnets: HashMap<VirtnetId, Virtnet>,
    next_id: u64,
}

impl Genesis {
    /// Creates a controller for a substrate with the given adjacency.
    pub fn new(adjacency: Vec<Vec<(u16, usize)>>) -> Self {
        let runtime = Runtime::new();
        netkit_router::api::register_packet_interfaces(&runtime);
        let nodes = adjacency
            .into_iter()
            .enumerate()
            .map(|(i, links)| SubstrateNode {
                capsule: Capsule::new(format!("substrate-node{i}"), &runtime),
                links,
                port_scheds: HashMap::new(),
            })
            .collect();
        Self {
            runtime,
            nodes,
            virtnets: HashMap::new(),
            next_id: 1,
        }
    }

    /// The shared OpenCOM runtime (meta-models, registry).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Ids of all live virtnets, in spawn order.
    pub fn virtnet_ids(&self) -> Vec<VirtnetId> {
        let mut ids: Vec<VirtnetId> = self.virtnets.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The virtual router of `virtnet` at substrate node `node`.
    pub fn router(&self, virtnet: VirtnetId, node: usize) -> Option<&VirtualRouter> {
        self.virtnets.get(&virtnet)?.routers.get(&node)
    }

    /// The member list of `virtnet`.
    pub fn members(&self, virtnet: VirtnetId) -> Option<&[usize]> {
        self.virtnets.get(&virtnet).map(|v| v.members.as_slice())
    }

    /// The virtual address of `node` within `virtnet`.
    pub fn vaddr(&self, virtnet: VirtnetId, node: usize) -> Option<Ipv4Addr> {
        self.virtnets
            .get(&virtnet)?
            .routers
            .get(&node)
            .map(|r| r.vaddr)
    }

    /// The effective (absolute) link share of `virtnet`.
    pub fn effective_share(&self, virtnet: VirtnetId) -> Option<f64> {
        self.virtnets.get(&virtnet).map(|v| v.effective_share)
    }

    /// The shared link scheduler of substrate `node`'s `port`, if any
    /// virtnet uses that port.
    pub fn link_scheduler(&self, node: usize, port: u16) -> Option<&Arc<Scheduler>> {
        self.nodes.get(node)?.port_scheds.get(&port)
    }

    /// Spawns a root virtual network over `members`.
    ///
    /// # Errors
    ///
    /// See [`GenesisError`].
    pub fn spawn(
        &mut self,
        descriptor: VirtnetDescriptor,
        members: &[usize],
    ) -> Result<(VirtnetId, SpawnReport), GenesisError> {
        self.spawn_inner(descriptor, members, None)
    }

    /// Spawns a child virtnet inside `parent`; members must be parent
    /// members and sibling shares must fit.
    ///
    /// # Errors
    ///
    /// See [`GenesisError`].
    pub fn spawn_child(
        &mut self,
        parent: VirtnetId,
        descriptor: VirtnetDescriptor,
        members: &[usize],
    ) -> Result<(VirtnetId, SpawnReport), GenesisError> {
        self.spawn_inner(descriptor, members, Some(parent))
    }

    fn spawn_inner(
        &mut self,
        descriptor: VirtnetDescriptor,
        members: &[usize],
        parent: Option<VirtnetId>,
    ) -> Result<(VirtnetId, SpawnReport), GenesisError> {
        if !(descriptor.qos_share > 0.0 && descriptor.qos_share <= 1.0) {
            return Err(GenesisError::BadShare);
        }
        if members.is_empty() {
            return Err(GenesisError::NotConnected);
        }
        for &m in members {
            if m >= self.nodes.len() {
                return Err(GenesisError::NodeOutOfRange { node: m });
            }
        }
        let parent_share = match parent {
            Some(pid) => {
                let p = self
                    .virtnets
                    .get(&pid)
                    .ok_or(GenesisError::UnknownVirtnet)?;
                for &m in members {
                    if !p.members.contains(&m) {
                        return Err(GenesisError::NotInParent { node: m });
                    }
                }
                let sibling_sum: f64 = p
                    .children
                    .iter()
                    .filter_map(|c| self.virtnets.get(c))
                    .map(|c| c.descriptor.qos_share)
                    .sum();
                if sibling_sum + descriptor.qos_share > 1.0 + 1e-9 {
                    return Err(GenesisError::ShareExceeded {
                        requested: sibling_sum + descriptor.qos_share,
                    });
                }
                p.effective_share
            }
            None => 1.0,
        };

        // Induced-subgraph connectivity + next hops (BFS from each member
        // restricted to member nodes).
        let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
        let next_hops = self.member_next_hops(members, &member_set)?;

        let id = VirtnetId(self.next_id);
        self.next_id += 1;
        let effective_share = parent_share * descriptor.qos_share;

        // Virtual addressing: prefix base + (member order index + 1).
        let base = u32::from(descriptor.prefix.0);
        let vaddr_of = |k: usize| Ipv4Addr::from(base + k as u32 + 1);

        let mut report = SpawnReport {
            nodes: members.len(),
            ..SpawnReport::default()
        };
        let mut routers = HashMap::new();
        let sys = Principal::system();

        for (k, &n) in members.iter().enumerate() {
            let capsule = Capsule::new(format!("{}-node{n}", descriptor.name), &self.runtime);
            let cf = RouterCf::new(format!("{}::cf", descriptor.name), Arc::clone(&capsule));

            let classifier = ClassifierEngine::new();
            let cls_id = capsule.adopt(classifier.clone())?;
            cf.plug(&sys, cls_id)?;
            report.components += 1;

            // One queue per substrate port that leads to another member.
            let mut queues = Vec::new();
            let member_ports: Vec<u16> = self.nodes[n]
                .links
                .iter()
                .filter(|(_, peer)| member_set.contains(peer))
                .map(|(port, _)| *port)
                .collect();
            for port in member_ports {
                let queue = DropTailQueue::new(descriptor.queue_depth);
                let q_id = capsule.adopt(queue.clone())?;
                cf.plug(&sys, q_id)?;
                report.components += 1;
                cf.bind(
                    &sys,
                    cls_id,
                    "out",
                    &format!("port{port}"),
                    q_id,
                    IPACKET_PUSH,
                )?;
                report.bindings += 1;

                // Attach the queue to the node's shared per-port WFQ link
                // scheduler under this virtnet's label and share.
                let label = format!("vnet{}", id.0);
                let sched = self.ensure_port_scheduler(n, port)?;
                let sched_id = self.scheduler_component(n, port)?;
                let node_capsule = Arc::clone(&self.nodes[n].capsule);
                // The queue lives in the virtnet capsule, the scheduler in
                // the substrate capsule; bind across via direct receptacle
                // attach on the shared runtime.
                let q_sid = node_capsule.adopt(queue.clone())?;
                node_capsule.bind(sched_id, "in", &label, q_sid, IPACKET_PULL)?;
                sched.set_weight(&label, effective_share.max(1e-6));
                report.bindings += 1;
                queues.push((port, queue));
            }

            routers.insert(
                n,
                VirtualRouter {
                    capsule,
                    cf,
                    classifier,
                    queues,
                    vaddr: vaddr_of(k),
                },
            );
        }

        // Classifier filters: per destination member, route to the port
        // chosen by the induced-subgraph BFS.
        for (k, &n) in members.iter().enumerate() {
            let router = routers.get(&n).expect("just inserted");
            for (j, &dst) in members.iter().enumerate() {
                if j == k {
                    continue;
                }
                let Some(port) = next_hops[&n].get(&dst).copied() else {
                    continue;
                };
                // Only install if the corresponding queue exists.
                if router.queues.iter().any(|(p, _)| *p == port) {
                    let vdst = vaddr_of(j);
                    router
                        .classifier
                        .register_filter(FilterSpec::new(
                            FilterPattern::any().dst(&vdst.to_string(), 32),
                            format!("port{port}"),
                            0,
                        ))
                        .map_err(GenesisError::from)?;
                    report.filters += 1;
                }
            }
        }

        if let Some(pid) = parent {
            self.virtnets
                .get_mut(&pid)
                .expect("checked")
                .children
                .push(id);
        }
        self.virtnets.insert(
            id,
            Virtnet {
                descriptor,
                members: members.to_vec(),
                parent,
                children: Vec::new(),
                routers,
                effective_share,
            },
        );
        Ok((id, report))
    }

    /// Destroys a virtnet's routers and releases its share.
    ///
    /// # Errors
    ///
    /// Fails with [`GenesisError::HasChildren`] while children exist, or
    /// [`GenesisError::UnknownVirtnet`].
    pub fn teardown(&mut self, id: VirtnetId) -> Result<(), GenesisError> {
        let v = self.virtnets.get(&id).ok_or(GenesisError::UnknownVirtnet)?;
        if !v.children.is_empty() {
            return Err(GenesisError::HasChildren);
        }
        let v = self.virtnets.remove(&id).expect("present");
        if let Some(pid) = v.parent {
            if let Some(p) = self.virtnets.get_mut(&pid) {
                p.children.retain(|c| *c != id);
            }
        }
        // Unbind the virtnet's queues from the shared link schedulers.
        let label = format!("vnet{}", id.0);
        for (&n, router) in &v.routers {
            for (port, queue) in &router.queues {
                if let Ok(sched_id) = self.scheduler_component(n, *port) {
                    let node_capsule = &self.nodes[n].capsule;
                    // Find the binding record and remove it.
                    let records = node_capsule.arch().binding_records();
                    for rec in records {
                        if rec.src == sched_id && rec.label == label {
                            let _ = node_capsule.unbind(rec.id);
                        }
                    }
                    let _ = queue;
                }
            }
        }
        Ok(())
    }

    /// Forwards `pkt` one hop inside `virtnet` starting at `node`:
    /// pushes into the virtual router, then drains the appropriate link
    /// scheduler. Returns the `(egress port, packet)` if one emerged.
    ///
    /// This is the synchronous (non-simulated) data-path hook used by the
    /// benches; the examples drive the same routers from a `Simulator`.
    pub fn forward(&self, virtnet: VirtnetId, node: usize, pkt: Packet) -> Option<(u16, Packet)> {
        let router = self.router(virtnet, node)?;
        router.push(pkt).ok()?;
        for (port, _) in &router.queues {
            if let Some(sched) = self.nodes[node].port_scheds.get(port) {
                if let Some(out) = sched.pull() {
                    return Some((*port, out));
                }
            }
        }
        None
    }

    /// Forwards a whole burst one hop inside `virtnet` starting at
    /// `node`: pushes the batch through the virtual router's batched
    /// ingress, then drains every port scheduler dry. Returns the
    /// `(egress port, packet)` pairs in port order — the batched
    /// mirror of [`forward`](Self::forward), and the hook the
    /// simulator-hosted pipeline nodes use for signaling bursts.
    pub fn forward_batch(
        &self,
        virtnet: VirtnetId,
        node: usize,
        batch: PacketBatch,
    ) -> Vec<(u16, Packet)> {
        let Some(router) = self.router(virtnet, node) else {
            return Vec::new();
        };
        let _ = router.push_batch(batch);
        let mut out = Vec::new();
        for (port, _) in &router.queues {
            if let Some(sched) = self.nodes[node].port_scheds.get(port) {
                while let Some(pkt) = sched.pull() {
                    out.push((*port, pkt));
                }
            }
        }
        out
    }

    fn ensure_port_scheduler(
        &mut self,
        node: usize,
        port: u16,
    ) -> Result<Arc<Scheduler>, GenesisError> {
        if let Some(s) = self.nodes[node].port_scheds.get(&port) {
            return Ok(Arc::clone(s));
        }
        let sched = WfqScheduler::new(&[]);
        self.nodes[node].capsule.adopt(sched.clone())?;
        self.nodes[node]
            .port_scheds
            .insert(port, Arc::clone(&sched));
        Ok(sched)
    }

    fn scheduler_component(
        &self,
        node: usize,
        port: u16,
    ) -> Result<opencom::ident::ComponentId, GenesisError> {
        let sched = self.nodes[node]
            .port_scheds
            .get(&port)
            .ok_or(GenesisError::UnknownVirtnet)?;
        Ok(opencom::component::Component::core(sched.as_ref()).id())
    }

    /// BFS next hops restricted to the member-induced subgraph:
    /// `result[n][dst] = port`.
    fn member_next_hops(
        &self,
        members: &[usize],
        member_set: &std::collections::HashSet<usize>,
    ) -> Result<HashMap<usize, HashMap<usize, u16>>, GenesisError> {
        let mut all = HashMap::new();
        for &src in members {
            let mut first_port: HashMap<usize, u16> = HashMap::new();
            let mut seen = std::collections::HashSet::new();
            seen.insert(src);
            let mut queue = std::collections::VecDeque::new();
            for &(port, peer) in &self.nodes[src].links {
                if member_set.contains(&peer) && seen.insert(peer) {
                    first_port.insert(peer, port);
                    queue.push_back(peer);
                }
            }
            while let Some(at) = queue.pop_front() {
                for &(_, peer) in &self.nodes[at].links {
                    if member_set.contains(&peer) && seen.insert(peer) {
                        let via = first_port[&at];
                        first_port.insert(peer, via);
                        queue.push_back(peer);
                    }
                }
            }
            // Connectivity check: every other member reachable.
            if members.len() > 1 && first_port.len() + 1 < members.len() {
                return Err(GenesisError::NotConnected);
            }
            all.insert(src, first_port);
        }
        Ok(all)
    }
}

impl fmt::Debug for Genesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Genesis({} substrate nodes, {} virtnets)",
            self.nodes.len(),
            self.virtnets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    /// A 4-node line substrate: 0 — 1 — 2 — 3.
    fn line4() -> Vec<Vec<(u16, usize)>> {
        vec![
            vec![(0, 1)],
            vec![(0, 0), (1, 2)],
            vec![(0, 1), (1, 3)],
            vec![(0, 2)],
        ]
    }

    fn desc(name: &str) -> VirtnetDescriptor {
        VirtnetDescriptor::new(name, Ipv4Addr::new(10, 99, 0, 0), 24)
    }

    #[test]
    fn spawn_builds_routers_with_addresses_and_filters() {
        let mut g = Genesis::new(line4());
        let (id, report) = g.spawn(desc("blue"), &[0, 1, 2, 3]).unwrap();
        assert_eq!(report.nodes, 4);
        assert!(report.components >= 4 + 6, "classifier per node + queues");
        assert!(report.filters >= 6, "filters towards every other member");
        assert_eq!(g.vaddr(id, 0), Some(Ipv4Addr::new(10, 99, 0, 1)));
        assert_eq!(g.vaddr(id, 3), Some(Ipv4Addr::new(10, 99, 0, 4)));
        // Interior node has two member-facing queues.
        assert_eq!(g.router(id, 1).unwrap().queues.len(), 2);
        // Edge node has one.
        assert_eq!(g.router(id, 0).unwrap().queues.len(), 1);
    }

    #[test]
    fn virtual_data_path_forwards_by_virtual_address() {
        let mut g = Genesis::new(line4());
        let (id, _) = g.spawn(desc("blue"), &[0, 1, 2, 3]).unwrap();
        // A packet for node 3's vaddr, injected at node 0, leaves on the
        // port towards node 1.
        let pkt = PacketBuilder::udp_v4("10.99.0.1", "10.99.0.4", 5, 5).build();
        let (port, out) = g.forward(id, 0, pkt).expect("forwards");
        assert_eq!(port, 0);
        assert_eq!(out.ipv4().unwrap().dst, Ipv4Addr::new(10, 99, 0, 4));
    }

    #[test]
    fn disjoint_virtnets_have_independent_addressing() {
        let mut g = Genesis::new(line4());
        let (blue, _) = g.spawn(desc("blue"), &[0, 1]).unwrap();
        let (red, _) = g
            .spawn(
                VirtnetDescriptor::new("red", Ipv4Addr::new(10, 77, 0, 0), 24),
                &[2, 3],
            )
            .unwrap();
        assert_eq!(g.vaddr(blue, 0), Some(Ipv4Addr::new(10, 99, 0, 1)));
        assert_eq!(g.vaddr(red, 2), Some(Ipv4Addr::new(10, 77, 0, 1)));
        assert_eq!(g.members(blue).unwrap(), &[0, 1]);
        assert_eq!(g.members(red).unwrap(), &[2, 3]);
    }

    #[test]
    fn shared_port_gets_wfq_weights_per_virtnet() {
        let mut g = Genesis::new(line4());
        let (blue, _) = g.spawn(desc("blue").share(0.75), &[0, 1]).unwrap();
        let (red, _) = g
            .spawn(
                VirtnetDescriptor::new("red", Ipv4Addr::new(10, 77, 0, 0), 24).share(0.25),
                &[0, 1],
            )
            .unwrap();
        // Node 0 port 0 now schedules both virtnets' queues.
        let sched = g.link_scheduler(0, 0).expect("shared scheduler");
        // Push one packet into each virtnet and drain: both drain through
        // the same scheduler.
        let b = PacketBuilder::udp_v4("10.99.0.1", "10.99.0.2", 1, 1).build();
        let r = PacketBuilder::udp_v4("10.77.0.1", "10.77.0.2", 1, 1).build();
        g.router(blue, 0).unwrap().push(b).unwrap();
        g.router(red, 0).unwrap().push(r).unwrap();
        assert!(sched.pull().is_some());
        assert!(sched.pull().is_some());
        assert!(sched.pull().is_none());
        assert_eq!(g.effective_share(blue), Some(0.75));
        assert_eq!(g.effective_share(red), Some(0.25));
    }

    #[test]
    fn child_virtnets_nest_and_partition_share() {
        let mut g = Genesis::new(line4());
        let (parent, _) = g.spawn(desc("parent").share(0.8), &[0, 1, 2, 3]).unwrap();
        let (child, _) = g
            .spawn_child(
                parent,
                VirtnetDescriptor::new("child", Ipv4Addr::new(10, 88, 0, 0), 24).share(0.5),
                &[1, 2],
            )
            .unwrap();
        assert_eq!(g.effective_share(child), Some(0.4), "0.8 × 0.5");
        // Child members must be parent members.
        let err = g
            .spawn_child(
                parent,
                VirtnetDescriptor::new("bad", Ipv4Addr::new(10, 66, 0, 0), 24),
                &[99],
            )
            .unwrap_err();
        assert!(matches!(err, GenesisError::NodeOutOfRange { .. }));
        // Sibling shares capped at 1.
        let err = g
            .spawn_child(
                parent,
                VirtnetDescriptor::new("greedy", Ipv4Addr::new(10, 55, 0, 0), 24).share(0.6),
                &[0, 1],
            )
            .unwrap_err();
        assert!(matches!(err, GenesisError::ShareExceeded { .. }));
    }

    #[test]
    fn teardown_requires_children_gone_first() {
        let mut g = Genesis::new(line4());
        let (parent, _) = g.spawn(desc("p"), &[0, 1, 2]).unwrap();
        let (child, _) = g
            .spawn_child(
                parent,
                VirtnetDescriptor::new("c", Ipv4Addr::new(10, 88, 0, 0), 24).share(0.5),
                &[0, 1],
            )
            .unwrap();
        assert_eq!(g.teardown(parent), Err(GenesisError::HasChildren));
        g.teardown(child).unwrap();
        g.teardown(parent).unwrap();
        assert!(g.virtnet_ids().is_empty());
        assert_eq!(g.teardown(parent), Err(GenesisError::UnknownVirtnet));
    }

    #[test]
    fn disconnected_members_are_refused() {
        let mut g = Genesis::new(line4());
        // 0 and 3 are not adjacent and 1, 2 are excluded.
        let err = g.spawn(desc("gap"), &[0, 3]).unwrap_err();
        assert_eq!(err, GenesisError::NotConnected);
        let err = g.spawn(desc("empty"), &[]).unwrap_err();
        assert_eq!(err, GenesisError::NotConnected);
    }

    #[test]
    fn bad_shares_are_refused() {
        let mut g = Genesis::new(line4());
        assert_eq!(
            g.spawn(desc("zero").share(0.0), &[0, 1]).unwrap_err(),
            GenesisError::BadShare
        );
        assert_eq!(
            g.spawn(desc("big").share(1.5), &[0, 1]).unwrap_err(),
            GenesisError::BadShare
        );
    }

    #[test]
    fn spawn_report_scales_with_membership() {
        let mut g = Genesis::new(line4());
        let (_, small) = g.spawn(desc("s"), &[0, 1]).unwrap();
        let mut g2 = Genesis::new(line4());
        let (_, large) = g2.spawn(desc("l"), &[0, 1, 2, 3]).unwrap();
        assert!(large.components > small.components);
        assert!(large.filters > small.filters);
    }
}
