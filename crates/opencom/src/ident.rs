//! Identity and versioning primitives.
//!
//! OpenCOM entities (components, interfaces, bindings, capsules, tasks) are
//! identified by small copyable ids so that the meta-models can describe
//! the running system as plain data.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies an interface *type* (not an instance).
///
/// Interface ids are interned `&'static str` names by convention written in
/// reverse-dotted form with the defining subsystem as prefix, e.g.
/// `"netkit.IPacketPush"`. Equality is by name, which mirrors the
/// language-independent flavour of COM IIDs without GUID noise.
///
/// # Examples
///
/// ```
/// use opencom::ident::InterfaceId;
/// const IPUSH: InterfaceId = InterfaceId::new("netkit.IPacketPush");
/// assert_eq!(IPUSH.name(), "netkit.IPacketPush");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InterfaceId {
    name: &'static str,
}

impl InterfaceId {
    /// Creates an interface id from a static name.
    pub const fn new(name: &'static str) -> Self {
        Self { name }
    }

    /// Returns the interface's fully qualified name.
    pub const fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterfaceId({})", self.name)
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

macro_rules! counter_id {
    ($(#[$doc:meta])* $name:ident, $counter:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u64);

        static $counter: AtomicU64 = AtomicU64::new(1);

        impl $name {
            /// Allocates the next process-unique id.
            pub fn next() -> Self {
                Self($counter.fetch_add(1, Ordering::Relaxed))
            }

            /// Builds an id from a raw value (used by tests and for
            /// reconstructing ids received over IPC).
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn as_raw(&self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "#{}", self.0)
            }
        }
    };
}

counter_id!(
    /// Identifies a component *instance* within the process.
    ComponentId,
    COMPONENT_IDS
);
counter_id!(
    /// Identifies a binding (a connection from a receptacle to an interface).
    BindingId,
    BINDING_IDS
);
counter_id!(
    /// Identifies a capsule (an address-space analogue).
    CapsuleId,
    CAPSULE_IDS
);
counter_id!(
    /// Identifies a task in the resources meta-model.
    TaskId,
    TASK_IDS
);

/// A semantic version for deployable component types.
///
/// Used by the [`crate::registry::ComponentRegistry`] to support
/// side-by-side deployment of component versions, which is the paper's
/// "managed software evolution" requirement.
///
/// # Examples
///
/// ```
/// use opencom::ident::Version;
/// let v = Version::new(1, 2, 0);
/// assert!(v > Version::new(1, 1, 9));
/// assert_eq!(v.to_string(), "1.2.0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Version {
    /// Incompatible interface changes.
    pub major: u16,
    /// Backwards-compatible functionality additions.
    pub minor: u16,
    /// Backwards-compatible fixes.
    pub patch: u16,
}

impl Version {
    /// Creates a version from its three parts.
    pub const fn new(major: u16, minor: u16, patch: u16) -> Self {
        Self {
            major,
            minor,
            patch,
        }
    }

    /// Returns true if `self` can transparently replace `other`
    /// (same major version, not older).
    pub fn compatible_upgrade_of(&self, other: &Version) -> bool {
        self.major == other.major && self >= other
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_ids_are_unique_and_monotonic() {
        let a = ComponentId::next();
        let b = ComponentId::next();
        assert_ne!(a, b);
        assert!(b.as_raw() > a.as_raw());
    }

    #[test]
    fn interface_id_equality_is_by_name() {
        assert_eq!(InterfaceId::new("x.I"), InterfaceId::new("x.I"));
        assert_ne!(InterfaceId::new("x.I"), InterfaceId::new("x.J"));
    }

    #[test]
    fn version_ordering_and_compat() {
        let v110 = Version::new(1, 1, 0);
        let v120 = Version::new(1, 2, 0);
        let v200 = Version::new(2, 0, 0);
        assert!(v120.compatible_upgrade_of(&v110));
        assert!(!v110.compatible_upgrade_of(&v120));
        assert!(!v200.compatible_upgrade_of(&v120));
        assert!(v110 < v120 && v120 < v200);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Version::new(0, 3, 7).to_string(), "0.3.7");
        assert_eq!(InterfaceId::new("a.B").to_string(), "a.B");
        assert_eq!(ComponentId::from_raw(42).to_string(), "#42");
    }
}
