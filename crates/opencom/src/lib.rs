//! # opencom — a reflective, fine-grained component model
//!
//! Rust reproduction of the **OpenCOM** component model underlying the
//! NETKIT programmable-networking framework of *"Reflective
//! Middleware-based Programmable Networking"* (Coulson et al.,
//! RM2003/Middleware 2003).
//!
//! The model is deliberately small and uniform:
//!
//! * **Components** ([`component::Component`]) export *interfaces* and
//!   declare dependencies through *receptacles*
//!   ([`receptacle::Receptacle`]).
//! * The **`bind` primitive** ([`capsule::Capsule::bind`]) connects a
//!   receptacle to an interface, subject to dynamically added
//!   **constraints** ([`binding::BindConstraint`]) — interceptors on
//!   `bind`, per the paper.
//! * Four **meta-models** make the system reflective:
//!   [architecture](meta::architecture) (introspect/adapt the component
//!   graph), [interface](meta::interface) (method-level introspection),
//!   [interception] (pre/post hooks at the dispatch level),
//!   and [resources](meta::resources) (tasks and fine-grained
//!   allocation).
//! * **Component frameworks** ([`cf::Cf`]) impose domain rules on plugged
//!   components, with ACL-policed management.
//! * **Capsules** ([`capsule::Capsule`]) are the address-space analogue;
//!   untrusted components can be hosted in an *isolated* capsule behind
//!   marshalling proxies with crash containment ([`ipc`]).
//! * The **registry** ([`registry::ComponentRegistry`]) holds named,
//!   versioned factories — the deployment/evolution substitute for DLL
//!   loading.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use opencom::prelude::*;
//!
//! // 1. Define an interface (a plain trait) and its id.
//! trait IGreet: Send + Sync { fn greet(&self) -> String; }
//! const IGREET: InterfaceId = InterfaceId::new("demo.IGreet");
//!
//! // 2. Define a component exporting it.
//! struct Greeter { core: ComponentCore }
//! impl IGreet for Greeter { fn greet(&self) -> String { "hello".into() } }
//! impl Component for Greeter {
//!     fn core(&self) -> &ComponentCore { &self.core }
//!     fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
//!         let me: Arc<dyn IGreet> = self.clone();
//!         reg.expose(IGREET, &me);
//!     }
//! }
//!
//! // 3. Host it in a capsule and call through query_interface.
//! let rt = Runtime::new();
//! let capsule = Capsule::new("demo", &rt);
//! let id = capsule.adopt(Arc::new(Greeter {
//!     core: ComponentCore::new(ComponentDescriptor::new("demo.Greeter",
//!         Version::new(1, 0, 0))),
//! }))?;
//! let greet: Arc<dyn IGreet> = capsule.query_interface(id, IGREET)?.downcast().unwrap();
//! assert_eq!(greet.greet(), "hello");
//! # Ok::<(), opencom::error::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binding;
pub mod capsule;
pub mod cf;
pub mod component;
pub mod error;
pub mod ident;
pub mod interception;
pub mod interface;
pub mod ipc;
pub mod meta;
pub mod receptacle;
pub mod registry;
pub mod runtime;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::binding::{
        BindConstraint, BindRequest, ConstraintSet, FnConstraint, TopologyRule,
    };
    pub use crate::capsule::{Capsule, Quiescence};
    pub use crate::cf::{Acl, Cf, CfOperation, CfRules, PermissiveRules, Principal};
    pub use crate::component::{
        Component, ComponentCore, ComponentDescriptor, LifecycleState, Registrar,
    };
    pub use crate::error::{Error, Result};
    pub use crate::ident::{BindingId, CapsuleId, ComponentId, InterfaceId, TaskId, Version};
    pub use crate::interception::{
        CallContext, FnHook, Hook, InterceptorChain, InterceptorRegistry,
    };
    pub use crate::interface::{InterfaceDescriptor, InterfaceRef, MethodDescriptor};
    pub use crate::meta::architecture::{ArchitectureMetaModel, BindingRecord};
    pub use crate::meta::interface::InterfaceRepository;
    pub use crate::meta::resources::{classes, ResourceManager, TaskInfo};
    pub use crate::receptacle::{Cardinality, Receptacle, ReceptacleInfo};
    pub use crate::registry::ComponentRegistry;
    pub use crate::runtime::Runtime;
}
