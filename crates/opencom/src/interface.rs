//! Interface references and introspection descriptors.
//!
//! In the paper's OpenCOM, interfaces are Microsoft-COM binary vtables and
//! introspection builds on Windows type libraries. The Rust analogue keeps
//! both halves:
//!
//! * [`InterfaceRef`] — a type-erased handle to an `Arc<dyn Trait>` that can
//!   be stored uniformly in meta-model data structures and recovered to the
//!   concrete trait object with [`InterfaceRef::downcast`]. Dispatch through
//!   a recovered handle is one fat-pointer indirect call — the same cost
//!   profile as a COM vtable call.
//! * [`InterfaceDescriptor`] — method-level metadata registered per
//!   interface type, standing in for the type library so that tooling can
//!   inspect interfaces without compile-time knowledge of the trait.

use std::any::Any;
use std::fmt;
use std::sync::{Arc, Weak};

use crate::ident::{ComponentId, InterfaceId, Version};

/// A type-erased, reference-counted handle to an exported interface.
///
/// `InterfaceRef` is what `query_interface` returns and what receptacles
/// accept. It remembers which component exported it so the architecture
/// meta-model can attribute bindings.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use opencom::ident::{ComponentId, InterfaceId};
/// use opencom::interface::InterfaceRef;
///
/// trait Greeter: Send + Sync { fn hello(&self) -> &'static str; }
/// struct En;
/// impl Greeter for En { fn hello(&self) -> &'static str { "hello" } }
///
/// const IGREET: InterfaceId = InterfaceId::new("demo.IGreeter");
/// let obj: Arc<dyn Greeter> = Arc::new(En);
/// let iref = InterfaceRef::new(IGREET, ComponentId::from_raw(1), obj);
/// let back: Arc<dyn Greeter> = iref.downcast().expect("same type");
/// assert_eq!(back.hello(), "hello");
/// ```
#[derive(Clone)]
pub struct InterfaceRef {
    id: InterfaceId,
    provider: ComponentId,
    any: Arc<dyn Any + Send + Sync>,
}

impl InterfaceRef {
    /// Wraps a concrete `Arc<I>` (typically `Arc<dyn SomeTrait>`) into a
    /// type-erased reference.
    pub fn new<I>(id: InterfaceId, provider: ComponentId, iface: Arc<I>) -> Self
    where
        I: ?Sized + Send + Sync + 'static,
    {
        Self {
            id,
            provider,
            any: Arc::new(iface),
        }
    }

    /// Recovers the concrete `Arc<I>` if `I` matches the wrapped type.
    ///
    /// Returns `None` on a type mismatch; callers that bound the interface
    /// id first will normally never see `None`.
    pub fn downcast<I>(&self) -> Option<Arc<I>>
    where
        I: ?Sized + 'static,
    {
        self.any.downcast_ref::<Arc<I>>().cloned()
    }

    /// The interface type this reference exports.
    pub fn id(&self) -> InterfaceId {
        self.id
    }

    /// The component instance that exported this interface.
    pub fn provider(&self) -> ComponentId {
        self.provider
    }

    /// Re-attributes the reference to a different provider.
    ///
    /// Used by interception and IPC proxies, which substitute themselves
    /// into a binding while preserving the logical provider identity.
    pub fn with_provider(mut self, provider: ComponentId) -> Self {
        self.provider = provider;
        self
    }
}

impl fmt::Debug for InterfaceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterfaceRef({} from {})", self.id, self.provider)
    }
}

/// A lazily-upgradable interface export held inside a component's table.
///
/// Components store `Weak` references to themselves to avoid `Arc` cycles;
/// the export produces a strong [`InterfaceRef`] on demand.
pub(crate) struct InterfaceExport {
    pub(crate) id: InterfaceId,
    make: Box<dyn Fn() -> Option<InterfaceRef> + Send + Sync>,
}

impl InterfaceExport {
    pub(crate) fn new<I>(id: InterfaceId, provider: ComponentId, iface: &Arc<I>) -> Self
    where
        I: ?Sized + Send + Sync + 'static,
    {
        let weak: Weak<I> = Arc::downgrade(iface);
        Self {
            id,
            make: Box::new(move || {
                weak.upgrade()
                    .map(|strong| InterfaceRef::new(id, provider, strong))
            }),
        }
    }

    /// Builds an export from an already type-erased reference (used by
    /// composites re-exporting an inner component's interface).
    pub(crate) fn from_ref(iref: InterfaceRef) -> Self {
        Self {
            id: iref.id(),
            make: Box::new(move || Some(iref.clone())),
        }
    }

    pub(crate) fn materialize(&self) -> Option<InterfaceRef> {
        (self.make)()
    }
}

impl fmt::Debug for InterfaceExport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterfaceExport({})", self.id)
    }
}

/// Metadata describing one parameter of an interface method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDescriptor {
    /// Parameter name as written in the defining trait.
    pub name: &'static str,
    /// Human-readable type name (language-independent wire form).
    pub ty: &'static str,
}

/// Metadata describing one method of an interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDescriptor {
    /// Method name.
    pub name: &'static str,
    /// Parameters in declaration order (excluding the receiver).
    pub params: Vec<ParamDescriptor>,
    /// Human-readable return type name.
    pub returns: &'static str,
    /// One-line documentation string.
    pub doc: &'static str,
}

/// Introspection metadata for an interface type — the stand-in for the
/// Windows type libraries the paper's implementation relied on.
///
/// Descriptors are registered with the
/// [`InterfaceRepository`](crate::meta::interface::InterfaceRepository)
/// so that management tooling can enumerate an interface's methods at run
/// time even though Rust itself offers no reflection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceDescriptor {
    /// The interface id this descriptor describes.
    pub id: InterfaceId,
    /// Interface contract version.
    pub version: Version,
    /// Methods in declaration order.
    pub methods: Vec<MethodDescriptor>,
    /// One-line documentation string.
    pub doc: &'static str,
}

impl InterfaceDescriptor {
    /// Creates a descriptor with no methods; add them with
    /// [`InterfaceDescriptor::method`].
    pub fn new(id: InterfaceId, version: Version, doc: &'static str) -> Self {
        Self {
            id,
            version,
            methods: Vec::new(),
            doc,
        }
    }

    /// Adds a method signature (builder-style).
    pub fn method(
        mut self,
        name: &'static str,
        params: &[(&'static str, &'static str)],
        returns: &'static str,
        doc: &'static str,
    ) -> Self {
        self.methods.push(MethodDescriptor {
            name,
            params: params
                .iter()
                .map(|(name, ty)| ParamDescriptor { name, ty })
                .collect(),
            returns,
            doc,
        });
        self
    }

    /// Looks up a method descriptor by name.
    pub fn find_method(&self, name: &str) -> Option<&MethodDescriptor> {
        self.methods.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Counter: Send + Sync {
        fn add(&self, n: u64) -> u64;
    }

    struct C(std::sync::atomic::AtomicU64);
    impl Counter for C {
        fn add(&self, n: u64) -> u64 {
            self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed) + n
        }
    }

    const ICOUNT: InterfaceId = InterfaceId::new("test.ICounter");

    #[test]
    fn downcast_roundtrip() {
        let obj: Arc<dyn Counter> = Arc::new(C(0.into()));
        let iref = InterfaceRef::new(ICOUNT, ComponentId::from_raw(1), obj);
        let back: Arc<dyn Counter> = iref.downcast().unwrap();
        assert_eq!(back.add(3), 3);
        assert_eq!(back.add(4), 7);
    }

    #[test]
    fn downcast_to_wrong_type_fails() {
        trait Other: Send + Sync {}
        let obj: Arc<dyn Counter> = Arc::new(C(0.into()));
        let iref = InterfaceRef::new(ICOUNT, ComponentId::from_raw(1), obj);
        assert!(iref.downcast::<dyn Other>().is_none());
    }

    #[test]
    fn export_upgrades_while_alive_and_fails_after_drop() {
        let obj: Arc<dyn Counter> = Arc::new(C(0.into()));
        let export = InterfaceExport::new(ICOUNT, ComponentId::from_raw(9), &obj);
        assert!(export.materialize().is_some());
        drop(obj);
        assert!(export.materialize().is_none());
    }

    #[test]
    fn descriptor_builder_and_lookup() {
        let d = InterfaceDescriptor::new(ICOUNT, Version::new(1, 0, 0), "counting").method(
            "add",
            &[("n", "u64")],
            "u64",
            "adds n",
        );
        assert_eq!(d.methods.len(), 1);
        let m = d.find_method("add").unwrap();
        assert_eq!(m.params[0].ty, "u64");
        assert!(d.find_method("sub").is_none());
    }

    #[test]
    fn interface_ref_clones_share_object() {
        let obj: Arc<dyn Counter> = Arc::new(C(0.into()));
        let a = InterfaceRef::new(ICOUNT, ComponentId::from_raw(1), obj);
        let b = a.clone();
        let ca: Arc<dyn Counter> = a.downcast().unwrap();
        let cb: Arc<dyn Counter> = b.downcast().unwrap();
        ca.add(5);
        assert_eq!(cb.add(0), 5);
    }
}
