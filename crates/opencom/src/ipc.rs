//! Isolation machinery: out-of-"address-space" component hosting.
//!
//! Paper §5: "untrusted constituents can be instantiated, and remotely
//! managed by the parent composite, in a separate address-space from the
//! parent … inter-component bindings in this case are transparently
//! realised in terms of OS-level IPC mechanisms rather than intra-address
//! space vtables."
//!
//! The Rust reproduction hosts the untrusted component on a dedicated
//! thread behind a synchronous message channel. This preserves the three
//! observable properties of the original design:
//!
//! 1. **No shared memory** — every call is marshalled to bytes and back
//!    ([`IpcRequest`]/[`IpcReply`]); the component never sees the parent's
//!    data structures.
//! 2. **Crash containment** — panics are caught at the host boundary; the
//!    host reports [`IpcReply::Crashed`] and refuses further calls until
//!    the supervisor respawns the component.
//! 3. **Transparency** — callers hold an ordinary [`InterfaceRef`](crate::interface::InterfaceRef) built
//!    by a per-interface proxy factory (the stub/skeleton pair of COM).
//!
//! Marshalling uses the crate-local [`wire`] codec (length-prefixed
//! fields) because no serialisation *format* crate is available offline;
//! the codec is deliberately trivial and fully property-tested.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::ComponentId;

/// Minimal length-prefixed binary codec used for IPC marshalling.
pub mod wire {
    /// Appends a length-prefixed byte field.
    pub fn put_bytes(buf: &mut Vec<u8>, field: &[u8]) {
        buf.extend_from_slice(&(field.len() as u32).to_le_bytes());
        buf.extend_from_slice(field);
    }

    /// Appends a length-prefixed UTF-8 string field.
    pub fn put_str(buf: &mut Vec<u8>, field: &str) {
        put_bytes(buf, field.as_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a length-prefixed byte field, advancing `pos`.
    pub fn get_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
        let len = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
        *pos += 4;
        let out = buf.get(*pos..*pos + len)?.to_vec();
        *pos += len;
        Some(out)
    }

    /// Reads a length-prefixed string field, advancing `pos`.
    pub fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
        String::from_utf8(get_bytes(buf, pos)?).ok()
    }

    /// Reads a little-endian u64, advancing `pos`.
    pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
        let v = u64::from_le_bytes(buf.get(*pos..*pos + 8)?.try_into().ok()?);
        *pos += 8;
        Some(v)
    }
}

/// A marshalled call crossing the capsule boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpcRequest {
    /// Interface name (string form of the [`InterfaceId`](crate::ident::InterfaceId)).
    pub interface: String,
    /// Method name.
    pub method: String,
    /// Marshalled arguments.
    pub payload: Vec<u8>,
}

/// The host's answer to a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IpcReply {
    /// Call succeeded; marshalled return value.
    Ok(Vec<u8>),
    /// Call failed inside the component with an application error.
    AppError(String),
    /// The component panicked; it is dead until respawned.
    Crashed(String),
}

struct Envelope {
    req: IpcRequest,
    reply: Sender<IpcReply>,
}

/// Skeleton-side dispatch implemented by components that can be hosted in
/// an isolated capsule. This is the analogue of a COM stub: it unmarshals
/// the payload, performs the operation, and marshals the result.
pub trait IpcDispatch: Send + Sync + 'static {
    /// Handles one marshalled call.
    ///
    /// # Errors
    ///
    /// Returns a string error to signal an application-level failure
    /// (marshalled back as [`IpcReply::AppError`]).
    fn dispatch(
        &self,
        interface: &str,
        method: &str,
        payload: &[u8],
    ) -> std::result::Result<Vec<u8>, String>;
}

/// Client half of the boundary. Proxies hold an `Arc<IpcClient>`; the
/// supervisor can swap the underlying channel on respawn without
/// invalidating outstanding proxies.
pub struct IpcClient {
    sender: RwLock<Sender<Envelope>>,
    dead: AtomicBool,
    calls: AtomicU64,
    provider: ComponentId,
}

impl IpcClient {
    /// The logical component this client talks to.
    pub fn provider(&self) -> ComponentId {
        self.provider
    }

    /// True if the hosted component has crashed and not been respawned.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Number of calls issued through this client (diagnostics).
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Performs a synchronous marshalled call.
    ///
    /// # Errors
    ///
    /// * [`Error::ComponentCrashed`] if the hosted component panicked
    ///   (now or previously).
    /// * [`Error::IpcFailure`] if the host thread is gone.
    pub fn call(&self, interface: &str, method: &'static str, payload: Vec<u8>) -> Result<Vec<u8>> {
        if self.is_dead() {
            return Err(Error::ComponentCrashed {
                component: self.provider,
                message: "component is down (awaiting respawn)".into(),
            });
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let env = Envelope {
            req: IpcRequest {
                interface: interface.to_owned(),
                method: method.to_owned(),
                payload,
            },
            reply: reply_tx,
        };
        self.sender
            .read()
            .send(env)
            .map_err(|_| Error::IpcFailure {
                detail: "host channel closed".into(),
            })?;
        match reply_rx.recv() {
            Ok(IpcReply::Ok(bytes)) => Ok(bytes),
            Ok(IpcReply::AppError(msg)) => Err(Error::IpcFailure { detail: msg }),
            Ok(IpcReply::Crashed(msg)) => {
                self.dead.store(true, Ordering::Release);
                Err(Error::ComponentCrashed {
                    component: self.provider,
                    message: msg,
                })
            }
            Err(_) => Err(Error::IpcFailure {
                detail: "host dropped reply".into(),
            }),
        }
    }
}

impl fmt::Debug for IpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IpcClient(provider {}, dead: {}, {} calls)",
            self.provider,
            self.is_dead(),
            self.call_count()
        )
    }
}

/// Supervisor handle for a component hosted in its own isolated capsule.
pub struct IsolatedHost {
    client: Arc<IpcClient>,
    join: Option<JoinHandle<()>>,
    make: Box<dyn Fn() -> Arc<dyn IpcDispatch> + Send + Sync>,
    restarts: AtomicU64,
}

fn spawn_host_thread(target: Arc<dyn IpcDispatch>, rx: Receiver<Envelope>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(env) = rx.recv() {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                target.dispatch(&env.req.interface, &env.req.method, &env.req.payload)
            }));
            match outcome {
                Ok(Ok(bytes)) => {
                    let _ = env.reply.send(IpcReply::Ok(bytes));
                }
                Ok(Err(msg)) => {
                    let _ = env.reply.send(IpcReply::AppError(msg));
                }
                Err(panic_payload) => {
                    let msg = panic_payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic_payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic".to_owned());
                    // Crash semantics: report, then terminate the "process".
                    let _ = env.reply.send(IpcReply::Crashed(msg.clone()));
                    drop(rx);
                    return;
                }
            }
        }
    })
}

impl IsolatedHost {
    /// Instantiates the component via `make` and starts hosting it.
    ///
    /// `provider` is the logical component id the proxies report, so the
    /// architecture meta-model attributes bindings to the component rather
    /// than to the hosting machinery.
    pub fn spawn(
        provider: ComponentId,
        make: impl Fn() -> Arc<dyn IpcDispatch> + Send + Sync + 'static,
    ) -> Self {
        let (tx, rx) = unbounded();
        let target = make();
        let join = spawn_host_thread(target, rx);
        Self {
            client: Arc::new(IpcClient {
                sender: RwLock::new(tx),
                dead: AtomicBool::new(false),
                calls: AtomicU64::new(0),
                provider,
            }),
            join: Some(join),
            make: Box::new(make),
            restarts: AtomicU64::new(0),
        }
    }

    /// The shared client proxies should call through.
    pub fn client(&self) -> Arc<IpcClient> {
        Arc::clone(&self.client)
    }

    /// True if the hosted component is currently dead.
    pub fn is_dead(&self) -> bool {
        self.client.is_dead()
    }

    /// Times the supervisor has respawned the component.
    pub fn restart_count(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Recreates the component in a fresh host thread after a crash.
    /// Existing proxies resume working transparently — exactly the
    /// remote-management story of paper §5.
    pub fn respawn(&self) {
        let (tx, rx) = unbounded();
        let target = (self.make)();
        let join = spawn_host_thread(target, rx);
        *self.client.sender.write() = tx;
        self.client.dead.store(false, Ordering::Release);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        // The previous thread has exited (crash path) or exits once its
        // channel drains; the replacement runs detached because it owns no
        // shared state beyond the channel.
        drop(join);
    }
}

impl Drop for IsolatedHost {
    fn drop(&mut self) {
        // Close the channel so the host thread exits, then reap it.
        {
            let (tx, _rx) = unbounded();
            *self.client.sender.write() = tx;
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl fmt::Debug for IsolatedHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IsolatedHost(provider {}, dead: {}, restarts: {})",
            self.client.provider,
            self.is_dead(),
            self.restart_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Adder;
    impl IpcDispatch for Adder {
        fn dispatch(
            &self,
            _interface: &str,
            method: &str,
            payload: &[u8],
        ) -> std::result::Result<Vec<u8>, String> {
            match method {
                "add" => {
                    let mut pos = 0;
                    let a = wire::get_u64(payload, &mut pos).ok_or("bad a")?;
                    let b = wire::get_u64(payload, &mut pos).ok_or("bad b")?;
                    let mut out = Vec::new();
                    wire::put_u64(&mut out, a + b);
                    Ok(out)
                }
                "fail" => Err("application failure".into()),
                "crash" => panic!("boom"),
                other => Err(format!("no method `{other}`")),
            }
        }
    }

    fn host() -> IsolatedHost {
        IsolatedHost::spawn(ComponentId::from_raw(99), || Arc::new(Adder))
    }

    fn add_payload(a: u64, b: u64) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u64(&mut p, a);
        wire::put_u64(&mut p, b);
        p
    }

    #[test]
    fn marshalled_call_roundtrip() {
        let h = host();
        let out = h
            .client()
            .call("t.IAdd", "add", add_payload(20, 22))
            .unwrap();
        let mut pos = 0;
        assert_eq!(wire::get_u64(&out, &mut pos), Some(42));
        assert_eq!(h.client().call_count(), 1);
    }

    #[test]
    fn app_errors_are_not_crashes() {
        let h = host();
        let err = h.client().call("t.IAdd", "fail", vec![]).unwrap_err();
        assert!(matches!(err, Error::IpcFailure { .. }));
        assert!(!h.is_dead());
        // Still alive afterwards.
        assert!(h.client().call("t.IAdd", "add", add_payload(1, 2)).is_ok());
    }

    #[test]
    fn crash_is_contained_and_fails_fast_until_respawn() {
        let h = host();
        let err = h.client().call("t.IAdd", "crash", vec![]).unwrap_err();
        assert!(matches!(err, Error::ComponentCrashed { .. }));
        assert!(h.is_dead());
        // Subsequent calls fail fast without touching a thread.
        let err2 = h
            .client()
            .call("t.IAdd", "add", add_payload(1, 2))
            .unwrap_err();
        assert!(matches!(err2, Error::ComponentCrashed { .. }));
        // Supervisor restarts the component; the same client works again.
        h.respawn();
        assert!(!h.is_dead());
        assert!(h.client().call("t.IAdd", "add", add_payload(2, 3)).is_ok());
        assert_eq!(h.restart_count(), 1);
    }

    #[test]
    fn wire_roundtrip_mixed_fields() {
        let mut buf = Vec::new();
        wire::put_str(&mut buf, "hello");
        wire::put_u64(&mut buf, 7);
        wire::put_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(wire::get_str(&buf, &mut pos).unwrap(), "hello");
        assert_eq!(wire::get_u64(&buf, &mut pos).unwrap(), 7);
        assert_eq!(wire::get_bytes(&buf, &mut pos).unwrap(), vec![1, 2, 3]);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn wire_rejects_truncation() {
        let mut buf = Vec::new();
        wire::put_str(&mut buf, "hello");
        let mut pos = 0;
        assert!(wire::get_str(&buf[..buf.len() - 1], &mut pos).is_none());
        let mut pos2 = 0;
        assert!(wire::get_u64(&[1, 2, 3], &mut pos2).is_none());
    }

    #[test]
    fn concurrent_clients_share_host() {
        let h = Arc::new(host());
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let c = h.client();
            joins.push(std::thread::spawn(move || {
                let out = c.call("t.IAdd", "add", add_payload(i, i)).unwrap();
                let mut pos = 0;
                assert_eq!(wire::get_u64(&out, &mut pos), Some(2 * i));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.client().call_count(), 8);
    }
}
