//! Interface meta-model — run-time introspection of interface types.
//!
//! Rust offers no runtime reflection, so NETKIT-RS substitutes explicit
//! registration: every interface-defining crate registers an
//! [`InterfaceDescriptor`] describing its methods. Management tools can
//! then enumerate an unknown component's interfaces and their signatures
//! at run time — the role Windows type libraries played for the paper's
//! implementation.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::{ComponentId, InterfaceId};
use crate::interface::InterfaceDescriptor;

/// A queryable repository of interface descriptors.
///
/// One repository is shared per [`Runtime`](crate::runtime::Runtime); all
/// capsules consult the same descriptor set.
///
/// # Examples
///
/// ```
/// use opencom::ident::{InterfaceId, Version};
/// use opencom::interface::InterfaceDescriptor;
/// use opencom::meta::interface::InterfaceRepository;
///
/// const IFOO: InterfaceId = InterfaceId::new("demo.IFoo");
/// let repo = InterfaceRepository::new();
/// repo.register(
///     InterfaceDescriptor::new(IFOO, Version::new(1, 0, 0), "demo interface")
///         .method("frob", &[("n", "u32")], "u32", "frobs n"),
/// );
/// let d = repo.describe(IFOO)?;
/// assert_eq!(d.methods[0].name, "frob");
/// # Ok::<(), opencom::error::Error>(())
/// ```
#[derive(Default)]
pub struct InterfaceRepository {
    descriptors: RwLock<HashMap<InterfaceId, InterfaceDescriptor>>,
}

impl InterfaceRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a descriptor.
    pub fn register(&self, descriptor: InterfaceDescriptor) {
        self.descriptors.write().insert(descriptor.id, descriptor);
    }

    /// Retrieves the descriptor for `id`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InterfaceNotFound`] if the interface type was
    /// never registered.
    pub fn describe(&self, id: InterfaceId) -> Result<InterfaceDescriptor> {
        self.descriptors
            .read()
            .get(&id)
            .cloned()
            .ok_or(Error::InterfaceNotFound {
                component: ComponentId::from_raw(0),
                interface: id,
            })
    }

    /// True if a descriptor exists for `id`.
    pub fn contains(&self, id: InterfaceId) -> bool {
        self.descriptors.read().contains_key(&id)
    }

    /// All registered interface ids, sorted by name.
    pub fn interface_ids(&self) -> Vec<InterfaceId> {
        let mut ids: Vec<_> = self.descriptors.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.read().len()
    }

    /// True if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for InterfaceRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterfaceRepository({} descriptors)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::Version;

    const IA: InterfaceId = InterfaceId::new("t.IA");
    const IB: InterfaceId = InterfaceId::new("t.IB");

    #[test]
    fn register_and_describe() {
        let repo = InterfaceRepository::new();
        repo.register(
            InterfaceDescriptor::new(IA, Version::new(1, 0, 0), "a").method(
                "go",
                &[],
                "()",
                "runs",
            ),
        );
        let d = repo.describe(IA).unwrap();
        assert_eq!(d.methods.len(), 1);
        assert!(repo.contains(IA));
        assert!(!repo.contains(IB));
    }

    #[test]
    fn describe_unknown_fails() {
        let repo = InterfaceRepository::new();
        assert!(repo.describe(IA).is_err());
    }

    #[test]
    fn listing_is_sorted() {
        let repo = InterfaceRepository::new();
        repo.register(InterfaceDescriptor::new(IB, Version::default(), "b"));
        repo.register(InterfaceDescriptor::new(IA, Version::default(), "a"));
        assert_eq!(repo.interface_ids(), vec![IA, IB]);
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn re_registration_replaces() {
        let repo = InterfaceRepository::new();
        repo.register(InterfaceDescriptor::new(IA, Version::new(1, 0, 0), "old"));
        repo.register(InterfaceDescriptor::new(IA, Version::new(2, 0, 0), "new"));
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.describe(IA).unwrap().version, Version::new(2, 0, 0));
    }
}
