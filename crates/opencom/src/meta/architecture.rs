//! Architecture meta-model — structural reflection over a capsule.
//!
//! This is OpenCOM's "architecture meta-model" (paper §2): a causally
//! connected, per-capsule representation of the component graph —
//! components as nodes, bindings as edges — that supports *introspection*
//! (enumerate, inspect, export to Graphviz) and *adaptation* (unbind,
//! rebind, hot-replace, splice interceptors) at run time.
//!
//! Quiescence comes in two strengths (ablated in experiment E4):
//!
//! * **Per-edge** — every receptacle slot is guarded by a `RwLock`, so an
//!   individual rebind waits only for in-flight calls through that edge.
//! * **Full-graph** — [`ArchitectureMetaModel::quiesce`] hands out a write
//!   guard on a capsule-wide lock which cooperative data-path drivers hold
//!   for reading while they pump packets.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::component::Component;
use crate::error::{Error, Result};
use crate::ident::{BindingId, ComponentId, InterfaceId};
use crate::interception::InterceptorChain;
use crate::interface::InterfaceRef;

/// One edge of the component graph.
#[derive(Clone)]
pub struct BindingRecord {
    /// The binding's id.
    pub id: BindingId,
    /// Component whose receptacle holds the binding.
    pub src: ComponentId,
    /// Receptacle name on `src`.
    pub receptacle: String,
    /// Label under which the edge is attached (classifier output name…).
    pub label: String,
    /// Component exporting the bound interface.
    pub dst: ComponentId,
    /// Interface type flowing across the edge.
    pub interface: InterfaceId,
    /// The unintercepted interface reference (kept so interceptors can be
    /// removed again).
    pub raw: InterfaceRef,
    /// Interceptor chain, if the edge is currently intercepted.
    pub chain: Option<Arc<InterceptorChain>>,
}

impl fmt::Debug for BindingRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Binding({}: {}.{}[{}] -> {} : {}{})",
            self.id,
            self.src,
            self.receptacle,
            self.label,
            self.dst,
            self.interface,
            if self.chain.is_some() {
                " [intercepted]"
            } else {
                ""
            }
        )
    }
}

/// The causally connected structural model of one capsule.
#[derive(Default)]
pub struct ArchitectureMetaModel {
    components: RwLock<HashMap<ComponentId, Arc<dyn Component>>>,
    bindings: RwLock<HashMap<BindingId, BindingRecord>>,
    /// Capsule-wide quiescence lock (full-graph strategy).
    graph_lock: RwLock<()>,
}

impl ArchitectureMetaModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- introspection -------------------------------------------------

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.read().len()
    }

    /// Number of recorded bindings.
    pub fn binding_count(&self) -> usize {
        self.bindings.read().len()
    }

    /// Ids of all components, sorted.
    pub fn component_ids(&self) -> Vec<ComponentId> {
        let mut ids: Vec<_> = self.components.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Looks up a component by id.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    pub fn component(&self, id: ComponentId) -> Result<Arc<dyn Component>> {
        self.components
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::StaleReference {
                what: format!("component {id}"),
            })
    }

    /// Finds components whose deployable type name equals `type_name`.
    pub fn find_by_type(&self, type_name: &str) -> Vec<Arc<dyn Component>> {
        let comps = self.components.read();
        let mut found: Vec<_> = comps
            .values()
            .filter(|c| c.core().descriptor().type_name == type_name)
            .cloned()
            .collect();
        found.sort_by_key(|c| c.core().id());
        found
    }

    /// All binding records, sorted by id.
    pub fn binding_records(&self) -> Vec<BindingRecord> {
        let mut recs: Vec<_> = self.bindings.read().values().cloned().collect();
        recs.sort_by_key(|r| r.id);
        recs
    }

    /// Binding records with `id` as source or destination.
    pub fn bindings_of(&self, id: ComponentId) -> Vec<BindingRecord> {
        let mut recs: Vec<_> = self
            .bindings
            .read()
            .values()
            .filter(|r| r.src == id || r.dst == id)
            .cloned()
            .collect();
        recs.sort_by_key(|r| r.id);
        recs
    }

    /// Looks up one binding record.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    pub fn binding(&self, id: BindingId) -> Result<BindingRecord> {
        self.bindings
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::StaleReference {
                what: format!("binding {id}"),
            })
    }

    /// Renders the graph in Graphviz `dot` syntax — the "analyse software
    /// on a node as a single composite" affordance (paper §4).
    pub fn to_dot(&self, title: &str) -> String {
        let comps = self.components.read();
        let bindings = self.bindings.read();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let mut ids: Vec<_> = comps.keys().copied().collect();
        ids.sort();
        for id in ids {
            let c = &comps[&id];
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\\n{}\"];",
                id.as_raw(),
                c.core().descriptor().type_name,
                id
            );
        }
        let mut recs: Vec<_> = bindings.values().collect();
        recs.sort_by_key(|r| r.id);
        for r in recs {
            let style = if r.chain.is_some() {
                ",style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}{}\"{}];",
                r.src.as_raw(),
                r.dst.as_raw(),
                r.receptacle,
                if r.label.is_empty() {
                    String::new()
                } else {
                    format!(":{}", r.label)
                },
                style
            );
        }
        out.push_str("}\n");
        out
    }

    /// Total footprint estimate of the graph in bytes (experiment E3):
    /// the sum of every component's self-reported footprint plus the
    /// bookkeeping structures of the model itself.
    pub fn footprint_bytes(&self) -> usize {
        let comps = self.components.read();
        let body: usize = comps.values().map(|c| c.footprint_bytes()).sum();
        let records = self.bindings.read().len() * std::mem::size_of::<BindingRecord>();
        body + records + comps.len() * std::mem::size_of::<ComponentId>()
    }

    // ---- mutation (used by Capsule) ------------------------------------

    /// Registers a component.
    pub fn insert_component(&self, comp: Arc<dyn Component>) {
        self.components.write().insert(comp.core().id(), comp);
    }

    /// Removes a component.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::CfViolation`] if any binding still references
    /// the component — unbind first.
    pub fn remove_component(&self, id: ComponentId) -> Result<Arc<dyn Component>> {
        let dangling = self
            .bindings
            .read()
            .values()
            .any(|r| r.src == id || r.dst == id);
        if dangling {
            return Err(Error::CfViolation {
                framework: "architecture".into(),
                rule: format!("component {id} still has bindings"),
            });
        }
        self.components
            .write()
            .remove(&id)
            .ok_or_else(|| Error::StaleReference {
                what: format!("component {id}"),
            })
    }

    /// Records a new edge.
    pub fn insert_binding(&self, record: BindingRecord) {
        self.bindings.write().insert(record.id, record);
    }

    /// Deletes an edge record.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    pub fn take_binding(&self, id: BindingId) -> Result<BindingRecord> {
        self.bindings
            .write()
            .remove(&id)
            .ok_or_else(|| Error::StaleReference {
                what: format!("binding {id}"),
            })
    }

    /// Updates an edge record in place.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    pub fn update_binding(&self, id: BindingId, f: impl FnOnce(&mut BindingRecord)) -> Result<()> {
        let mut bindings = self.bindings.write();
        let rec = bindings.get_mut(&id).ok_or_else(|| Error::StaleReference {
            what: format!("binding {id}"),
        })?;
        f(rec);
        Ok(())
    }

    /// Rewrites every record whose `dst` is `old` to point at `new`
    /// (called during hot-replacement).
    pub fn retarget_dst(&self, old: ComponentId, new: ComponentId) {
        let mut bindings = self.bindings.write();
        for rec in bindings.values_mut() {
            if rec.dst == old {
                rec.dst = new;
            }
        }
    }

    /// Rewrites every record whose `src` is `old` to originate from `new`.
    pub fn retarget_src(&self, old: ComponentId, new: ComponentId) {
        let mut bindings = self.bindings.write();
        for rec in bindings.values_mut() {
            if rec.src == old {
                rec.src = new;
            }
        }
    }

    // ---- quiescence -----------------------------------------------------

    /// Acquires the full-graph quiescence lock for writing. Cooperative
    /// data-path drivers hold [`Self::data_path_guard`] while pumping, so
    /// this guard is granted only when the path is idle.
    pub fn quiesce(&self) -> RwLockWriteGuard<'_, ()> {
        self.graph_lock.write()
    }

    /// Read-side of the full-graph quiescence lock, held by data-path
    /// drivers for the duration of a packet batch.
    pub fn data_path_guard(&self) -> RwLockReadGuard<'_, ()> {
        self.graph_lock.read()
    }
}

impl fmt::Debug for ArchitectureMetaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ArchitectureMetaModel({} components, {} bindings)",
            self.component_count(),
            self.binding_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCore, ComponentDescriptor, Registrar};
    use crate::ident::Version;

    struct Dummy {
        core: ComponentCore,
    }
    impl Dummy {
        #[allow(clippy::new_ret_no_self)]
        fn new(type_name: &str) -> Arc<dyn Component> {
            Arc::new(Self {
                core: ComponentCore::new(ComponentDescriptor::new(
                    type_name,
                    Version::new(1, 0, 0),
                )),
            })
        }
    }
    impl Component for Dummy {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
    }

    fn record(src: ComponentId, dst: ComponentId) -> BindingRecord {
        let iref = InterfaceRef::new(
            InterfaceId::new("t.I"),
            dst,
            Arc::new(()) as Arc<dyn std::any::Any + Send + Sync>,
        );
        BindingRecord {
            id: BindingId::next(),
            src,
            receptacle: "out".into(),
            label: String::new(),
            dst,
            interface: InterfaceId::new("t.I"),
            raw: iref,
            chain: None,
        }
    }

    #[test]
    fn insert_and_enumerate() {
        let arch = ArchitectureMetaModel::new();
        let a = Dummy::new("A");
        let b = Dummy::new("B");
        arch.insert_component(a.clone());
        arch.insert_component(b.clone());
        assert_eq!(arch.component_count(), 2);
        assert_eq!(arch.find_by_type("A").len(), 1);
        assert_eq!(arch.find_by_type("C").len(), 0);
        assert!(arch.component(a.core().id()).is_ok());
    }

    #[test]
    fn remove_with_bindings_is_refused() {
        let arch = ArchitectureMetaModel::new();
        let a = Dummy::new("A");
        let b = Dummy::new("B");
        let (aid, bid) = (a.core().id(), b.core().id());
        arch.insert_component(a);
        arch.insert_component(b);
        let rec = record(aid, bid);
        let rid = rec.id;
        arch.insert_binding(rec);
        assert!(arch.remove_component(bid).is_err());
        arch.take_binding(rid).unwrap();
        assert!(arch.remove_component(bid).is_ok());
    }

    #[test]
    fn bindings_of_filters_by_endpoint() {
        let arch = ArchitectureMetaModel::new();
        let (a, b, c) = (Dummy::new("A"), Dummy::new("B"), Dummy::new("C"));
        let (aid, bid, cid) = (a.core().id(), b.core().id(), c.core().id());
        for x in [a, b, c] {
            arch.insert_component(x);
        }
        arch.insert_binding(record(aid, bid));
        arch.insert_binding(record(bid, cid));
        assert_eq!(arch.bindings_of(aid).len(), 1);
        assert_eq!(arch.bindings_of(bid).len(), 2);
        assert_eq!(arch.bindings_of(cid).len(), 1);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let arch = ArchitectureMetaModel::new();
        let a = Dummy::new("Classifier");
        let b = Dummy::new("Queue");
        let (aid, bid) = (a.core().id(), b.core().id());
        arch.insert_component(a);
        arch.insert_component(b);
        arch.insert_binding(record(aid, bid));
        let dot = arch.to_dot("router");
        assert!(dot.contains("digraph \"router\""));
        assert!(dot.contains("Classifier"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn retarget_rewrites_edges() {
        let arch = ArchitectureMetaModel::new();
        let (a, b, b2) = (Dummy::new("A"), Dummy::new("B"), Dummy::new("B"));
        let (aid, bid, b2id) = (a.core().id(), b.core().id(), b2.core().id());
        for x in [a, b, b2] {
            arch.insert_component(x);
        }
        let rec = record(aid, bid);
        arch.insert_binding(rec);
        arch.retarget_dst(bid, b2id);
        assert_eq!(arch.bindings_of(b2id).len(), 1);
        assert_eq!(arch.bindings_of(bid).len(), 0);
    }

    #[test]
    fn quiescence_lock_excludes_writers_while_reading() {
        let arch = Arc::new(ArchitectureMetaModel::new());
        let guard = arch.data_path_guard();
        let arch2 = Arc::clone(&arch);
        let t = std::thread::spawn(move || {
            let _w = arch2.quiesce();
        });
        // Writer must block until the data-path guard drops.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished());
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn footprint_counts_components_and_bindings() {
        let arch = ArchitectureMetaModel::new();
        let a = Dummy::new("A");
        let aid = a.core().id();
        arch.insert_component(a);
        let empty = arch.footprint_bytes();
        arch.insert_binding(record(aid, aid));
        assert!(arch.footprint_bytes() > empty);
    }
}
