//! The OpenCOM meta-models: architecture (structural reflection),
//! interface (introspection), and resources (tasks + allocation).

pub mod architecture;
pub mod interface;
pub mod resources;
