//! Resources meta-model — tasks and fine-grained resource control.
//!
//! The paper (§2, citing \[Blair,99\]) describes a privileged per-capsule CF
//! in which *tasks* are "dynamically-delineable units of work", typically
//! orthogonal to the component architecture, and *resources* "subsume not
//! only traditional system-level resources like threads, memory and network
//! bandwidth, but also abstract, application-defined, units of allocation".
//!
//! [`ResourceManager`] implements exactly that: string-named resource
//! classes with capacities, tasks with per-class grants, admission control,
//! usage accounting, and a task → component attachment map so composites
//! can "control the resourcing of designated tasks and map these flexibly
//! to their constituents" (paper §5). The RSVP-style signaling crate reuses
//! the same manager for per-link bandwidth admission.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::{ComponentId, TaskId};

/// Well-known resource class names. Classes are open-ended strings; these
/// constants just avoid typos for the common ones.
pub mod classes {
    /// CPU budget, in abstract cycles per second.
    pub const CPU: &str = "cpu";
    /// Memory quota, in bytes.
    pub const MEMORY: &str = "memory";
    /// Network bandwidth, in bytes per second.
    pub const BANDWIDTH: &str = "bandwidth";
    /// Packets processed — the class sharded dataplanes roll their
    /// per-worker counters up into, so a pipeline replicated across N
    /// shards still reads as **one** logical task to reflection.
    pub const PACKETS: &str = "packets";
    /// Shard-rebalance epochs applied — each bucket-table migration a
    /// reflective load balancer installs counts one, so introspection
    /// can see how often a dataplane's placement is being rewritten.
    pub const REBALANCES: &str = "rebalances";
    /// Autonomous control-loop turns — the reflective loop consumes
    /// one per inspect→decide tick on its own task, so introspection
    /// can see how often a dataplane is *looking* (ticks) versus
    /// *acting* (rebalances), including the backoff going idle.
    pub const TICKS: &str = "control-ticks";
    /// Fault-recovery actions — each worker respawn and each
    /// quarantine/restore steering patch the self-healing control
    /// loop applies counts one, so introspection can tell a dataplane
    /// that is merely busy from one that is *surviving*: restarts and
    /// re-steers are self-accounted the same way ticks and rebalances
    /// are.
    pub const FAULTS: &str = "fault-recoveries";
}

/// A pool for one resource class.
#[derive(Debug)]
struct Pool {
    capacity: u64,
    granted: u64,
}

/// A task: a named, dynamically-delineable unit of work to which resources
/// are granted and components attached.
#[derive(Debug, Clone)]
pub struct TaskInfo {
    /// The task's id.
    pub id: TaskId,
    /// Human-readable name, unique within the manager.
    pub name: String,
    /// Per-class grants (class → units granted).
    pub grants: HashMap<String, u64>,
    /// Per-class consumption recorded so far.
    pub usage: HashMap<String, u64>,
    /// Components currently attached to the task.
    pub attached: Vec<ComponentId>,
}

#[derive(Debug)]
struct TaskState {
    info: TaskInfo,
}

/// Admission-controlled resource pools plus task accounting.
///
/// # Examples
///
/// ```
/// use opencom::meta::resources::{classes, ResourceManager};
///
/// let rm = ResourceManager::new();
/// rm.define_class(classes::BANDWIDTH, 10_000_000); // 10 MB/s link
/// let task = rm.create_task("video-flow")?;
/// rm.grant(task, classes::BANDWIDTH, 2_000_000)?;  // admit 2 MB/s
/// assert_eq!(rm.available(classes::BANDWIDTH)?, 8_000_000);
/// rm.release_task(task)?;                           // tear down: capacity returns
/// assert_eq!(rm.available(classes::BANDWIDTH)?, 10_000_000);
/// # Ok::<(), opencom::error::Error>(())
/// ```
#[derive(Default)]
pub struct ResourceManager {
    pools: RwLock<HashMap<String, Pool>>,
    tasks: RwLock<HashMap<TaskId, TaskState>>,
}

impl ResourceManager {
    /// Creates a manager with no resource classes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines (or re-dimensions) a resource class with total `capacity`.
    ///
    /// Re-dimensioning below the currently granted amount is allowed; the
    /// pool is then over-committed until grants are released, which mirrors
    /// adaptive QoS renegotiation.
    pub fn define_class(&self, class: impl Into<String>, capacity: u64) {
        let class = class.into();
        let mut pools = self.pools.write();
        let granted = pools.get(&class).map_or(0, |p| p.granted);
        pools.insert(class, Pool { capacity, granted });
    }

    /// Units not yet granted in `class`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::ResourceExhausted`] (available = 0) if the class
    /// does not exist.
    pub fn available(&self, class: &str) -> Result<u64> {
        let pools = self.pools.read();
        let pool = pools.get(class).ok_or_else(|| Error::ResourceExhausted {
            class: class.to_owned(),
            requested: 0,
            available: 0,
        })?;
        Ok(pool.capacity.saturating_sub(pool.granted))
    }

    /// Total capacity of `class`, if defined.
    pub fn capacity(&self, class: &str) -> Option<u64> {
        self.pools.read().get(class).map(|p| p.capacity)
    }

    /// Creates a new task.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if a task with the same name
    /// already exists (names are the management handle, so they must be
    /// unambiguous).
    pub fn create_task(&self, name: impl Into<String>) -> Result<TaskId> {
        let name = name.into();
        let mut tasks = self.tasks.write();
        if tasks.values().any(|t| t.info.name == name) {
            return Err(Error::UnknownTask {
                name: format!("duplicate task name `{name}`"),
            });
        }
        let id = TaskId::next();
        tasks.insert(
            id,
            TaskState {
                info: TaskInfo {
                    id,
                    name,
                    grants: HashMap::new(),
                    usage: HashMap::new(),
                    attached: Vec::new(),
                },
            },
        );
        Ok(id)
    }

    /// Grants `units` of `class` to `task`, subject to admission control.
    ///
    /// # Errors
    ///
    /// * [`Error::ResourceExhausted`] if the pool cannot cover the request.
    /// * [`Error::UnknownTask`] if the task does not exist.
    pub fn grant(&self, task: TaskId, class: &str, units: u64) -> Result<()> {
        let mut pools = self.pools.write();
        let pool = pools
            .get_mut(class)
            .ok_or_else(|| Error::ResourceExhausted {
                class: class.to_owned(),
                requested: units,
                available: 0,
            })?;
        let available = pool.capacity.saturating_sub(pool.granted);
        if units > available {
            return Err(Error::ResourceExhausted {
                class: class.to_owned(),
                requested: units,
                available,
            });
        }
        let mut tasks = self.tasks.write();
        let state = tasks.get_mut(&task).ok_or_else(|| Error::UnknownTask {
            name: task.to_string(),
        })?;
        pool.granted += units;
        *state.info.grants.entry(class.to_owned()).or_insert(0) += units;
        Ok(())
    }

    /// Returns `units` of `class` from `task` to the pool.
    ///
    /// # Errors
    ///
    /// Fails if the task does not exist or holds less than `units`.
    pub fn revoke(&self, task: TaskId, class: &str, units: u64) -> Result<()> {
        let mut tasks = self.tasks.write();
        let state = tasks.get_mut(&task).ok_or_else(|| Error::UnknownTask {
            name: task.to_string(),
        })?;
        let held = state
            .info
            .grants
            .get_mut(class)
            .ok_or_else(|| Error::ResourceExhausted {
                class: class.to_owned(),
                requested: units,
                available: 0,
            })?;
        if *held < units {
            return Err(Error::ResourceExhausted {
                class: class.to_owned(),
                requested: units,
                available: *held,
            });
        }
        *held -= units;
        let mut pools = self.pools.write();
        if let Some(pool) = pools.get_mut(class) {
            pool.granted = pool.granted.saturating_sub(units);
        }
        Ok(())
    }

    /// Records consumption of `units` against the task's grant. Returns the
    /// task's remaining headroom in the class (grant − usage, saturating).
    ///
    /// Consumption beyond the grant is permitted but reported as zero
    /// headroom — policing is the caller's policy decision.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if the task does not exist.
    pub fn consume(&self, task: TaskId, class: &str, units: u64) -> Result<u64> {
        let mut tasks = self.tasks.write();
        let state = tasks.get_mut(&task).ok_or_else(|| Error::UnknownTask {
            name: task.to_string(),
        })?;
        let used = state.info.usage.entry(class.to_owned()).or_insert(0);
        *used += units;
        let granted = state.info.grants.get(class).copied().unwrap_or(0);
        Ok(granted.saturating_sub(*used))
    }

    /// Attaches a component to a task ("map tasks flexibly to
    /// constituents", paper §5). A component may serve several tasks.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if the task does not exist.
    pub fn attach(&self, task: TaskId, component: ComponentId) -> Result<()> {
        let mut tasks = self.tasks.write();
        let state = tasks.get_mut(&task).ok_or_else(|| Error::UnknownTask {
            name: task.to_string(),
        })?;
        if !state.info.attached.contains(&component) {
            state.info.attached.push(component);
        }
        Ok(())
    }

    /// Detaches a component from a task.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if the task does not exist.
    pub fn detach(&self, task: TaskId, component: ComponentId) -> Result<()> {
        let mut tasks = self.tasks.write();
        let state = tasks.get_mut(&task).ok_or_else(|| Error::UnknownTask {
            name: task.to_string(),
        })?;
        state.info.attached.retain(|c| *c != component);
        Ok(())
    }

    /// Destroys the task, returning all its grants to their pools.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if the task does not exist.
    pub fn release_task(&self, task: TaskId) -> Result<()> {
        let state = self
            .tasks
            .write()
            .remove(&task)
            .ok_or_else(|| Error::UnknownTask {
                name: task.to_string(),
            })?;
        let mut pools = self.pools.write();
        for (class, units) in state.info.grants {
            if let Some(pool) = pools.get_mut(&class) {
                pool.granted = pool.granted.saturating_sub(units);
            }
        }
        Ok(())
    }

    /// Snapshot of a task's state.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownTask`] if the task does not exist.
    pub fn task_info(&self, task: TaskId) -> Result<TaskInfo> {
        self.tasks
            .read()
            .get(&task)
            .map(|t| t.info.clone())
            .ok_or_else(|| Error::UnknownTask {
                name: task.to_string(),
            })
    }

    /// Looks up a task id by name.
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks
            .read()
            .values()
            .find(|t| t.info.name == name)
            .map(|t| t.info.id)
    }

    /// Snapshot of every task, sorted by id.
    pub fn tasks(&self) -> Vec<TaskInfo> {
        let mut all: Vec<_> = self.tasks.read().values().map(|t| t.info.clone()).collect();
        all.sort_by_key(|t| t.id);
        all
    }
}

impl fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ResourceManager({} classes, {} tasks)",
            self.pools.read().len(),
            self.tasks.read().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_rejects_overcommit() {
        let rm = ResourceManager::new();
        rm.define_class(classes::CPU, 100);
        let t = rm.create_task("t").unwrap();
        rm.grant(t, classes::CPU, 60).unwrap();
        let err = rm.grant(t, classes::CPU, 60).unwrap_err();
        match err {
            Error::ResourceExhausted {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, 60);
                assert_eq!(available, 40);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grants_accumulate_and_revoke_returns() {
        let rm = ResourceManager::new();
        rm.define_class(classes::MEMORY, 1000);
        let t = rm.create_task("t").unwrap();
        rm.grant(t, classes::MEMORY, 300).unwrap();
        rm.grant(t, classes::MEMORY, 200).unwrap();
        assert_eq!(rm.available(classes::MEMORY).unwrap(), 500);
        rm.revoke(t, classes::MEMORY, 400).unwrap();
        assert_eq!(rm.available(classes::MEMORY).unwrap(), 900);
        assert!(rm.revoke(t, classes::MEMORY, 400).is_err());
    }

    #[test]
    fn release_task_returns_all_grants() {
        let rm = ResourceManager::new();
        rm.define_class(classes::BANDWIDTH, 50);
        let a = rm.create_task("a").unwrap();
        let b = rm.create_task("b").unwrap();
        rm.grant(a, classes::BANDWIDTH, 20).unwrap();
        rm.grant(b, classes::BANDWIDTH, 20).unwrap();
        rm.release_task(a).unwrap();
        assert_eq!(rm.available(classes::BANDWIDTH).unwrap(), 30);
        assert!(rm.task_info(a).is_err());
        assert!(rm.task_info(b).is_ok());
    }

    #[test]
    fn consume_reports_headroom() {
        let rm = ResourceManager::new();
        rm.define_class(classes::CPU, 100);
        let t = rm.create_task("t").unwrap();
        rm.grant(t, classes::CPU, 50).unwrap();
        assert_eq!(rm.consume(t, classes::CPU, 10).unwrap(), 40);
        assert_eq!(rm.consume(t, classes::CPU, 45).unwrap(), 0); // over budget
        let info = rm.task_info(t).unwrap();
        assert_eq!(info.usage[classes::CPU], 55);
    }

    #[test]
    fn duplicate_task_names_rejected() {
        let rm = ResourceManager::new();
        rm.create_task("x").unwrap();
        assert!(rm.create_task("x").is_err());
    }

    #[test]
    fn attach_detach_components() {
        let rm = ResourceManager::new();
        let t = rm.create_task("t").unwrap();
        let c1 = ComponentId::from_raw(11);
        let c2 = ComponentId::from_raw(12);
        rm.attach(t, c1).unwrap();
        rm.attach(t, c2).unwrap();
        rm.attach(t, c1).unwrap(); // idempotent
        assert_eq!(rm.task_info(t).unwrap().attached.len(), 2);
        rm.detach(t, c1).unwrap();
        assert_eq!(rm.task_info(t).unwrap().attached, vec![c2]);
    }

    #[test]
    fn find_task_by_name() {
        let rm = ResourceManager::new();
        let t = rm.create_task("video").unwrap();
        assert_eq!(rm.find_task("video"), Some(t));
        assert_eq!(rm.find_task("audio"), None);
    }

    #[test]
    fn redimension_allows_overcommitted_state() {
        let rm = ResourceManager::new();
        rm.define_class(classes::CPU, 100);
        let t = rm.create_task("t").unwrap();
        rm.grant(t, classes::CPU, 80).unwrap();
        rm.define_class(classes::CPU, 50); // shrink below granted
        assert_eq!(rm.available(classes::CPU).unwrap(), 0);
        assert!(rm.grant(t, classes::CPU, 1).is_err());
        rm.revoke(t, classes::CPU, 40).unwrap();
        assert_eq!(rm.available(classes::CPU).unwrap(), 10);
    }
}
