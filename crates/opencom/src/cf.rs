//! Component frameworks (CFs) and access control.
//!
//! Szyperski's definition, quoted by the paper: component frameworks are
//! "collections of rules and interfaces that govern the interaction of a
//! set of components 'plugged into' them". In OpenCOM, CFs provide
//! structure for domain-specific configurations and encapsulate the
//! domain rules, checked *at run time* both on admission and after every
//! dynamic change.
//!
//! A [`Cf`] instance attaches to a [`Capsule`]
//! and governs a subset of its components. Rule logic is supplied by a
//! [`CfRules`] implementation (the router crate supplies the paper's
//! Router CF rules). Constraint addition/removal is policed by an
//! [`Acl`], as required for composites in paper §5.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::binding::{BindConstraint, BindRequest, ConstraintSet};
use crate::capsule::Capsule;
use crate::component::Component;
use crate::error::{Error, Result};
use crate::ident::{BindingId, ComponentId, InterfaceId};

/// An authenticated caller of management operations.
///
/// NETKIT-RS does not model credentials; a principal is a name attached
/// to management requests, checked against per-CF ACLs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Principal(pub String);

impl Principal {
    /// Creates a principal from a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The built-in all-powerful principal used by infrastructure code.
    pub fn system() -> Self {
        Self("system".into())
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Management operations subject to access control.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CfOperation {
    /// Plug a component into the CF.
    AddComponent,
    /// Unplug a component.
    RemoveComponent,
    /// Create a binding between members.
    Bind,
    /// Remove a binding.
    Unbind,
    /// Install a bind-time constraint.
    AddConstraint,
    /// Remove a bind-time constraint.
    RemoveConstraint,
    /// Hot-replace a member.
    Replace,
    /// Splice an interceptor into a member binding.
    Intercept,
}

/// A per-CF access-control list.
///
/// The `system` principal is always allowed. Everyone else must hold an
/// explicit grant.
#[derive(Default)]
pub struct Acl {
    grants: RwLock<HashMap<Principal, HashSet<CfOperation>>>,
}

impl Acl {
    /// Creates an ACL where only `system` may act.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `op` to `principal`.
    pub fn grant(&self, principal: Principal, op: CfOperation) {
        self.grants.write().entry(principal).or_default().insert(op);
    }

    /// Revokes `op` from `principal`.
    pub fn revoke(&self, principal: &Principal, op: CfOperation) {
        if let Some(ops) = self.grants.write().get_mut(principal) {
            ops.remove(&op);
        }
    }

    /// Checks whether `principal` may perform `op`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::AccessDenied`] if not.
    pub fn check(&self, principal: &Principal, op: CfOperation) -> Result<()> {
        if principal == &Principal::system() {
            return Ok(());
        }
        let allowed = self
            .grants
            .read()
            .get(principal)
            .map(|ops| ops.contains(&op))
            .unwrap_or(false);
        if allowed {
            Ok(())
        } else {
            Err(Error::AccessDenied {
                principal: principal.0.clone(),
                operation: format!("{op:?}"),
            })
        }
    }
}

impl fmt::Debug for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Acl({} principals)", self.grants.read().len())
    }
}

/// Domain rules enforced by a component framework.
///
/// Implementations should be cheap: `admit` runs on every plug,
/// `check_bind` on every bind between members, and `recheck_member` after
/// every dynamic interface addition/removal (the paper's "as long as the
/// CF's rules remain satisfied").
pub trait CfRules: Send + Sync {
    /// Rule-set name for error messages.
    fn name(&self) -> &str;

    /// Validates a component at plug time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CfViolation`] describing the broken rule.
    fn admit(&self, comp: &Arc<dyn Component>) -> Result<()>;

    /// Validates a proposed binding between members.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CfViolation`] (or a veto) to refuse the bind.
    fn check_bind(&self, req: &BindRequest) -> Result<()> {
        let _ = req;
        Ok(())
    }

    /// Re-validates a member after dynamic change.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CfViolation`] if the member no longer conforms.
    fn recheck_member(&self, comp: &Arc<dyn Component>) -> Result<()> {
        self.admit(comp)
    }
}

/// A rule set that admits everything (useful for tests and scaffolding).
#[derive(Debug, Default, Clone, Copy)]
pub struct PermissiveRules;

impl CfRules for PermissiveRules {
    fn name(&self) -> &str {
        "permissive"
    }
    fn admit(&self, _comp: &Arc<dyn Component>) -> Result<()> {
        Ok(())
    }
}

/// A component framework instance attached to a capsule.
pub struct Cf {
    name: String,
    rules: Arc<dyn CfRules>,
    capsule: Arc<Capsule>,
    members: RwLock<Vec<ComponentId>>,
    constraints: Arc<ConstraintSet>,
    acl: Acl,
}

impl Cf {
    /// Creates a CF named `name` over `capsule` with the given rules.
    pub fn new(name: impl Into<String>, capsule: Arc<Capsule>, rules: Arc<dyn CfRules>) -> Self {
        Self {
            name: name.into(),
            rules,
            capsule,
            members: RwLock::new(Vec::new()),
            constraints: Arc::new(ConstraintSet::new()),
            acl: Acl::new(),
        }
    }

    /// The CF's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The governing capsule.
    pub fn capsule(&self) -> &Arc<Capsule> {
        &self.capsule
    }

    /// The CF's ACL, for granting management rights.
    pub fn acl(&self) -> &Acl {
        &self.acl
    }

    /// Current member ids in plug order.
    pub fn members(&self) -> Vec<ComponentId> {
        self.members.read().clone()
    }

    /// True if `id` is plugged into this CF.
    pub fn is_member(&self, id: ComponentId) -> bool {
        self.members.read().contains(&id)
    }

    /// Plugs an already-hosted component into the CF after rule admission.
    ///
    /// # Errors
    ///
    /// * [`Error::AccessDenied`] if the principal lacks `AddComponent`.
    /// * [`Error::CfViolation`] if the rules refuse the component.
    pub fn plug(&self, principal: &Principal, id: ComponentId) -> Result<()> {
        self.acl.check(principal, CfOperation::AddComponent)?;
        let comp = self.capsule.component(id)?;
        self.rules.admit(&comp)?;
        let mut members = self.members.write();
        if !members.contains(&id) {
            members.push(id);
        }
        Ok(())
    }

    /// Unplugs a member (bindings must already be removed).
    ///
    /// # Errors
    ///
    /// * [`Error::AccessDenied`] if the principal lacks `RemoveComponent`.
    /// * [`Error::StaleReference`] if `id` is not a member.
    pub fn unplug(&self, principal: &Principal, id: ComponentId) -> Result<()> {
        self.acl.check(principal, CfOperation::RemoveComponent)?;
        let mut members = self.members.write();
        match members.iter().position(|m| *m == id) {
            Some(idx) => {
                members.remove(idx);
                Ok(())
            }
            None => Err(Error::StaleReference {
                what: format!("member {id}"),
            }),
        }
    }

    /// Binds two members through the capsule, first applying the CF's
    /// rule check and its dynamic constraint set.
    ///
    /// # Errors
    ///
    /// Propagates ACL, rule, constraint, and capsule bind errors.
    pub fn bind(
        &self,
        principal: &Principal,
        src: ComponentId,
        receptacle: &str,
        label: &str,
        dst: ComponentId,
        interface: InterfaceId,
    ) -> Result<BindingId> {
        self.acl.check(principal, CfOperation::Bind)?;
        if !self.is_member(src) || !self.is_member(dst) {
            return Err(Error::CfViolation {
                framework: self.name.clone(),
                rule: "both endpoints must be plugged into the CF".into(),
            });
        }
        let req = self
            .capsule
            .bind_request(src, receptacle, label, dst, interface)?;
        self.rules.check_bind(&req)?;
        self.constraints.check(&req)?;
        self.capsule.bind(src, receptacle, label, dst, interface)
    }

    /// Removes a binding between members.
    ///
    /// # Errors
    ///
    /// Propagates ACL and capsule errors.
    pub fn unbind(&self, principal: &Principal, binding: BindingId) -> Result<()> {
        self.acl.check(principal, CfOperation::Unbind)?;
        self.capsule.unbind(binding)
    }

    /// Installs a dynamic constraint (paper §5: "dynamic addition/ removal
    /// of arbitrary constraints … policed by an ACL").
    ///
    /// # Errors
    ///
    /// Fails with [`Error::AccessDenied`] without an `AddConstraint` grant.
    pub fn add_constraint(
        &self,
        principal: &Principal,
        constraint: Arc<dyn BindConstraint>,
    ) -> Result<()> {
        self.acl.check(principal, CfOperation::AddConstraint)?;
        self.constraints.add(constraint);
        Ok(())
    }

    /// Removes a dynamic constraint by name.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::AccessDenied`] without a `RemoveConstraint`
    /// grant, or [`Error::StaleReference`] for unknown names.
    pub fn remove_constraint(&self, principal: &Principal, name: &str) -> Result<()> {
        self.acl.check(principal, CfOperation::RemoveConstraint)?;
        self.constraints.remove(name)
    }

    /// Names of the installed dynamic constraints.
    pub fn constraint_names(&self) -> Vec<String> {
        self.constraints.names()
    }

    /// Re-checks every member against the rules (run after dynamic
    /// interface addition/removal).
    ///
    /// # Errors
    ///
    /// Returns the first member violation found.
    pub fn recheck(&self) -> Result<()> {
        for id in self.members.read().iter() {
            let comp = self.capsule.component(*id)?;
            self.rules.recheck_member(&comp)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cf(`{}` rules=`{}`, {} members)",
            self.name,
            self.rules.name(),
            self.members.read().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCore, ComponentDescriptor, Registrar};
    use crate::ident::Version;
    use crate::runtime::Runtime;

    struct Plain {
        core: ComponentCore,
    }
    impl Plain {
        fn make(type_name: &str) -> Arc<dyn Component> {
            Arc::new(Self {
                core: ComponentCore::new(ComponentDescriptor::new(
                    type_name,
                    Version::new(1, 0, 0),
                )),
            })
        }
    }
    impl Component for Plain {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
    }

    struct OnlyWidgets;
    impl CfRules for OnlyWidgets {
        fn name(&self) -> &str {
            "only-widgets"
        }
        fn admit(&self, comp: &Arc<dyn Component>) -> Result<()> {
            if comp.core().descriptor().type_name.starts_with("Widget") {
                Ok(())
            } else {
                Err(Error::CfViolation {
                    framework: "only-widgets".into(),
                    rule: "type must start with Widget".into(),
                })
            }
        }
    }

    fn setup() -> (Arc<Capsule>, Cf) {
        let rt = Runtime::new();
        let capsule = Capsule::new("test", &rt);
        let cf = Cf::new("cf", Arc::clone(&capsule), Arc::new(OnlyWidgets));
        (capsule, cf)
    }

    #[test]
    fn admission_enforces_rules() {
        let (capsule, cf) = setup();
        let good = capsule.adopt(Plain::make("WidgetA")).unwrap();
        let bad = capsule.adopt(Plain::make("Gadget")).unwrap();
        let sys = Principal::system();
        cf.plug(&sys, good).unwrap();
        assert!(matches!(cf.plug(&sys, bad), Err(Error::CfViolation { .. })));
        assert!(cf.is_member(good));
        assert!(!cf.is_member(bad));
    }

    #[test]
    fn acl_polices_non_system_principals() {
        let (capsule, cf) = setup();
        let id = capsule.adopt(Plain::make("WidgetA")).unwrap();
        let alice = Principal::new("alice");
        assert!(matches!(
            cf.plug(&alice, id),
            Err(Error::AccessDenied { .. })
        ));
        cf.acl().grant(alice.clone(), CfOperation::AddComponent);
        cf.plug(&alice, id).unwrap();
        cf.acl().revoke(&alice, CfOperation::AddComponent);
        let id2 = capsule.adopt(Plain::make("WidgetB")).unwrap();
        assert!(cf.plug(&alice, id2).is_err());
    }

    #[test]
    fn constraint_management_requires_grants() {
        let (_capsule, cf) = setup();
        let bob = Principal::new("bob");
        let c = crate::binding::TopologyRule::Forbid("A".into(), "B".into()).into_constraint();
        assert!(cf.add_constraint(&bob, c.clone()).is_err());
        cf.acl().grant(bob.clone(), CfOperation::AddConstraint);
        cf.add_constraint(&bob, c).unwrap();
        assert_eq!(cf.constraint_names().len(), 1);
        // Removal is a separate right.
        let name = cf.constraint_names()[0].clone();
        assert!(cf.remove_constraint(&bob, &name).is_err());
        cf.acl().grant(bob.clone(), CfOperation::RemoveConstraint);
        cf.remove_constraint(&bob, &name).unwrap();
    }

    #[test]
    fn unplug_unknown_member_fails() {
        let (capsule, cf) = setup();
        let id = capsule.adopt(Plain::make("WidgetA")).unwrap();
        assert!(cf.unplug(&Principal::system(), id).is_err());
    }

    #[test]
    fn recheck_detects_later_violations() {
        // A rules impl that requires a specific interface; retracting the
        // interface makes recheck fail.
        struct NeedsIface;
        const IFACE: InterfaceId = InterfaceId::new("t.INeeded");
        impl CfRules for NeedsIface {
            fn name(&self) -> &str {
                "needs-iface"
            }
            fn admit(&self, comp: &Arc<dyn Component>) -> Result<()> {
                if comp.core().interfaces().contains(&IFACE) {
                    Ok(())
                } else {
                    Err(Error::CfViolation {
                        framework: "needs-iface".into(),
                        rule: "must export t.INeeded".into(),
                    })
                }
            }
        }

        trait INeeded: Send + Sync {}
        struct WithIface {
            core: ComponentCore,
        }
        impl INeeded for WithIface {}
        impl Component for WithIface {
            fn core(&self) -> &ComponentCore {
                &self.core
            }
            fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
                let me: Arc<dyn INeeded> = self.clone();
                reg.expose(IFACE, &me);
            }
        }

        let rt = Runtime::new();
        let capsule = Capsule::new("test", &rt);
        let cf = Cf::new("cf", Arc::clone(&capsule), Arc::new(NeedsIface));
        let comp: Arc<dyn Component> = Arc::new(WithIface {
            core: ComponentCore::new(ComponentDescriptor::new("t.W", Version::new(1, 0, 0))),
        });
        let id = capsule.adopt(comp.clone()).unwrap();
        cf.plug(&Principal::system(), id).unwrap();
        cf.recheck().unwrap();
        comp.core().retract_interface(IFACE).unwrap();
        assert!(matches!(cf.recheck(), Err(Error::CfViolation { .. })));
    }
}
