//! The `bind` primitive's constraint machinery.
//!
//! OpenCOM supports "the dynamic addition/ removal of arbitrary
//! constraints … implemented as interceptors on OpenCOM's `bind`
//! primitive" (paper §5). A [`BindConstraint`] inspects a proposed
//! [`BindRequest`] and may veto it; a [`ConstraintSet`] holds the named
//! constraints attached to a capsule or composite. Composites police
//! addition/removal through an ACL (see [`crate::cf::Acl`]).

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::{ComponentId, InterfaceId};

/// A proposed binding, as seen by bind-time constraints.
#[derive(Clone, Debug)]
pub struct BindRequest {
    /// Component whose receptacle is being bound.
    pub src: ComponentId,
    /// Deployable type name of the source component.
    pub src_type: String,
    /// Receptacle name on the source.
    pub receptacle: String,
    /// Label under which the binding attaches (empty for single slots).
    pub label: String,
    /// Component exporting the interface.
    pub dst: ComponentId,
    /// Deployable type name of the destination component.
    pub dst_type: String,
    /// Interface type being bound.
    pub interface: InterfaceId,
}

/// A constraint evaluated on every `bind` in its scope.
pub trait BindConstraint: Send + Sync {
    /// Constraint name, used for removal and in veto errors.
    fn name(&self) -> &str;

    /// Checks the request.
    ///
    /// # Errors
    ///
    /// Returning an error vetoes the bind; the error is surfaced to the
    /// caller of the `bind` primitive.
    fn check(&self, req: &BindRequest) -> Result<()>;
}

/// A constraint built from a closure.
pub struct FnConstraint<F> {
    name: String,
    check: F,
}

impl<F> std::fmt::Debug for FnConstraint<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnConstraint(`{}`)", self.name)
    }
}

impl<F> FnConstraint<F>
where
    F: Fn(&BindRequest) -> Result<()> + Send + Sync + 'static,
{
    /// Creates a named constraint from a closure.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(name: impl Into<String>, check: F) -> Arc<dyn BindConstraint> {
        Arc::new(Self {
            name: name.into(),
            check,
        })
    }
}

impl<F> BindConstraint for FnConstraint<F>
where
    F: Fn(&BindRequest) -> Result<()> + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn check(&self, req: &BindRequest) -> Result<()> {
        (self.check)(req)
    }
}

/// Common topology constraints, ready-made for router composites.
///
/// These express the Figure-3 style rules ("the link scheduler must come
/// after the forwarding stage", "at most one protocol recogniser", …).
#[derive(Clone, Debug)]
pub enum TopologyRule {
    /// Components of type `.0` may never bind directly to components of
    /// type `.1`.
    Forbid(String, String),
    /// Components of type `.0` may *only* bind to components of type `.1`.
    OnlyTo(String, String),
    /// The given interface may not appear as the target of any binding.
    FreezeInterface(InterfaceId),
}

impl TopologyRule {
    /// Converts the rule into a named [`BindConstraint`].
    pub fn into_constraint(self) -> Arc<dyn BindConstraint> {
        let name = match &self {
            TopologyRule::Forbid(a, b) => format!("forbid:{a}->{b}"),
            TopologyRule::OnlyTo(a, b) => format!("only:{a}->{b}"),
            TopologyRule::FreezeInterface(i) => format!("freeze:{i}"),
        };
        let rule = self;
        FnConstraint::new(name.clone(), move |req| match &rule {
            TopologyRule::Forbid(a, b) => {
                if req.src_type == *a && req.dst_type == *b {
                    Err(Error::ConstraintVeto {
                        constraint: name.clone(),
                        reason: format!("{a} may not bind to {b}"),
                    })
                } else {
                    Ok(())
                }
            }
            TopologyRule::OnlyTo(a, b) => {
                if req.src_type == *a && req.dst_type != *b {
                    Err(Error::ConstraintVeto {
                        constraint: name.clone(),
                        reason: format!("{a} may only bind to {b}"),
                    })
                } else {
                    Ok(())
                }
            }
            TopologyRule::FreezeInterface(iface) => {
                if req.interface == *iface {
                    Err(Error::ConstraintVeto {
                        constraint: name.clone(),
                        reason: format!("interface {iface} is frozen"),
                    })
                } else {
                    Ok(())
                }
            }
        })
    }
}

/// The mutable set of constraints attached to a capsule or composite.
#[derive(Default)]
pub struct ConstraintSet {
    constraints: RwLock<Vec<Arc<dyn BindConstraint>>>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint. Callers enforcing access control check the ACL
    /// *before* calling this.
    pub fn add(&self, constraint: Arc<dyn BindConstraint>) {
        self.constraints.write().push(constraint);
    }

    /// Removes the first constraint with the given name.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] if no constraint has that name.
    pub fn remove(&self, name: &str) -> Result<()> {
        let mut cs = self.constraints.write();
        match cs.iter().position(|c| c.name() == name) {
            Some(idx) => {
                cs.remove(idx);
                Ok(())
            }
            None => Err(Error::StaleReference {
                what: format!("constraint `{name}`"),
            }),
        }
    }

    /// Evaluates every constraint against `req`, failing on the first veto.
    ///
    /// # Errors
    ///
    /// Propagates the vetoing constraint's error.
    pub fn check(&self, req: &BindRequest) -> Result<()> {
        for c in self.constraints.read().iter() {
            c.check(req)?;
        }
        Ok(())
    }

    /// Names of the installed constraints, in evaluation order.
    pub fn names(&self) -> Vec<String> {
        self.constraints
            .read()
            .iter()
            .map(|c| c.name().to_owned())
            .collect()
    }

    /// Number of installed constraints.
    pub fn len(&self) -> usize {
        self.constraints.read().len()
    }

    /// True if no constraints are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConstraintSet({:?})", self.names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(src_type: &str, dst_type: &str) -> BindRequest {
        BindRequest {
            src: ComponentId::from_raw(1),
            src_type: src_type.into(),
            receptacle: "out".into(),
            label: String::new(),
            dst: ComponentId::from_raw(2),
            dst_type: dst_type.into(),
            interface: InterfaceId::new("test.I"),
        }
    }

    #[test]
    fn empty_set_allows_everything() {
        let set = ConstraintSet::new();
        assert!(set.check(&req("A", "B")).is_ok());
        assert!(set.is_empty());
    }

    #[test]
    fn forbid_rule_vetoes_matching_pair_only() {
        let set = ConstraintSet::new();
        set.add(TopologyRule::Forbid("Queue".into(), "Queue".into()).into_constraint());
        assert!(set.check(&req("Queue", "Queue")).is_err());
        assert!(set.check(&req("Queue", "Sched")).is_ok());
        assert!(set.check(&req("Sched", "Queue")).is_ok());
    }

    #[test]
    fn only_to_rule_restricts_source_type() {
        let set = ConstraintSet::new();
        set.add(TopologyRule::OnlyTo("Shaper".into(), "Link".into()).into_constraint());
        assert!(set.check(&req("Shaper", "Link")).is_ok());
        assert!(set.check(&req("Shaper", "Queue")).is_err());
        assert!(set.check(&req("Other", "Queue")).is_ok());
    }

    #[test]
    fn freeze_interface_blocks_by_interface() {
        let set = ConstraintSet::new();
        set.add(TopologyRule::FreezeInterface(InterfaceId::new("test.I")).into_constraint());
        assert!(set.check(&req("A", "B")).is_err());
    }

    #[test]
    fn remove_constraint_restores_bind() {
        let set = ConstraintSet::new();
        set.add(TopologyRule::Forbid("A".into(), "B".into()).into_constraint());
        let name = set.names()[0].clone();
        assert!(set.check(&req("A", "B")).is_err());
        set.remove(&name).unwrap();
        assert!(set.check(&req("A", "B")).is_ok());
        assert!(set.remove(&name).is_err());
    }

    #[test]
    fn constraints_evaluate_in_insertion_order() {
        let set = ConstraintSet::new();
        set.add(FnConstraint::new("first", |_| {
            Err(Error::ConstraintVeto {
                constraint: "first".into(),
                reason: "x".into(),
            })
        }));
        set.add(FnConstraint::new("second", |_| {
            Err(Error::ConstraintVeto {
                constraint: "second".into(),
                reason: "y".into(),
            })
        }));
        match set.check(&req("A", "B")) {
            Err(Error::ConstraintVeto { constraint, .. }) => assert_eq!(constraint, "first"),
            other => panic!("expected veto, got {other:?}"),
        }
    }
}
