//! Interception meta-model.
//!
//! The paper's OpenCOM implements interception "at the vtable level" via a
//! universal delegator: a shim spliced in front of an interface pointer
//! that runs pre/post hooks around every operation. The Rust analogue is a
//! wrapper object implementing the same trait, substituted into the
//! binding. Because Rust cannot synthesise such wrappers at run time, each
//! interceptable interface registers a [`WrapFn`] (usually written with a
//! dozen lines of forwarding code) in the capsule's [`InterceptorRegistry`];
//! the meta-model then splices chains in and out of live bindings without
//! the communicating components noticing.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::InterfaceId;
use crate::interface::InterfaceRef;

/// Per-call context passed to hooks.
///
/// Hooks can veto the call (constraints use this) or attach annotations
/// for downstream hooks.
#[derive(Debug)]
pub struct CallContext {
    /// The interface being invoked.
    pub interface: InterfaceId,
    /// The method name being invoked.
    pub method: &'static str,
    /// Free-form annotations shared along the hook chain.
    pub annotations: Vec<(String, String)>,
}

impl CallContext {
    /// Creates a context for one invocation.
    pub fn new(interface: InterfaceId, method: &'static str) -> Self {
        Self {
            interface,
            method,
            annotations: Vec::new(),
        }
    }

    /// Attaches a string annotation.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.annotations.push((key.into(), value.into()));
    }

    /// Reads the most recent annotation under `key`.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A pre/post hook attached to a binding.
///
/// `pre` may veto the call by returning an error; `post` observes
/// completion. Hooks must be cheap — they run on the packet fast path.
pub trait Hook: Send + Sync {
    /// Hook name, used in error messages and for removal.
    fn name(&self) -> &str;

    /// Runs before the intercepted operation.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the call; the error propagates to the
    /// caller as a [`Error::ConstraintVeto`].
    fn pre(&self, ctx: &mut CallContext) -> Result<()> {
        let _ = ctx;
        Ok(())
    }

    /// Runs after the intercepted operation completes.
    fn post(&self, ctx: &mut CallContext) {
        let _ = ctx;
    }
}

/// A hook built from two closures; convenient for tests and simple
/// constraints.
pub struct FnHook<P, Q> {
    name: String,
    pre: P,
    post: Q,
}

impl<P, Q> std::fmt::Debug for FnHook<P, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnHook(`{}`)", self.name)
    }
}

impl FnHook<fn(&mut CallContext) -> Result<()>, fn(&mut CallContext)> {
    /// A named hook that does nothing (useful for counting overhead).
    pub fn noop(name: impl Into<String>) -> Arc<dyn Hook> {
        fn pre(_: &mut CallContext) -> Result<()> {
            Ok(())
        }
        fn post(_: &mut CallContext) {}
        Arc::new(FnHook {
            name: name.into(),
            pre: pre as fn(&mut CallContext) -> Result<()>,
            post: post as fn(&mut CallContext),
        })
    }
}

impl<P, Q> FnHook<P, Q>
where
    P: Fn(&mut CallContext) -> Result<()> + Send + Sync + 'static,
    Q: Fn(&mut CallContext) + Send + Sync + 'static,
{
    /// Creates a hook from a pre and a post closure.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(name: impl Into<String>, pre: P, post: Q) -> Arc<dyn Hook> {
        Arc::new(Self {
            name: name.into(),
            pre,
            post,
        })
    }
}

impl<P, Q> Hook for FnHook<P, Q>
where
    P: Fn(&mut CallContext) -> Result<()> + Send + Sync + 'static,
    Q: Fn(&mut CallContext) + Send + Sync + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn pre(&self, ctx: &mut CallContext) -> Result<()> {
        (self.pre)(ctx)
    }
    fn post(&self, ctx: &mut CallContext) {
        (self.post)(ctx)
    }
}

/// An ordered chain of hooks shared by one intercepted binding.
///
/// Wrappers call [`InterceptorChain::around`] for every operation.
pub struct InterceptorChain {
    interface: InterfaceId,
    hooks: RwLock<Vec<Arc<dyn Hook>>>,
}

impl InterceptorChain {
    /// Creates an empty chain for `interface`.
    pub fn new(interface: InterfaceId) -> Arc<Self> {
        Arc::new(Self {
            interface,
            hooks: RwLock::new(Vec::new()),
        })
    }

    /// Appends a hook to the chain.
    pub fn add(&self, hook: Arc<dyn Hook>) {
        self.hooks.write().push(hook);
    }

    /// Removes the first hook with the given name.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] if no hook has that name.
    pub fn remove(&self, name: &str) -> Result<()> {
        let mut hooks = self.hooks.write();
        match hooks.iter().position(|h| h.name() == name) {
            Some(idx) => {
                hooks.remove(idx);
                Ok(())
            }
            None => Err(Error::StaleReference {
                what: format!("hook `{name}`"),
            }),
        }
    }

    /// Number of hooks currently installed.
    pub fn len(&self) -> usize {
        self.hooks.read().len()
    }

    /// True if no hooks are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `op` bracketed by every hook's `pre` and `post`.
    ///
    /// # Errors
    ///
    /// Propagates the first `pre` veto without running `op`; `post` hooks
    /// of already-passed `pre` hooks still run in reverse order, mirroring
    /// unwind semantics of nested delegators.
    #[inline]
    pub fn around<R>(&self, method: &'static str, op: impl FnOnce() -> R) -> Result<R> {
        let hooks = self.hooks.read();
        let mut ctx = CallContext::new(self.interface, method);
        let mut passed = 0usize;
        let mut veto = None;
        for hook in hooks.iter() {
            if let Err(e) = hook.pre(&mut ctx) {
                veto = Some(e);
                break;
            }
            passed += 1;
        }
        let result = if veto.is_none() { Some(op()) } else { None };
        for hook in hooks.iter().take(passed).rev() {
            hook.post(&mut ctx);
        }
        match veto {
            Some(e) => Err(e),
            None => Ok(result.expect("op ran when no veto")),
        }
    }
}

impl fmt::Debug for InterceptorChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InterceptorChain({}, {} hooks)",
            self.interface,
            self.len()
        )
    }
}

/// Builds an intercepting wrapper for one interface type: given the target
/// reference and a chain, returns a new reference exporting the same
/// interface through the wrapper.
pub type WrapFn = Box<dyn Fn(InterfaceRef, Arc<InterceptorChain>) -> InterfaceRef + Send + Sync>;

/// Registry of per-interface wrapper factories.
///
/// Crates that define interceptable interfaces register a [`WrapFn`] here
/// (the router crate does this for `IPacketPush`/`IPacketPull` etc.);
/// the architecture meta-model consults the registry when the user asks to
/// intercept a binding.
#[derive(Default)]
pub struct InterceptorRegistry {
    wrappers: RwLock<HashMap<InterfaceId, WrapFn>>,
}

impl InterceptorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the wrapper factory for `id`.
    pub fn register(&self, id: InterfaceId, wrap: WrapFn) {
        self.wrappers.write().insert(id, wrap);
    }

    /// True if `id` supports interception.
    pub fn supports(&self, id: InterfaceId) -> bool {
        self.wrappers.read().contains_key(&id)
    }

    /// Wraps `target` with a fresh chain, returning the wrapped reference
    /// and the chain handle for hook management.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InterfaceNotFound`] if no wrapper is registered
    /// for the interface.
    pub fn wrap(&self, target: InterfaceRef) -> Result<(InterfaceRef, Arc<InterceptorChain>)> {
        let chain = InterceptorChain::new(target.id());
        let wrapped = self.wrap_with(target, Arc::clone(&chain))?;
        Ok((wrapped, chain))
    }

    /// Wraps `target` with an existing chain (used when hot-replacing a
    /// component while preserving its bindings' interceptors).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InterfaceNotFound`] if no wrapper is registered
    /// for the interface.
    pub fn wrap_with(
        &self,
        target: InterfaceRef,
        chain: Arc<InterceptorChain>,
    ) -> Result<InterfaceRef> {
        let wrappers = self.wrappers.read();
        let wrap = wrappers.get(&target.id()).ok_or(Error::InterfaceNotFound {
            component: target.provider(),
            interface: target.id(),
        })?;
        Ok(wrap(target, chain))
    }
}

impl fmt::Debug for InterceptorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InterceptorRegistry({} interfaces)",
            self.wrappers.read().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ComponentId;
    use std::sync::atomic::{AtomicU32, Ordering};

    const IADD: InterfaceId = InterfaceId::new("test.IAdd");

    trait IAdd: Send + Sync {
        fn add(&self, n: u32) -> u32;
    }

    struct Base(AtomicU32);
    impl IAdd for Base {
        fn add(&self, n: u32) -> u32 {
            self.0.fetch_add(n, Ordering::Relaxed) + n
        }
    }

    /// Hand-written wrapper of the kind interface-defining crates provide.
    struct AddWrapper {
        target: Arc<dyn IAdd>,
        chain: Arc<InterceptorChain>,
    }
    impl IAdd for AddWrapper {
        fn add(&self, n: u32) -> u32 {
            self.chain.around("add", || self.target.add(n)).unwrap_or(0)
        }
    }

    fn registry_with_add() -> InterceptorRegistry {
        let reg = InterceptorRegistry::new();
        reg.register(
            IADD,
            Box::new(|target, chain| {
                let inner: Arc<dyn IAdd> = target.downcast().expect("IAdd");
                let provider = target.provider();
                let wrapped: Arc<dyn IAdd> = Arc::new(AddWrapper {
                    target: inner,
                    chain,
                });
                InterfaceRef::new(IADD, provider, wrapped)
            }),
        );
        reg
    }

    fn base_ref() -> InterfaceRef {
        let obj: Arc<dyn IAdd> = Arc::new(Base(AtomicU32::new(0)));
        InterfaceRef::new(IADD, ComponentId::from_raw(1), obj)
    }

    #[test]
    fn chain_runs_pre_and_post_in_order() {
        let chain = InterceptorChain::new(IADD);
        let log = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        for name in ["a", "b"] {
            let l1 = Arc::clone(&log);
            let l2 = Arc::clone(&log);
            chain.add(FnHook::new(
                name,
                move |_| {
                    l1.lock().push(format!("pre-{name}"));
                    Ok(())
                },
                move |_| l2.lock().push(format!("post-{name}")),
            ));
        }
        let out = chain.around("m", || 42).unwrap();
        assert_eq!(out, 42);
        assert_eq!(
            log.lock().as_slice(),
            ["pre-a", "pre-b", "post-b", "post-a"]
        );
    }

    #[test]
    fn veto_aborts_call_and_unwinds_posts() {
        let chain = InterceptorChain::new(IADD);
        let ran = Arc::new(AtomicU32::new(0));
        let posts = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&posts);
        chain.add(FnHook::new(
            "ok",
            |_| Ok(()),
            move |_| {
                p.fetch_add(1, Ordering::Relaxed);
            },
        ));
        chain.add(FnHook::new(
            "veto",
            |_| {
                Err(Error::ConstraintVeto {
                    constraint: "veto".into(),
                    reason: "no".into(),
                })
            },
            |_| {},
        ));
        let r = Arc::clone(&ran);
        let res = chain.around("m", move || r.fetch_add(1, Ordering::Relaxed));
        assert!(res.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 0, "operation must not run");
        assert_eq!(posts.load(Ordering::Relaxed), 1, "passed pre hooks unwind");
    }

    #[test]
    fn wrap_and_call_through_registry() {
        let reg = registry_with_add();
        let (wrapped, chain) = reg.wrap(base_ref()).unwrap();
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        chain.add(FnHook::new(
            "count",
            move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            |_| {},
        ));
        let iface: Arc<dyn IAdd> = wrapped.downcast().unwrap();
        assert_eq!(iface.add(5), 5);
        assert_eq!(iface.add(5), 10);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn wrap_unregistered_interface_fails() {
        let reg = InterceptorRegistry::new();
        assert!(reg.wrap(base_ref()).is_err());
        assert!(!reg.supports(IADD));
    }

    #[test]
    fn remove_hook_by_name() {
        let chain = InterceptorChain::new(IADD);
        chain.add(FnHook::noop("h1"));
        chain.add(FnHook::noop("h2"));
        chain.remove("h1").unwrap();
        assert_eq!(chain.len(), 1);
        assert!(chain.remove("h1").is_err());
    }

    #[test]
    fn annotations_flow_between_hooks() {
        let chain = InterceptorChain::new(IADD);
        chain.add(FnHook::new(
            "writer",
            |ctx| {
                ctx.annotate("dscp", "46");
                Ok(())
            },
            |_| {},
        ));
        let seen = Arc::new(parking_lot::Mutex::new(String::new()));
        let s = Arc::clone(&seen);
        chain.add(FnHook::new(
            "reader",
            move |ctx| {
                *s.lock() = ctx.annotation("dscp").unwrap_or("").to_owned();
                Ok(())
            },
            |_| {},
        ));
        chain.around("m", || ()).unwrap();
        assert_eq!(seen.lock().as_str(), "46");
    }
}
