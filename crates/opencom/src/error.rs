//! Error types for the OpenCOM component model.

use std::fmt;

use crate::ident::{ComponentId, InterfaceId};

/// The error type returned by fallible OpenCOM operations.
///
/// Every variant carries enough context to identify the offending
/// component, interface, or receptacle without consulting external state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A `query_interface` call named an interface the component does not
    /// export, or the exporting component has been destroyed.
    InterfaceNotFound {
        /// The component that was queried.
        component: ComponentId,
        /// The interface that was requested.
        interface: InterfaceId,
    },
    /// A receptacle name did not match any receptacle on the component.
    ReceptacleNotFound {
        /// The component that was queried.
        component: ComponentId,
        /// The receptacle name that was requested.
        name: String,
    },
    /// An attempt was made to bind an interface of type `found` to a
    /// receptacle expecting type `expected`.
    TypeMismatch {
        /// The interface type the receptacle requires.
        expected: InterfaceId,
        /// The interface type that was offered.
        found: InterfaceId,
    },
    /// A single-cardinality receptacle is already bound, or a
    /// multi-receptacle reached its configured maximum.
    CardinalityExceeded {
        /// The receptacle that is full.
        receptacle: String,
        /// The maximum number of simultaneous bindings allowed.
        max: usize,
    },
    /// The named receptacle holds no binding to the given peer.
    NotBound {
        /// The receptacle that was expected to hold the binding.
        receptacle: String,
    },
    /// A bind-time constraint (interceptor on the `bind` primitive)
    /// vetoed the operation.
    ConstraintVeto {
        /// The name of the constraint that fired.
        constraint: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A component framework refused to admit a component because it
    /// violates the framework's rules.
    CfViolation {
        /// The framework that rejected the component.
        framework: String,
        /// Human-readable rule violation.
        rule: String,
    },
    /// The caller lacks the access-control rights for the operation.
    AccessDenied {
        /// The principal that attempted the operation.
        principal: String,
        /// The operation that was denied.
        operation: String,
    },
    /// A lifecycle transition was requested that is not legal from the
    /// component's current state.
    IllegalTransition {
        /// State the component was in.
        from: &'static str,
        /// State that was requested.
        to: &'static str,
    },
    /// No factory is registered under the given component type name
    /// (and, if specified, version).
    UnknownComponentType {
        /// The requested type name.
        type_name: String,
    },
    /// A component hosted in an isolated capsule crashed (panicked);
    /// the crash was contained at the capsule boundary.
    ComponentCrashed {
        /// The component that crashed.
        component: ComponentId,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A call into an isolated capsule failed at the transport level
    /// (channel closed, marshalling error, host shut down).
    IpcFailure {
        /// Description of the transport failure.
        detail: String,
    },
    /// A resource request exceeded the pool's remaining capacity.
    ResourceExhausted {
        /// The resource class (e.g. `"cpu"`, `"memory"`, `"bandwidth"`).
        class: String,
        /// Units requested.
        requested: u64,
        /// Units still available.
        available: u64,
    },
    /// The named task does not exist in the resources meta-model.
    UnknownTask {
        /// The task name.
        name: String,
    },
    /// The target of an architectural adaptation no longer exists.
    StaleReference {
        /// Description of the dangling entity.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InterfaceNotFound {
                component,
                interface,
            } => {
                write!(
                    f,
                    "component {component} does not export interface {interface}"
                )
            }
            Error::ReceptacleNotFound { component, name } => {
                write!(f, "component {component} has no receptacle named `{name}`")
            }
            Error::TypeMismatch { expected, found } => {
                write!(f, "receptacle expects {expected} but was offered {found}")
            }
            Error::CardinalityExceeded { receptacle, max } => {
                write!(
                    f,
                    "receptacle `{receptacle}` already holds {max} binding(s)"
                )
            }
            Error::NotBound { receptacle } => {
                write!(f, "receptacle `{receptacle}` holds no such binding")
            }
            Error::ConstraintVeto { constraint, reason } => {
                write!(f, "bind vetoed by constraint `{constraint}`: {reason}")
            }
            Error::CfViolation { framework, rule } => {
                write!(f, "component framework `{framework}` rule violated: {rule}")
            }
            Error::AccessDenied {
                principal,
                operation,
            } => {
                write!(f, "principal `{principal}` denied operation `{operation}`")
            }
            Error::IllegalTransition { from, to } => {
                write!(f, "illegal lifecycle transition {from} -> {to}")
            }
            Error::UnknownComponentType { type_name } => {
                write!(f, "no factory registered for component type `{type_name}`")
            }
            Error::ComponentCrashed { component, message } => {
                write!(f, "component {component} crashed: {message}")
            }
            Error::IpcFailure { detail } => write!(f, "ipc failure: {detail}"),
            Error::ResourceExhausted {
                class,
                requested,
                available,
            } => {
                write!(
                    f,
                    "resource `{class}` exhausted: requested {requested}, available {available}"
                )
            }
            Error::UnknownTask { name } => write!(f, "unknown task `{name}`"),
            Error::StaleReference { what } => write!(f, "stale reference: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{ComponentId, InterfaceId};

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::InterfaceNotFound {
            component: ComponentId::from_raw(7),
            interface: InterfaceId::new("netkit.IPacketPush"),
        };
        let s = e.to_string();
        assert!(s.contains("netkit.IPacketPush"));
        assert!(s.starts_with("component"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn constraint_veto_mentions_constraint_name() {
        let e = Error::ConstraintVeto {
            constraint: "no-cycles".into(),
            reason: "would create a forwarding loop".into(),
        };
        assert!(e.to_string().contains("no-cycles"));
    }
}
