//! Receptacles — explicit "required" interfaces.
//!
//! A receptacle is the OpenCOM dependency primitive: a named, typed slot on
//! a component into which the `bind` primitive plugs another component's
//! interface. Making dependencies explicit is what lets the architecture
//! meta-model see — and safely rewire — the component graph at run time.
//!
//! [`Receptacle<I>`] is *typed*: the `InterfaceRef` is downcast once at
//! bind time, so the packet fast path pays only a `parking_lot` read lock
//! and one dynamic dispatch per traversal. The read lock is also the
//! quiescence mechanism: reconfiguration takes the corresponding write
//! lock and therefore waits for in-flight calls to drain (paper §4's
//! "safe" reconfiguration).

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::{ComponentId, InterfaceId};
use crate::interface::InterfaceRef;

/// How many simultaneous bindings a receptacle accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cardinality {
    /// Exactly zero or one binding (a classic `required` interface).
    Single,
    /// Up to `max` bindings (`usize::MAX` for unlimited). Used by fan-out
    /// components such as classifiers and schedulers.
    Multi {
        /// Maximum number of simultaneous bindings.
        max: usize,
    },
}

impl Cardinality {
    fn limit(&self) -> usize {
        match self {
            Cardinality::Single => 1,
            Cardinality::Multi { max } => *max,
        }
    }
}

/// One bound peer inside a receptacle.
struct Slot<I: ?Sized> {
    peer: ComponentId,
    /// The label under which this binding was attached (classifier outputs
    /// are selected by label; single receptacles use `""`).
    label: String,
    iface: Arc<I>,
    /// The original type-erased reference, kept for meta-model inspection.
    iref: InterfaceRef,
}

struct Inner<I: ?Sized> {
    name: String,
    iface_id: InterfaceId,
    cardinality: Cardinality,
    slots: RwLock<Vec<Slot<I>>>,
}

/// A typed, named dependency slot.
///
/// Cloning a `Receptacle` yields another handle onto the same slot (the
/// component keeps one inside itself; the registrar keeps another for the
/// meta-model).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use opencom::ident::{ComponentId, InterfaceId};
/// use opencom::interface::InterfaceRef;
/// use opencom::receptacle::{Cardinality, Receptacle};
///
/// trait Sink: Send + Sync { fn accept(&self, v: u32); }
/// struct Null;
/// impl Sink for Null { fn accept(&self, _v: u32) {} }
///
/// const ISINK: InterfaceId = InterfaceId::new("demo.ISink");
/// let rec: Receptacle<dyn Sink> = Receptacle::new("out", ISINK, Cardinality::Single);
/// let sink: Arc<dyn Sink> = Arc::new(Null);
/// let iref = InterfaceRef::new(ISINK, ComponentId::from_raw(1), sink);
/// rec.bind(iref)?;
/// rec.with_bound(|s| s.accept(7)).expect("bound");
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct Receptacle<I: ?Sized> {
    inner: Arc<Inner<I>>,
}

impl<I: ?Sized> Clone for Receptacle<I> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<I: ?Sized + 'static> Receptacle<I> {
    /// Creates an empty receptacle.
    pub fn new(name: impl Into<String>, iface_id: InterfaceId, cardinality: Cardinality) -> Self {
        Self {
            inner: Arc::new(Inner {
                name: name.into(),
                iface_id,
                cardinality,
                slots: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Convenience constructor for the common single-cardinality case.
    pub fn single(name: impl Into<String>, iface_id: InterfaceId) -> Self {
        Self::new(name, iface_id, Cardinality::Single)
    }

    /// Convenience constructor for an unbounded multi-receptacle.
    pub fn multi(name: impl Into<String>, iface_id: InterfaceId) -> Self {
        Self::new(name, iface_id, Cardinality::Multi { max: usize::MAX })
    }

    /// The receptacle's name (unique within its component).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The interface type this receptacle requires.
    pub fn interface_id(&self) -> InterfaceId {
        self.inner.iface_id
    }

    /// The receptacle's cardinality rule.
    pub fn cardinality(&self) -> Cardinality {
        self.inner.cardinality
    }

    /// Binds an interface into this receptacle under the empty label.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::TypeMismatch`] if the reference exports a
    /// different interface id, with [`Error::CardinalityExceeded`] if the
    /// receptacle is full, and with [`Error::TypeMismatch`] if the
    /// underlying trait object is not an `Arc<I>`.
    pub fn bind(&self, iref: InterfaceRef) -> Result<()> {
        self.bind_labelled("", iref)
    }

    /// Binds an interface under a label (used by classifiers and
    /// schedulers that select outputs by name).
    pub fn bind_labelled(&self, label: impl Into<String>, iref: InterfaceRef) -> Result<()> {
        if iref.id() != self.inner.iface_id {
            return Err(Error::TypeMismatch {
                expected: self.inner.iface_id,
                found: iref.id(),
            });
        }
        let iface: Arc<I> = iref.downcast::<I>().ok_or(Error::TypeMismatch {
            expected: self.inner.iface_id,
            found: iref.id(),
        })?;
        let mut slots = self.inner.slots.write();
        let limit = self.inner.cardinality.limit();
        if slots.len() >= limit {
            return Err(Error::CardinalityExceeded {
                receptacle: self.inner.name.clone(),
                max: limit,
            });
        }
        slots.push(Slot {
            peer: iref.provider(),
            label: label.into(),
            iface,
            iref,
        });
        Ok(())
    }

    /// Removes the first binding to `peer`.
    ///
    /// Taking the write lock here waits for in-flight [`Self::with_bound`]
    /// calls to complete — this is the per-edge quiescence point.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::NotBound`] if no binding to `peer` exists.
    pub fn unbind(&self, peer: ComponentId) -> Result<()> {
        let mut slots = self.inner.slots.write();
        match slots.iter().position(|s| s.peer == peer) {
            Some(idx) => {
                slots.remove(idx);
                Ok(())
            }
            None => Err(Error::NotBound {
                receptacle: self.inner.name.clone(),
            }),
        }
    }

    /// Removes the binding to `peer` attached under exactly `label`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::NotBound`] if no such binding exists.
    pub fn unbind_labelled(&self, peer: ComponentId, label: &str) -> Result<()> {
        let mut slots = self.inner.slots.write();
        match slots
            .iter()
            .position(|s| s.peer == peer && s.label == label)
        {
            Some(idx) => {
                slots.remove(idx);
                Ok(())
            }
            None => Err(Error::NotBound {
                receptacle: self.inner.name.clone(),
            }),
        }
    }

    /// Atomically replaces the binding to `old_peer` with `iref`,
    /// preserving the slot's label and position (so fan-out order is
    /// stable across hot-swaps).
    pub fn rebind(&self, old_peer: ComponentId, iref: InterfaceRef) -> Result<()> {
        self.rebind_inner(old_peer, None, iref)
    }

    /// Like [`Self::rebind`], but selects the slot by peer *and* label.
    pub fn rebind_labelled(
        &self,
        old_peer: ComponentId,
        label: &str,
        iref: InterfaceRef,
    ) -> Result<()> {
        self.rebind_inner(old_peer, Some(label), iref)
    }

    fn rebind_inner(
        &self,
        old_peer: ComponentId,
        label: Option<&str>,
        iref: InterfaceRef,
    ) -> Result<()> {
        if iref.id() != self.inner.iface_id {
            return Err(Error::TypeMismatch {
                expected: self.inner.iface_id,
                found: iref.id(),
            });
        }
        let iface: Arc<I> = iref.downcast::<I>().ok_or(Error::TypeMismatch {
            expected: self.inner.iface_id,
            found: iref.id(),
        })?;
        let mut slots = self.inner.slots.write();
        let slot = slots
            .iter_mut()
            .find(|s| s.peer == old_peer && label.is_none_or(|l| s.label == l))
            .ok_or(Error::NotBound {
                receptacle: self.inner.name.clone(),
            })?;
        slot.peer = iref.provider();
        slot.iface = iface;
        slot.iref = iref;
        Ok(())
    }

    /// Runs `f` against the first bound interface while holding the read
    /// lock (no `Arc` clone on the fast path).
    ///
    /// Returns `None` if the receptacle is unbound.
    #[inline]
    pub fn with_bound<R>(&self, f: impl FnOnce(&I) -> R) -> Option<R> {
        let slots = self.inner.slots.read();
        slots.first().map(|s| f(&s.iface))
    }

    /// Runs `f` against the interface bound under `label`.
    #[inline]
    pub fn with_labelled<R>(&self, label: &str, f: impl FnOnce(&I) -> R) -> Option<R> {
        let slots = self.inner.slots.read();
        slots.iter().find(|s| s.label == label).map(|s| f(&s.iface))
    }

    /// Runs `f` for every bound interface in bind order.
    pub fn for_each(&self, mut f: impl FnMut(&str, &I)) {
        let slots = self.inner.slots.read();
        for s in slots.iter() {
            f(&s.label, &s.iface);
        }
    }

    /// Clones out the first bound interface. This is the *fused-binding*
    /// escape hatch (paper §5's vtable bypass): callers that freeze
    /// reconfiguration may cache the returned `Arc` and call through it
    /// without touching the receptacle lock.
    pub fn snapshot(&self) -> Option<Arc<I>> {
        self.inner
            .slots
            .read()
            .first()
            .map(|s| Arc::clone(&s.iface))
    }

    /// Clones out the interface bound under `label`.
    pub fn snapshot_labelled(&self, label: &str) -> Option<Arc<I>> {
        self.inner
            .slots
            .read()
            .iter()
            .find(|s| s.label == label)
            .map(|s| Arc::clone(&s.iface))
    }

    /// Number of current bindings.
    pub fn bound_count(&self) -> usize {
        self.inner.slots.read().len()
    }

    /// True if at least one binding is present.
    pub fn is_bound(&self) -> bool {
        self.bound_count() > 0
    }

    /// Returns `(label, peer, interface ref)` for every binding — the
    /// meta-model's view.
    pub fn bindings(&self) -> Vec<(String, ComponentId, InterfaceRef)> {
        self.inner
            .slots
            .read()
            .iter()
            .map(|s| (s.label.clone(), s.peer, s.iref.clone()))
            .collect()
    }
}

impl<I: ?Sized> fmt::Debug for Receptacle<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Receptacle(`{}`: {}, {} bound)",
            self.inner.name,
            self.inner.iface_id,
            self.inner.slots.read().len()
        )
    }
}

/// Type-erased description of a receptacle, as seen by the meta-model.
#[derive(Clone, Debug)]
pub struct ReceptacleInfo {
    /// Receptacle name, unique within the component.
    pub name: String,
    /// Required interface type.
    pub interface: InterfaceId,
    /// Cardinality rule.
    pub cardinality: Cardinality,
    /// Current bindings as `(label, peer)` pairs.
    pub bound: Vec<(String, ComponentId)>,
}

/// Type-erased handle stored in a component's receptacle table; forwards
/// bind/unbind to the typed receptacle via captured closures.
#[allow(clippy::type_complexity)]
pub(crate) struct ReceptacleEntry {
    pub(crate) name: String,
    pub(crate) interface: InterfaceId,
    pub(crate) cardinality: Cardinality,
    bind: Box<dyn Fn(&str, InterfaceRef) -> Result<()> + Send + Sync>,
    unbind: Box<dyn Fn(ComponentId, &str) -> Result<()> + Send + Sync>,
    rebind: Box<dyn Fn(ComponentId, &str, InterfaceRef) -> Result<()> + Send + Sync>,
    list: Box<dyn Fn() -> Vec<(String, ComponentId, InterfaceRef)> + Send + Sync>,
}

impl ReceptacleEntry {
    pub(crate) fn from_typed<I: ?Sized + Send + Sync + 'static>(rec: &Receptacle<I>) -> Self {
        let (b, u, r, l) = (rec.clone(), rec.clone(), rec.clone(), rec.clone());
        Self {
            name: rec.name().to_owned(),
            interface: rec.interface_id(),
            cardinality: rec.cardinality(),
            bind: Box::new(move |label, iref| b.bind_labelled(label, iref)),
            unbind: Box::new(move |peer, label| u.unbind_labelled(peer, label)),
            rebind: Box::new(move |peer, label, iref| r.rebind_labelled(peer, label, iref)),
            list: Box::new(move || l.bindings()),
        }
    }

    pub(crate) fn bind(&self, label: &str, iref: InterfaceRef) -> Result<()> {
        (self.bind)(label, iref)
    }

    pub(crate) fn unbind(&self, peer: ComponentId, label: &str) -> Result<()> {
        (self.unbind)(peer, label)
    }

    pub(crate) fn rebind(&self, peer: ComponentId, label: &str, iref: InterfaceRef) -> Result<()> {
        (self.rebind)(peer, label, iref)
    }

    pub(crate) fn info(&self) -> ReceptacleInfo {
        ReceptacleInfo {
            name: self.name.clone(),
            interface: self.interface,
            cardinality: self.cardinality,
            bound: (self.list)()
                .into_iter()
                .map(|(label, peer, _)| (label, peer))
                .collect(),
        }
    }

    pub(crate) fn bindings(&self) -> Vec<(String, ComponentId, InterfaceRef)> {
        (self.list)()
    }
}

impl fmt::Debug for ReceptacleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReceptacleEntry(`{}`: {})", self.name, self.interface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    trait Sink: Send + Sync {
        fn accept(&self, v: u32);
    }
    struct Rec(AtomicU32);
    impl Sink for Rec {
        fn accept(&self, v: u32) {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    const ISINK: InterfaceId = InterfaceId::new("test.ISink");

    fn sink_ref(peer: u64) -> (Arc<Rec>, InterfaceRef) {
        let obj = Arc::new(Rec(AtomicU32::new(0)));
        let dyn_obj: Arc<dyn Sink> = obj.clone();
        (
            obj,
            InterfaceRef::new(ISINK, ComponentId::from_raw(peer), dyn_obj),
        )
    }

    #[test]
    fn single_receptacle_binds_once() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let (_, a) = sink_ref(1);
        let (_, b) = sink_ref(2);
        rec.bind(a).unwrap();
        let err = rec.bind(b).unwrap_err();
        assert!(matches!(err, Error::CardinalityExceeded { .. }));
    }

    #[test]
    fn multi_receptacle_respects_max() {
        let rec: Receptacle<dyn Sink> =
            Receptacle::new("outs", ISINK, Cardinality::Multi { max: 2 });
        let (_, a) = sink_ref(1);
        let (_, b) = sink_ref(2);
        let (_, c) = sink_ref(3);
        rec.bind_labelled("a", a).unwrap();
        rec.bind_labelled("b", b).unwrap();
        assert!(rec.bind_labelled("c", c).is_err());
        assert_eq!(rec.bound_count(), 2);
    }

    #[test]
    fn wrong_interface_id_is_rejected() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let (_, mut iref) = sink_ref(1);
        iref = InterfaceRef::new(
            InterfaceId::new("test.Other"),
            iref.provider(),
            iref.downcast::<dyn Sink>().unwrap(),
        );
        assert!(matches!(rec.bind(iref), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn calls_reach_bound_component() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let (obj, iref) = sink_ref(1);
        rec.bind(iref).unwrap();
        rec.with_bound(|s| s.accept(41)).unwrap();
        rec.with_bound(|s| s.accept(1)).unwrap();
        assert_eq!(obj.0.load(Ordering::Relaxed), 42);
    }

    #[test]
    fn unbind_then_call_returns_none() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let (_, iref) = sink_ref(5);
        rec.bind(iref).unwrap();
        rec.unbind(ComponentId::from_raw(5)).unwrap();
        assert!(rec.with_bound(|s| s.accept(1)).is_none());
        assert!(matches!(
            rec.unbind(ComponentId::from_raw(5)),
            Err(Error::NotBound { .. })
        ));
    }

    #[test]
    fn labelled_dispatch_selects_correct_peer() {
        let rec: Receptacle<dyn Sink> = Receptacle::multi("outs", ISINK);
        let (oa, a) = sink_ref(1);
        let (ob, b) = sink_ref(2);
        rec.bind_labelled("v4", a).unwrap();
        rec.bind_labelled("v6", b).unwrap();
        rec.with_labelled("v6", |s| s.accept(9)).unwrap();
        assert_eq!(oa.0.load(Ordering::Relaxed), 0);
        assert_eq!(ob.0.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn rebind_preserves_label_and_position() {
        let rec: Receptacle<dyn Sink> = Receptacle::multi("outs", ISINK);
        let (_, a) = sink_ref(1);
        let (nb, b) = sink_ref(2);
        rec.bind_labelled("first", a).unwrap();
        rec.rebind(ComponentId::from_raw(1), b).unwrap();
        let bindings = rec.bindings();
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].0, "first");
        assert_eq!(bindings[0].1, ComponentId::from_raw(2));
        rec.with_labelled("first", |s| s.accept(3)).unwrap();
        assert_eq!(nb.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn snapshot_survives_unbind() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let (obj, iref) = sink_ref(7);
        rec.bind(iref).unwrap();
        let fused = rec.snapshot().unwrap();
        rec.unbind(ComponentId::from_raw(7)).unwrap();
        // Fused path keeps working; reconfigurable path sees the unbind.
        fused.accept(11);
        assert!(rec.with_bound(|s| s.accept(1)).is_none());
        assert_eq!(obj.0.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn erased_entry_roundtrip() {
        let rec: Receptacle<dyn Sink> = Receptacle::single("out", ISINK);
        let entry = ReceptacleEntry::from_typed(&rec);
        let (obj, iref) = sink_ref(3);
        entry.bind("", iref).unwrap();
        assert_eq!(entry.info().bound.len(), 1);
        rec.with_bound(|s| s.accept(2)).unwrap();
        assert_eq!(obj.0.load(Ordering::Relaxed), 2);
        entry.unbind(ComponentId::from_raw(3), "").unwrap();
        assert_eq!(entry.info().bound.len(), 0);
    }
}
