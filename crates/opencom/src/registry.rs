//! Component registry — deployment units and managed evolution.
//!
//! The paper's OpenCOM loads components from platform DLLs. Dynamically
//! loading Rust trait objects across compilation units is unsound, so the
//! registry substitutes a table of named, versioned *factories*:
//! "deploying" a component type means registering its factory; "loading"
//! means instantiating by name. Side-by-side version registration gives
//! the managed-evolution story (old and new versions coexist; capsules
//! hot-replace instances across compatible versions).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::component::Component;
use crate::error::{Error, Result};
use crate::ident::Version;

/// A factory that constructs one component instance.
pub type Factory = Box<dyn Fn() -> Arc<dyn Component> + Send + Sync>;

struct FactoryEntry {
    version: Version,
    factory: Factory,
}

/// A named, versioned catalogue of component factories.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
/// use opencom::ident::Version;
/// use opencom::registry::ComponentRegistry;
///
/// struct Null { core: ComponentCore }
/// impl Component for Null {
///     fn core(&self) -> &ComponentCore { &self.core }
///     fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
/// }
///
/// let registry = ComponentRegistry::new();
/// registry.register("demo.Null", Version::new(1, 0, 0), Box::new(|| {
///     Arc::new(Null { core: ComponentCore::new(
///         ComponentDescriptor::new("demo.Null", Version::new(1, 0, 0))) })
/// }));
/// let comp = registry.instantiate_latest("demo.Null")?;
/// assert_eq!(comp.core().descriptor().type_name, "demo.Null");
/// # Ok::<(), opencom::error::Error>(())
/// ```
#[derive(Default)]
pub struct ComponentRegistry {
    entries: RwLock<HashMap<String, Vec<FactoryEntry>>>,
}

impl ComponentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for `type_name` at `version`. Re-registering an
    /// existing version replaces its factory (redeployment).
    pub fn register(&self, type_name: impl Into<String>, version: Version, factory: Factory) {
        let mut entries = self.entries.write();
        let versions = entries.entry(type_name.into()).or_default();
        match versions.iter_mut().find(|e| e.version == version) {
            Some(existing) => existing.factory = factory,
            None => {
                versions.push(FactoryEntry { version, factory });
                versions.sort_by_key(|e| e.version);
            }
        }
    }

    /// Removes a deployed version.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] if the pair is unknown.
    pub fn unregister(&self, type_name: &str, version: Version) -> Result<()> {
        let mut entries = self.entries.write();
        let versions = entries
            .get_mut(type_name)
            .ok_or_else(|| Error::UnknownComponentType {
                type_name: type_name.to_owned(),
            })?;
        let before = versions.len();
        versions.retain(|e| e.version != version);
        if versions.len() == before {
            return Err(Error::UnknownComponentType {
                type_name: format!("{type_name}@{version}"),
            });
        }
        if versions.is_empty() {
            entries.remove(type_name);
        }
        Ok(())
    }

    /// Instantiates a specific version.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] if the pair is unknown.
    pub fn instantiate(&self, type_name: &str, version: Version) -> Result<Arc<dyn Component>> {
        let entries = self.entries.read();
        let versions = entries
            .get(type_name)
            .ok_or_else(|| Error::UnknownComponentType {
                type_name: type_name.to_owned(),
            })?;
        let entry = versions
            .iter()
            .find(|e| e.version == version)
            .ok_or_else(|| Error::UnknownComponentType {
                type_name: format!("{type_name}@{version}"),
            })?;
        Ok((entry.factory)())
    }

    /// Instantiates the newest registered version.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] if the type is unknown.
    pub fn instantiate_latest(&self, type_name: &str) -> Result<Arc<dyn Component>> {
        let entries = self.entries.read();
        let versions = entries
            .get(type_name)
            .ok_or_else(|| Error::UnknownComponentType {
                type_name: type_name.to_owned(),
            })?;
        let entry = versions.last().expect("non-empty by construction");
        Ok((entry.factory)())
    }

    /// Versions registered for `type_name`, oldest first.
    pub fn versions(&self, type_name: &str) -> Vec<Version> {
        self.entries
            .read()
            .get(type_name)
            .map(|v| v.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// All registered type names, sorted.
    pub fn type_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// True if any version of `type_name` is deployed.
    pub fn contains(&self, type_name: &str) -> bool {
        self.entries.read().contains_key(type_name)
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ComponentRegistry({} types)", self.entries.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{ComponentCore, ComponentDescriptor, Registrar};

    struct Null {
        core: ComponentCore,
    }
    impl Component for Null {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
    }

    fn factory(version: Version) -> Factory {
        Box::new(move || {
            Arc::new(Null {
                core: ComponentCore::new(ComponentDescriptor::new("t.Null", version)),
            })
        })
    }

    #[test]
    fn instantiate_unknown_type_fails() {
        let reg = ComponentRegistry::new();
        assert!(matches!(
            reg.instantiate_latest("t.Missing"),
            Err(Error::UnknownComponentType { .. })
        ));
    }

    #[test]
    fn latest_prefers_highest_version() {
        let reg = ComponentRegistry::new();
        reg.register(
            "t.Null",
            Version::new(1, 0, 0),
            factory(Version::new(1, 0, 0)),
        );
        reg.register(
            "t.Null",
            Version::new(1, 2, 0),
            factory(Version::new(1, 2, 0)),
        );
        reg.register(
            "t.Null",
            Version::new(1, 1, 0),
            factory(Version::new(1, 1, 0)),
        );
        let c = reg.instantiate_latest("t.Null").unwrap();
        assert_eq!(c.core().descriptor().version, Version::new(1, 2, 0));
        assert_eq!(
            reg.versions("t.Null"),
            vec![
                Version::new(1, 0, 0),
                Version::new(1, 1, 0),
                Version::new(1, 2, 0)
            ]
        );
    }

    #[test]
    fn side_by_side_versions_instantiable() {
        let reg = ComponentRegistry::new();
        reg.register(
            "t.Null",
            Version::new(1, 0, 0),
            factory(Version::new(1, 0, 0)),
        );
        reg.register(
            "t.Null",
            Version::new(2, 0, 0),
            factory(Version::new(2, 0, 0)),
        );
        let old = reg.instantiate("t.Null", Version::new(1, 0, 0)).unwrap();
        let new = reg.instantiate("t.Null", Version::new(2, 0, 0)).unwrap();
        assert_eq!(old.core().descriptor().version.major, 1);
        assert_eq!(new.core().descriptor().version.major, 2);
    }

    #[test]
    fn unregister_removes_only_named_version() {
        let reg = ComponentRegistry::new();
        reg.register(
            "t.Null",
            Version::new(1, 0, 0),
            factory(Version::new(1, 0, 0)),
        );
        reg.register(
            "t.Null",
            Version::new(2, 0, 0),
            factory(Version::new(2, 0, 0)),
        );
        reg.unregister("t.Null", Version::new(1, 0, 0)).unwrap();
        assert!(reg.instantiate("t.Null", Version::new(1, 0, 0)).is_err());
        assert!(reg.instantiate("t.Null", Version::new(2, 0, 0)).is_ok());
        reg.unregister("t.Null", Version::new(2, 0, 0)).unwrap();
        assert!(!reg.contains("t.Null"));
        assert!(reg.unregister("t.Null", Version::new(2, 0, 0)).is_err());
    }

    #[test]
    fn redeployment_replaces_factory() {
        let reg = ComponentRegistry::new();
        reg.register(
            "t.Null",
            Version::new(1, 0, 0),
            factory(Version::new(1, 0, 0)),
        );
        // Redeploy same version with a factory that reports as untrusted.
        reg.register(
            "t.Null",
            Version::new(1, 0, 0),
            Box::new(|| {
                Arc::new(Null {
                    core: ComponentCore::new(
                        ComponentDescriptor::new("t.Null", Version::new(1, 0, 0)).untrusted(),
                    ),
                })
            }),
        );
        let c = reg.instantiate_latest("t.Null").unwrap();
        assert!(!c.core().descriptor().trusted);
        assert_eq!(reg.versions("t.Null").len(), 1);
    }
}
