//! The OpenCOM runtime — shared services behind every capsule.
//!
//! A [`Runtime`] bundles the process-wide facilities: the component
//! [`registry`](crate::registry::ComponentRegistry) (deployment units),
//! the [`InterfaceRepository`]
//! (introspection), the
//! [`InterceptorRegistry`]
//! (per-interface wrapper factories), and the [`IsolationRegistry`]
//! (stub/skeleton factories for out-of-capsule hosting).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::ident::{ComponentId, InterfaceId};
use crate::interception::InterceptorRegistry;
use crate::interface::InterfaceRef;
use crate::ipc::{IpcClient, IpcDispatch};
use crate::meta::interface::InterfaceRepository;
use crate::registry::ComponentRegistry;

/// Builds the skeleton (host-side dispatcher) for an isolatable type.
pub type SkeletonFactory = Box<dyn Fn() -> Arc<dyn IpcDispatch> + Send + Sync>;

/// Builds a client-side proxy exporting `InterfaceId` over an IPC channel.
pub type ProxyFactory = Box<dyn Fn(Arc<IpcClient>, ComponentId) -> InterfaceRef + Send + Sync>;

/// Registry of stub/skeleton factories used when components are
/// instantiated in isolated capsules (paper §5's separate-address-space
/// deployment). Interface-defining crates register proxies; component
/// crates register skeletons.
#[derive(Default)]
pub struct IsolationRegistry {
    skeletons: RwLock<HashMap<String, SkeletonFactory>>,
    proxies: RwLock<HashMap<InterfaceId, ProxyFactory>>,
}

impl IsolationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the skeleton factory for a component type.
    pub fn register_skeleton(&self, type_name: impl Into<String>, factory: SkeletonFactory) {
        self.skeletons.write().insert(type_name.into(), factory);
    }

    /// Registers the proxy factory for an interface type.
    pub fn register_proxy(&self, id: InterfaceId, factory: ProxyFactory) {
        self.proxies.write().insert(id, factory);
    }

    /// Builds a skeleton instance for `type_name`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] if no skeleton factory
    /// is registered.
    pub fn make_skeleton(&self, type_name: &str) -> Result<Arc<dyn IpcDispatch>> {
        let skeletons = self.skeletons.read();
        let factory = skeletons
            .get(type_name)
            .ok_or_else(|| Error::UnknownComponentType {
                type_name: format!("{type_name} (no skeleton)"),
            })?;
        Ok(factory())
    }

    /// Clones the skeleton factory for supervision (respawn-after-crash).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] if no skeleton factory
    /// is registered.
    pub fn skeleton_maker(
        self: &Arc<Self>,
        type_name: &str,
    ) -> Result<impl Fn() -> Arc<dyn IpcDispatch> + Send + Sync + 'static> {
        if !self.skeletons.read().contains_key(type_name) {
            return Err(Error::UnknownComponentType {
                type_name: format!("{type_name} (no skeleton)"),
            });
        }
        let me = Arc::clone(self);
        let name = type_name.to_owned();
        Ok(move || me.make_skeleton(&name).expect("checked at registration"))
    }

    /// Builds a proxy for `id` talking through `client`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InterfaceNotFound`] if no proxy factory is
    /// registered for the interface.
    pub fn make_proxy(
        &self,
        id: InterfaceId,
        client: Arc<IpcClient>,
        provider: ComponentId,
    ) -> Result<InterfaceRef> {
        let proxies = self.proxies.read();
        let factory = proxies.get(&id).ok_or(Error::InterfaceNotFound {
            component: provider,
            interface: id,
        })?;
        Ok(factory(client, provider))
    }

    /// True if a proxy factory exists for `id`.
    pub fn supports_interface(&self, id: InterfaceId) -> bool {
        self.proxies.read().contains_key(&id)
    }
}

impl fmt::Debug for IsolationRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IsolationRegistry({} skeletons, {} proxies)",
            self.skeletons.read().len(),
            self.proxies.read().len()
        )
    }
}

/// The shared OpenCOM runtime.
///
/// # Examples
///
/// ```
/// use opencom::runtime::Runtime;
/// use opencom::capsule::Capsule;
///
/// let rt = Runtime::new();
/// let capsule = Capsule::new("router-node", &rt);
/// assert_eq!(capsule.name(), "router-node");
/// ```
pub struct Runtime {
    registry: Arc<ComponentRegistry>,
    interfaces: Arc<InterfaceRepository>,
    interceptors: Arc<InterceptorRegistry>,
    isolation: Arc<IsolationRegistry>,
}

impl Runtime {
    /// Creates a fresh runtime with empty registries.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Runtime> {
        Arc::new(Runtime {
            registry: Arc::new(ComponentRegistry::new()),
            interfaces: Arc::new(InterfaceRepository::new()),
            interceptors: Arc::new(InterceptorRegistry::new()),
            isolation: Arc::new(IsolationRegistry::new()),
        })
    }

    /// The component factory registry.
    pub fn registry(&self) -> &Arc<ComponentRegistry> {
        &self.registry
    }

    /// The interface descriptor repository.
    pub fn interfaces(&self) -> &Arc<InterfaceRepository> {
        &self.interfaces
    }

    /// The interceptor wrapper registry.
    pub fn interceptors(&self) -> &Arc<InterceptorRegistry> {
        &self.interceptors
    }

    /// The isolation stub/skeleton registry.
    pub fn isolation(&self) -> &Arc<IsolationRegistry> {
        &self.isolation
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Runtime(registry: {:?}, interfaces: {:?})",
            self.registry, self.interfaces
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl IpcDispatch for Nop {
        fn dispatch(
            &self,
            _interface: &str,
            _method: &str,
            _payload: &[u8],
        ) -> std::result::Result<Vec<u8>, String> {
            Ok(vec![])
        }
    }

    #[test]
    fn skeleton_registration_roundtrip() {
        let iso = IsolationRegistry::new();
        iso.register_skeleton("t.Nop", Box::new(|| Arc::new(Nop)));
        assert!(iso.make_skeleton("t.Nop").is_ok());
        assert!(iso.make_skeleton("t.Missing").is_err());
    }

    #[test]
    fn skeleton_maker_checks_eagerly() {
        let iso = Arc::new(IsolationRegistry::new());
        assert!(iso.skeleton_maker("t.Missing").is_err());
        iso.register_skeleton("t.Nop", Box::new(|| Arc::new(Nop)));
        let make = iso.skeleton_maker("t.Nop").unwrap();
        let _skel = make();
    }

    #[test]
    fn runtime_wires_shared_registries() {
        let rt = Runtime::new();
        assert_eq!(rt.registry().type_names().len(), 0);
        assert!(rt.interfaces().is_empty());
        assert!(!rt.isolation().supports_interface(InterfaceId::new("t.I")));
    }
}
