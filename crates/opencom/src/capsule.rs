//! Capsules — the address-space analogue hosting component graphs.
//!
//! A [`Capsule`] hosts components, executes the `bind` primitive (with
//! bind-time constraints), maintains the architecture meta-model, drives
//! component life-cycles, hot-replaces components, splices interceptors
//! into live bindings, and — for untrusted components — delegates hosting
//! to an isolated "address space" reached through marshalling proxies
//! (see [`crate::ipc`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::binding::{BindRequest, ConstraintSet};
use crate::component::{
    publish_component, Component, ComponentCore, ComponentDescriptor, LifecycleState, Registrar,
};
use crate::error::{Error, Result};
use crate::ident::{BindingId, CapsuleId, ComponentId, InterfaceId, Version};
use crate::interception::InterceptorChain;
use crate::interface::InterfaceRef;
use crate::ipc::{IpcClient, IsolatedHost};
use crate::meta::architecture::{ArchitectureMetaModel, BindingRecord};
use crate::meta::resources::ResourceManager;
use crate::runtime::{IsolationRegistry, Runtime};

/// Which quiescence strategy a structural adaptation uses (ablated in
/// experiment E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Quiescence {
    /// Wait only for in-flight calls on the edges being rewired
    /// (receptacle write locks). Cheapest; the default.
    #[default]
    PerEdge,
    /// Additionally acquire the capsule-wide graph lock, excluding all
    /// cooperative data-path drivers for the duration of the change.
    FullGraph,
}

/// Supervision handle for a component hosted out-of-capsule.
pub struct IsolationControl {
    host: Arc<IsolatedHost>,
}

impl IsolationControl {
    /// True if the hosted component has crashed and awaits respawn.
    pub fn is_dead(&self) -> bool {
        self.host.is_dead()
    }

    /// Respawns the hosted component after a crash; existing bindings
    /// resume working transparently.
    pub fn respawn(&self) {
        self.host.respawn();
    }

    /// Number of respawns performed so far.
    pub fn restart_count(&self) -> u64 {
        self.host.restart_count()
    }

    /// The raw IPC client (diagnostics: call counts).
    pub fn client(&self) -> Arc<IpcClient> {
        self.host.client()
    }
}

impl fmt::Debug for IsolationControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IsolationControl({:?})", self.host)
    }
}

/// In-capsule stand-in for a component that actually lives in an isolated
/// host: exposes marshalling proxies for the interfaces the real
/// component implements.
struct IsolatedComponent {
    core: ComponentCore,
    client: Arc<IpcClient>,
    interfaces: Vec<InterfaceId>,
    isolation: Arc<IsolationRegistry>,
}

impl Component for IsolatedComponent {
    fn core(&self) -> &ComponentCore {
        &self.core
    }

    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        for id in &self.interfaces {
            // Presence of every proxy was verified before construction.
            if let Ok(iref) =
                self.isolation
                    .make_proxy(*id, Arc::clone(&self.client), self.core.id())
            {
                reg.expose_ref(iref);
            }
        }
    }

    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.interfaces.len() * std::mem::size_of::<InterfaceId>()
    }
}

/// A capsule: hosts components and offers the management API.
///
/// # Examples
///
/// ```
/// use opencom::capsule::Capsule;
/// use opencom::runtime::Runtime;
///
/// let rt = Runtime::new();
/// let capsule = Capsule::new("node-0", &rt);
/// assert_eq!(capsule.arch().component_count(), 0);
/// ```
pub struct Capsule {
    id: CapsuleId,
    name: String,
    runtime: Arc<Runtime>,
    arch: ArchitectureMetaModel,
    resources: ResourceManager,
    constraints: ConstraintSet,
    hosts: RwLock<HashMap<ComponentId, Arc<IsolatedHost>>>,
}

impl Capsule {
    /// Creates an empty capsule attached to `runtime`.
    pub fn new(name: impl Into<String>, runtime: &Arc<Runtime>) -> Arc<Self> {
        Arc::new(Self {
            id: CapsuleId::next(),
            name: name.into(),
            runtime: Arc::clone(runtime),
            arch: ArchitectureMetaModel::new(),
            resources: ResourceManager::new(),
            constraints: ConstraintSet::new(),
            hosts: RwLock::new(HashMap::new()),
        })
    }

    /// The capsule's id.
    pub fn id(&self) -> CapsuleId {
        self.id
    }

    /// The capsule's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// The architecture meta-model (structural reflection).
    pub fn arch(&self) -> &ArchitectureMetaModel {
        &self.arch
    }

    /// The resources meta-model.
    pub fn resources(&self) -> &ResourceManager {
        &self.resources
    }

    /// Capsule-level bind constraints (checked on every bind).
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    // ---- hosting --------------------------------------------------------

    /// Hosts an externally constructed component: publishes its
    /// interfaces and inserts it into the meta-model.
    ///
    /// # Errors
    ///
    /// Currently infallible but returns `Result` for forward compatibility
    /// with admission checks.
    pub fn adopt(&self, comp: Arc<dyn Component>) -> Result<ComponentId> {
        publish_component(&comp);
        let id = comp.core().id();
        self.arch.insert_component(comp);
        Ok(id)
    }

    /// Instantiates the latest registered version of `type_name` from the
    /// runtime registry and hosts it.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] for unknown types.
    pub fn instantiate(&self, type_name: &str) -> Result<ComponentId> {
        let comp = self.runtime.registry().instantiate_latest(type_name)?;
        self.adopt(comp)
    }

    /// Instantiates a specific version of `type_name`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::UnknownComponentType`] for unknown pairs.
    pub fn instantiate_version(&self, type_name: &str, version: Version) -> Result<ComponentId> {
        let comp = self.runtime.registry().instantiate(type_name, version)?;
        self.adopt(comp)
    }

    /// Instantiates `type_name` in a *separate* isolated capsule and hosts
    /// a proxy component in this one. `interfaces` lists the interface
    /// types the component exports; each must have a registered proxy
    /// factory and the type must have a registered skeleton factory.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownComponentType`] if no skeleton is registered.
    /// * [`Error::InterfaceNotFound`] if an interface lacks a proxy.
    pub fn instantiate_isolated(
        &self,
        type_name: &str,
        interfaces: &[InterfaceId],
    ) -> Result<ComponentId> {
        let isolation = Arc::clone(self.runtime.isolation());
        let maker = isolation.skeleton_maker(type_name)?;
        let core = ComponentCore::new(
            ComponentDescriptor::new(type_name, Version::new(0, 0, 0)).untrusted(),
        );
        let id = core.id();
        for iface in interfaces {
            if !isolation.supports_interface(*iface) {
                return Err(Error::InterfaceNotFound {
                    component: id,
                    interface: *iface,
                });
            }
        }
        let host = Arc::new(IsolatedHost::spawn(id, maker));
        let comp: Arc<dyn Component> = Arc::new(IsolatedComponent {
            core,
            client: host.client(),
            interfaces: interfaces.to_vec(),
            isolation,
        });
        publish_component(&comp);
        self.arch.insert_component(comp);
        self.hosts.write().insert(id, host);
        Ok(id)
    }

    /// Supervision handle for an isolated component.
    pub fn isolation_control(&self, id: ComponentId) -> Option<IsolationControl> {
        self.hosts.read().get(&id).map(|host| IsolationControl {
            host: Arc::clone(host),
        })
    }

    /// Looks up a hosted component.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids.
    pub fn component(&self, id: ComponentId) -> Result<Arc<dyn Component>> {
        self.arch.component(id)
    }

    /// Queries an exported interface of a hosted component.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::InterfaceNotFound`] / [`Error::StaleReference`].
    pub fn query_interface(&self, id: ComponentId, iface: InterfaceId) -> Result<InterfaceRef> {
        self.component(id)?.core().query_interface(iface)
    }

    // ---- the bind primitive ---------------------------------------------

    /// Builds (but does not execute) the [`BindRequest`] describing a
    /// proposed bind — used by CFs to run their own checks first.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is unknown.
    pub fn bind_request(
        &self,
        src: ComponentId,
        receptacle: &str,
        label: &str,
        dst: ComponentId,
        interface: InterfaceId,
    ) -> Result<BindRequest> {
        let src_comp = self.component(src)?;
        let dst_comp = self.component(dst)?;
        Ok(BindRequest {
            src,
            src_type: src_comp.core().descriptor().type_name.clone(),
            receptacle: receptacle.to_owned(),
            label: label.to_owned(),
            dst,
            dst_type: dst_comp.core().descriptor().type_name.clone(),
            interface,
        })
    }

    /// Executes the `bind` primitive: connects `src`'s receptacle to the
    /// `interface` exported by `dst`, after evaluating the capsule's
    /// bind-time constraints.
    ///
    /// # Errors
    ///
    /// Propagates constraint vetoes, type mismatches, and cardinality
    /// violations.
    pub fn bind(
        &self,
        src: ComponentId,
        receptacle: &str,
        label: &str,
        dst: ComponentId,
        interface: InterfaceId,
    ) -> Result<BindingId> {
        let req = self.bind_request(src, receptacle, label, dst, interface)?;
        self.constraints.check(&req)?;
        let iref = self.component(dst)?.core().query_interface(interface)?;
        self.component(src)?
            .core()
            .bind_receptacle(receptacle, label, iref.clone())?;
        let id = BindingId::next();
        self.arch.insert_binding(BindingRecord {
            id,
            src,
            receptacle: receptacle.to_owned(),
            label: label.to_owned(),
            dst,
            interface,
            raw: iref,
            chain: None,
        });
        Ok(id)
    }

    /// Convenience: bind with an empty label.
    ///
    /// # Errors
    ///
    /// See [`Capsule::bind`].
    pub fn bind_simple(
        &self,
        src: ComponentId,
        receptacle: &str,
        dst: ComponentId,
        interface: InterfaceId,
    ) -> Result<BindingId> {
        self.bind(src, receptacle, "", dst, interface)
    }

    /// Removes a binding, waiting for in-flight calls on that edge.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown binding ids.
    pub fn unbind(&self, binding: BindingId) -> Result<()> {
        let rec = self.arch.take_binding(binding)?;
        let src = self.component(rec.src)?;
        src.core()
            .unbind_receptacle(&rec.receptacle, rec.dst, &rec.label)
    }

    // ---- fusion -------------------------------------------------------

    /// Returns the *raw* target interface of a binding — no receptacle
    /// lookup, no interceptor chain — for callers that temporarily waive
    /// reconfigurability on a hot path (paper §5: "temporarily bypassing
    /// vtables, using partial evaluation techniques, to reduce the
    /// overhead of a cross-component call to that of a C function call").
    ///
    /// The returned handle keeps working even if the binding is later
    /// removed or intercepted: fusion trades adaptation visibility for
    /// speed, so callers must re-fuse after reconfiguring (the
    /// architecture meta-model tells them when).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown binding ids.
    pub fn fused_target(&self, binding: BindingId) -> Result<InterfaceRef> {
        Ok(self.arch.binding(binding)?.raw)
    }

    // ---- interception -----------------------------------------------------

    /// Splices an interceptor chain into a live binding, returning the
    /// chain for hook management. Idempotent: an already intercepted
    /// binding returns its existing chain.
    ///
    /// # Errors
    ///
    /// Fails if the interface has no registered wrapper factory.
    pub fn intercept(&self, binding: BindingId) -> Result<Arc<InterceptorChain>> {
        let rec = self.arch.binding(binding)?;
        if let Some(chain) = rec.chain {
            return Ok(chain);
        }
        let (wrapped, chain) = self.runtime.interceptors().wrap(rec.raw.clone())?;
        let src = self.component(rec.src)?;
        src.core()
            .rebind_receptacle(&rec.receptacle, rec.dst, &rec.label, wrapped)?;
        self.arch
            .update_binding(binding, |r| r.chain = Some(Arc::clone(&chain)))?;
        Ok(chain)
    }

    /// Removes interception from a binding, restoring the direct path.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::StaleReference`] for unknown ids; a
    /// non-intercepted binding is a no-op.
    pub fn unintercept(&self, binding: BindingId) -> Result<()> {
        let rec = self.arch.binding(binding)?;
        if rec.chain.is_none() {
            return Ok(());
        }
        let src = self.component(rec.src)?;
        src.core()
            .rebind_receptacle(&rec.receptacle, rec.dst, &rec.label, rec.raw.clone())?;
        self.arch.update_binding(binding, |r| r.chain = None)
    }

    // ---- adaptation -------------------------------------------------------

    /// Hot-replaces component `old` with (already hosted) component `new`:
    /// every incoming edge is rebound to `new`'s equivalent interface,
    /// every outgoing binding is re-created from `new`'s equally named
    /// receptacles, interceptor chains are preserved, and `old` is
    /// destroyed. If `old` was active, `new` is activated.
    ///
    /// # Errors
    ///
    /// Fails if `new` lacks an interface or receptacle that the current
    /// topology requires; the graph is left unchanged in that case for
    /// incoming edges processed after the failure point (best-effort
    /// rollback is not attempted — callers should validate `new`'s shape
    /// via the CF first, which the Router CF does).
    pub fn replace(&self, old: ComponentId, new: ComponentId, mode: Quiescence) -> Result<()> {
        let _full_guard = match mode {
            Quiescence::FullGraph => Some(self.arch.quiesce()),
            Quiescence::PerEdge => None,
        };
        let old_comp = self.component(old)?;
        let new_comp = self.component(new)?;
        let was_active = old_comp.core().state() == LifecycleState::Active;
        if was_active {
            old_comp.core().transition(LifecycleState::Suspended)?;
            old_comp.on_deactivate()?;
        }

        // Validate fit before mutating anything.
        let records = self.arch.binding_records();
        for rec in records.iter().filter(|r| r.dst == old) {
            new_comp.core().query_interface(rec.interface)?;
        }

        // Incoming edges: point the sources at `new`.
        for rec in records.iter().filter(|r| r.dst == old) {
            let raw_new = new_comp.core().query_interface(rec.interface)?;
            let effective = match &rec.chain {
                Some(chain) => self
                    .runtime
                    .interceptors()
                    .wrap_with(raw_new.clone(), Arc::clone(chain))?,
                None => raw_new.clone(),
            };
            let src = self.component(rec.src)?;
            src.core()
                .rebind_receptacle(&rec.receptacle, old, &rec.label, effective)?;
            self.arch.update_binding(rec.id, |r| {
                r.dst = new;
                r.raw = raw_new;
            })?;
        }

        // Outgoing edges: recreate them from `new`'s receptacles.
        for rec in records.iter().filter(|r| r.src == old) {
            let effective = match &rec.chain {
                Some(chain) => self
                    .runtime
                    .interceptors()
                    .wrap_with(rec.raw.clone(), Arc::clone(chain))?,
                None => rec.raw.clone(),
            };
            new_comp
                .core()
                .bind_receptacle(&rec.receptacle, &rec.label, effective)?;
            old_comp
                .core()
                .unbind_receptacle(&rec.receptacle, rec.dst, &rec.label)?;
            self.arch.update_binding(rec.id, |r| r.src = new)?;
        }

        // Life-cycle handover.
        if new_comp.core().state() == LifecycleState::Created {
            new_comp.core().transition(LifecycleState::Connected)?;
        }
        if was_active {
            new_comp.core().transition(LifecycleState::Active)?;
            new_comp.on_activate()?;
        }
        old_comp.core().transition(LifecycleState::Destroyed)?;
        self.arch.remove_component(old)?;
        self.hosts.write().remove(&old);
        Ok(())
    }

    /// Drives a component to the [`LifecycleState::Active`] state,
    /// passing through `Connected` if necessary.
    ///
    /// # Errors
    ///
    /// Propagates illegal transitions and `on_activate` failures.
    pub fn activate(&self, id: ComponentId) -> Result<()> {
        let comp = self.component(id)?;
        match comp.core().state() {
            LifecycleState::Created => {
                comp.core().transition(LifecycleState::Connected)?;
                comp.core().transition(LifecycleState::Active)?;
            }
            LifecycleState::Connected | LifecycleState::Suspended => {
                comp.core().transition(LifecycleState::Active)?;
            }
            LifecycleState::Active => return Ok(()),
            LifecycleState::Destroyed => {
                return Err(Error::IllegalTransition {
                    from: "Destroyed",
                    to: "Active",
                })
            }
        }
        comp.on_activate()
    }

    /// Suspends an active component.
    ///
    /// # Errors
    ///
    /// Propagates illegal transitions and `on_deactivate` failures.
    pub fn deactivate(&self, id: ComponentId) -> Result<()> {
        let comp = self.component(id)?;
        comp.core().transition(LifecycleState::Suspended)?;
        comp.on_deactivate()
    }

    /// Destroys a component: removes every binding that touches it,
    /// transitions it to `Destroyed`, and drops it from the capsule.
    ///
    /// # Errors
    ///
    /// Propagates unbind failures.
    pub fn destroy(&self, id: ComponentId) -> Result<()> {
        let comp = self.component(id)?;
        for rec in self.arch.bindings_of(id) {
            self.unbind(rec.id)?;
        }
        if comp.core().state() == LifecycleState::Active {
            comp.on_deactivate()?;
        }
        comp.core().transition(LifecycleState::Destroyed)?;
        self.arch.remove_component(id)?;
        self.hosts.write().remove(&id);
        Ok(())
    }

    // ---- reporting --------------------------------------------------------

    /// Graphviz rendering of the hosted graph.
    pub fn to_dot(&self) -> String {
        self.arch.to_dot(&self.name)
    }

    /// Footprint estimate of the hosted configuration in bytes.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.arch.footprint_bytes()
    }
}

impl fmt::Debug for Capsule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Capsule(`{}` {}: {} components, {} bindings)",
            self.name,
            self.id,
            self.arch.component_count(),
            self.arch.binding_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::TopologyRule;
    use crate::interception::FnHook;
    use crate::ipc::{wire, IpcDispatch};
    use crate::receptacle::Receptacle;
    use std::sync::atomic::{AtomicU64, Ordering};

    // A tiny "number pipeline" component model used across capsule tests:
    // sources push u64s to sinks through the INumberSink interface.
    trait INumberSink: Send + Sync {
        fn accept(&self, n: u64) -> Result<u64>;
    }
    const ISINK: InterfaceId = InterfaceId::new("captest.INumberSink");

    struct Adder {
        core: ComponentCore,
        bias: u64,
        seen: AtomicU64,
        out: Receptacle<dyn INumberSink>,
    }

    impl Adder {
        fn make(bias: u64) -> Arc<Self> {
            Arc::new(Self {
                core: ComponentCore::new(ComponentDescriptor::new(
                    "captest.Adder",
                    Version::new(1, 0, 0),
                )),
                bias,
                seen: AtomicU64::new(0),
                out: Receptacle::single("out", ISINK),
            })
        }
    }

    impl INumberSink for Adder {
        fn accept(&self, n: u64) -> Result<u64> {
            self.seen.fetch_add(1, Ordering::Relaxed);
            let v = n + self.bias;
            match self.out.with_bound(|next| next.accept(v)) {
                Some(r) => r,
                None => Ok(v),
            }
        }
    }

    impl Component for Adder {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
            let me: Arc<dyn INumberSink> = self.clone();
            reg.expose(ISINK, &me);
            reg.receptacle(&self.out);
        }
    }

    struct SinkWrapper {
        target: Arc<dyn INumberSink>,
        chain: Arc<InterceptorChain>,
    }
    impl INumberSink for SinkWrapper {
        fn accept(&self, n: u64) -> Result<u64> {
            self.chain.around("accept", || self.target.accept(n))?
        }
    }

    fn runtime_with_wrappers() -> Arc<Runtime> {
        let rt = Runtime::new();
        rt.interceptors().register(
            ISINK,
            Box::new(|target, chain| {
                let inner: Arc<dyn INumberSink> = target.downcast().expect("INumberSink");
                let provider = target.provider();
                let wrapped: Arc<dyn INumberSink> = Arc::new(SinkWrapper {
                    target: inner,
                    chain,
                });
                InterfaceRef::new(ISINK, provider, wrapped)
            }),
        );
        rt
    }

    fn pipeline(capsule: &Arc<Capsule>) -> (ComponentId, ComponentId, Arc<Adder>, Arc<Adder>) {
        let a = Adder::make(1);
        let b = Adder::make(10);
        let (ra, rb) = (Arc::clone(&a), Arc::clone(&b));
        let aid = capsule.adopt(a).unwrap();
        let bid = capsule.adopt(b).unwrap();
        capsule.bind_simple(aid, "out", bid, ISINK).unwrap();
        (aid, bid, ra, rb)
    }

    fn call(capsule: &Capsule, id: ComponentId, n: u64) -> Result<u64> {
        let sink: Arc<dyn INumberSink> = capsule
            .query_interface(id, ISINK)
            .unwrap()
            .downcast()
            .unwrap();
        sink.accept(n)
    }

    #[test]
    fn bind_and_call_through_pipeline() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, _bid, _, _) = pipeline(&capsule);
        assert_eq!(call(&capsule, aid, 0).unwrap(), 11); // +1 then +10
        assert_eq!(capsule.arch().binding_count(), 1);
    }

    #[test]
    fn capsule_constraints_veto_bind() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        capsule.constraints().add(
            TopologyRule::Forbid("captest.Adder".into(), "captest.Adder".into()).into_constraint(),
        );
        let a = capsule.adopt(Adder::make(1)).unwrap();
        let b = capsule.adopt(Adder::make(2)).unwrap();
        assert!(matches!(
            capsule.bind_simple(a, "out", b, ISINK),
            Err(Error::ConstraintVeto { .. })
        ));
        assert_eq!(capsule.arch().binding_count(), 0);
    }

    #[test]
    fn unbind_removes_edge_and_stops_forwarding() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, _bid, _, rb) = pipeline(&capsule);
        let binding = capsule.arch().binding_records()[0].id;
        capsule.unbind(binding).unwrap();
        assert_eq!(call(&capsule, aid, 0).unwrap(), 1); // only +1 now
        assert_eq!(rb.seen.load(Ordering::Relaxed), 0);
        assert!(capsule.unbind(binding).is_err());
    }

    #[test]
    fn intercept_counts_calls_and_unintercept_restores() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, _bid, _, _) = pipeline(&capsule);
        let binding = capsule.arch().binding_records()[0].id;
        let chain = capsule.intercept(binding).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        chain.add(FnHook::new(
            "count",
            move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            |_| {},
        ));
        assert_eq!(call(&capsule, aid, 0).unwrap(), 11);
        assert_eq!(count.load(Ordering::Relaxed), 1);
        // Idempotent intercept returns the same chain.
        let chain2 = capsule.intercept(binding).unwrap();
        assert_eq!(chain2.len(), 1);
        capsule.unintercept(binding).unwrap();
        assert_eq!(call(&capsule, aid, 0).unwrap(), 11);
        assert_eq!(count.load(Ordering::Relaxed), 1, "hook no longer on path");
    }

    #[test]
    fn replace_rewires_incoming_and_outgoing_edges() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        // a -> b -> c; replace b with b2 (bias 100).
        let (aid, bid, _, _) = pipeline(&capsule);
        let c = Adder::make(1000);
        let cid = capsule.adopt(c).unwrap();
        capsule.bind_simple(bid, "out", cid, ISINK).unwrap();
        capsule.activate(aid).unwrap();
        capsule.activate(bid).unwrap();
        capsule.activate(cid).unwrap();
        assert_eq!(call(&capsule, aid, 0).unwrap(), 1011);

        let b2 = Adder::make(100);
        let b2id = capsule.adopt(b2).unwrap();
        capsule.replace(bid, b2id, Quiescence::PerEdge).unwrap();
        assert_eq!(call(&capsule, aid, 0).unwrap(), 1101); // +1 +100 +1000
        assert!(capsule.component(bid).is_err(), "old component removed");
        assert_eq!(
            capsule.component(b2id).unwrap().core().state(),
            LifecycleState::Active
        );
        assert_eq!(capsule.arch().binding_count(), 2);
    }

    #[test]
    fn replace_preserves_interceptor_chains() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, bid, _, _) = pipeline(&capsule);
        let binding = capsule.arch().binding_records()[0].id;
        let chain = capsule.intercept(binding).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let cc = Arc::clone(&count);
        chain.add(FnHook::new(
            "count",
            move |_| {
                cc.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
            |_| {},
        ));
        let b2id = capsule.adopt(Adder::make(20)).unwrap();
        capsule.replace(bid, b2id, Quiescence::FullGraph).unwrap();
        assert_eq!(call(&capsule, aid, 0).unwrap(), 21);
        assert_eq!(count.load(Ordering::Relaxed), 1, "chain survived the swap");
    }

    #[test]
    fn replace_missing_interface_fails_before_mutation() {
        struct NoIface {
            core: ComponentCore,
        }
        impl Component for NoIface {
            fn core(&self) -> &ComponentCore {
                &self.core
            }
            fn publish(self: Arc<Self>, _reg: &Registrar<'_>) {}
        }
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, bid, _, _) = pipeline(&capsule);
        let bad = capsule
            .adopt(Arc::new(NoIface {
                core: ComponentCore::new(ComponentDescriptor::new(
                    "captest.NoIface",
                    Version::new(1, 0, 0),
                )),
            }))
            .unwrap();
        assert!(capsule.replace(bid, bad, Quiescence::PerEdge).is_err());
        // Original pipeline still intact.
        assert_eq!(call(&capsule, aid, 5).unwrap(), 16);
    }

    #[test]
    fn destroy_removes_component_and_edges() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let (aid, bid, _, _) = pipeline(&capsule);
        capsule.destroy(bid).unwrap();
        assert_eq!(capsule.arch().binding_count(), 0);
        assert_eq!(call(&capsule, aid, 0).unwrap(), 1);
        assert!(capsule.component(bid).is_err());
    }

    // ---- isolation --------------------------------------------------------

    struct IsolatedAdderSkeleton {
        bias: u64,
        crash_on: u64,
    }
    impl IpcDispatch for IsolatedAdderSkeleton {
        fn dispatch(
            &self,
            _interface: &str,
            method: &str,
            payload: &[u8],
        ) -> std::result::Result<Vec<u8>, String> {
            match method {
                "accept" => {
                    let mut pos = 0;
                    let n = wire::get_u64(payload, &mut pos).ok_or("bad payload")?;
                    assert!(n != self.crash_on, "injected crash on {n}");
                    let mut out = Vec::new();
                    wire::put_u64(&mut out, n + self.bias);
                    Ok(out)
                }
                other => Err(format!("no method `{other}`")),
            }
        }
    }

    struct SinkProxy {
        client: Arc<IpcClient>,
    }
    impl INumberSink for SinkProxy {
        fn accept(&self, n: u64) -> Result<u64> {
            let mut payload = Vec::new();
            wire::put_u64(&mut payload, n);
            let reply = self.client.call(ISINK.name(), "accept", payload)?;
            let mut pos = 0;
            wire::get_u64(&reply, &mut pos).ok_or(Error::IpcFailure {
                detail: "short reply".into(),
            })
        }
    }

    fn runtime_with_isolation() -> Arc<Runtime> {
        let rt = runtime_with_wrappers();
        rt.isolation().register_skeleton(
            "captest.IsolatedAdder",
            Box::new(|| {
                Arc::new(IsolatedAdderSkeleton {
                    bias: 7,
                    crash_on: 13,
                })
            }),
        );
        rt.isolation().register_proxy(
            ISINK,
            Box::new(|client, provider| {
                let proxy: Arc<dyn INumberSink> = Arc::new(SinkProxy { client });
                InterfaceRef::new(ISINK, provider, proxy)
            }),
        );
        rt
    }

    #[test]
    fn isolated_component_binds_transparently() {
        let rt = runtime_with_isolation();
        let capsule = Capsule::new("t", &rt);
        let a = capsule.adopt(Adder::make(1)).unwrap();
        let iso = capsule
            .instantiate_isolated("captest.IsolatedAdder", &[ISINK])
            .unwrap();
        capsule.bind_simple(a, "out", iso, ISINK).unwrap();
        // 0 +1 (in-proc) +7 (isolated) = 8, crossing the IPC boundary.
        assert_eq!(call(&capsule, a, 0).unwrap(), 8);
    }

    #[test]
    fn crash_is_contained_and_respawn_recovers() {
        let rt = runtime_with_isolation();
        let capsule = Capsule::new("t", &rt);
        let a = capsule.adopt(Adder::make(1)).unwrap();
        let iso = capsule
            .instantiate_isolated("captest.IsolatedAdder", &[ISINK])
            .unwrap();
        capsule.bind_simple(a, "out", iso, ISINK).unwrap();
        // 12 +1 = 13 triggers the injected crash inside the skeleton.
        let err = call(&capsule, a, 12).unwrap_err();
        assert!(matches!(err, Error::ComponentCrashed { .. }));
        let control = capsule.isolation_control(iso).unwrap();
        assert!(control.is_dead());
        control.respawn();
        assert_eq!(call(&capsule, a, 0).unwrap(), 8, "service restored");
        assert_eq!(control.restart_count(), 1);
    }

    #[test]
    fn isolated_without_proxy_is_rejected() {
        let rt = Runtime::new();
        rt.isolation().register_skeleton(
            "captest.IsolatedAdder",
            Box::new(|| {
                Arc::new(IsolatedAdderSkeleton {
                    bias: 7,
                    crash_on: u64::MAX,
                })
            }),
        );
        let capsule = Capsule::new("t", &rt);
        assert!(matches!(
            capsule.instantiate_isolated("captest.IsolatedAdder", &[ISINK]),
            Err(Error::InterfaceNotFound { .. })
        ));
    }

    #[test]
    fn registry_instantiation_via_capsule() {
        let rt = runtime_with_wrappers();
        rt.registry().register(
            "captest.Adder",
            Version::new(1, 0, 0),
            Box::new(|| Adder::make(5)),
        );
        let capsule = Capsule::new("t", &rt);
        let id = capsule.instantiate("captest.Adder").unwrap();
        assert_eq!(call(&capsule, id, 1).unwrap(), 6);
        assert!(capsule.instantiate("captest.Missing").is_err());
    }

    #[test]
    fn fused_target_bypasses_receptacle_and_interceptors() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let a = capsule.adopt(Adder::make(1)).unwrap();
        let b = capsule.adopt(Adder::make(10)).unwrap();
        let binding = capsule.bind_simple(a, "out", b, ISINK).unwrap();

        let fused: Arc<dyn INumberSink> =
            capsule.fused_target(binding).unwrap().downcast().unwrap();
        // Calling the fused handle hits `b` directly: 0 + 10 (b's bias),
        // not 0 + 1 + 10 (the full a→b chain).
        assert_eq!(fused.accept(0).unwrap(), 10);

        // Interception splices into the *binding*; the fused handle keeps
        // the raw path.
        let chain = capsule.intercept(binding).unwrap();
        chain.add(crate::interception::FnHook::new(
            "veto",
            |_| {
                Err(Error::ConstraintVeto {
                    constraint: "x".into(),
                    reason: "no".into(),
                })
            },
            |_| {},
        ));
        assert_eq!(fused.accept(0).unwrap(), 10, "fused path skips the veto");
        // While the bound path now refuses.
        assert!(call(&capsule, a, 0).is_err());

        // Unknown ids are reported.
        capsule.unbind(binding).unwrap();
        assert!(capsule.fused_target(binding).is_err());
    }

    #[test]
    fn footprint_grows_with_configuration() {
        let rt = runtime_with_wrappers();
        let capsule = Capsule::new("t", &rt);
        let empty = capsule.footprint_bytes();
        pipeline(&capsule);
        assert!(capsule.footprint_bytes() > empty);
    }
}
