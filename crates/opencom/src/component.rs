//! The component abstraction and its life-cycle.
//!
//! OpenCOM components are fine-grained units of deployment that export
//! *interfaces*, declare dependencies through *receptacles*, and carry the
//! standard meta-interfaces (architecture/interface/interception/resources)
//! through their hosting [`Capsule`](crate::capsule::Capsule).
//!
//! Concrete components embed a [`ComponentCore`] and implement the
//! [`Component`] trait; after construction the capsule calls
//! [`Component::publish`] once with a [`Registrar`] so the component can
//! announce its interfaces and receptacles.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{Error, Result};
use crate::ident::{ComponentId, InterfaceId, Version};
use crate::interface::{InterfaceExport, InterfaceRef};
use crate::receptacle::{Receptacle, ReceptacleEntry, ReceptacleInfo};

/// Life-cycle states of a component instance, with legal transitions
/// enforced by [`ComponentCore::transition`]:
///
/// ```text
/// Created -> Connected -> Active <-> Suspended
///     \          \           \________ Destroyed
///      \          \_____________________^
///       \_______________________________^
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// Instantiated but not yet wired into a graph.
    Created,
    /// Receptacles bound; not yet processing.
    Connected,
    /// Processing work.
    Active,
    /// Temporarily quiesced (e.g. during reconfiguration).
    Suspended,
    /// Removed from the graph; terminal.
    Destroyed,
}

impl LifecycleState {
    /// Returns the state's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LifecycleState::Created => "Created",
            LifecycleState::Connected => "Connected",
            LifecycleState::Active => "Active",
            LifecycleState::Suspended => "Suspended",
            LifecycleState::Destroyed => "Destroyed",
        }
    }

    /// True if the transition `self -> to` is legal.
    pub fn can_transition_to(&self, to: LifecycleState) -> bool {
        use LifecycleState::*;
        matches!(
            (*self, to),
            (Created, Connected)
                | (Connected, Active)
                | (Active, Suspended)
                | (Suspended, Active)
                | (Created, Destroyed)
                | (Connected, Destroyed)
                | (Active, Destroyed)
                | (Suspended, Destroyed)
        )
    }
}

/// Static metadata about a component instance.
#[derive(Clone, Debug)]
pub struct ComponentDescriptor {
    /// The deployable type name (registry key), e.g. `"netkit.Classifier"`.
    pub type_name: String,
    /// Version of the implementation.
    pub version: Version,
    /// True if the component is a composite (contains an inner graph).
    pub composite: bool,
    /// Trust level; untrusted components are candidates for isolation
    /// in a separate capsule (paper §5).
    pub trusted: bool,
}

impl ComponentDescriptor {
    /// Creates a descriptor for a trusted, non-composite component.
    pub fn new(type_name: impl Into<String>, version: Version) -> Self {
        Self {
            type_name: type_name.into(),
            version,
            composite: false,
            trusted: true,
        }
    }

    /// Marks the component as composite.
    pub fn composite(mut self) -> Self {
        self.composite = true;
        self
    }

    /// Marks the component as untrusted.
    pub fn untrusted(mut self) -> Self {
        self.trusted = false;
        self
    }
}

/// The per-instance state every component embeds.
///
/// `ComponentCore` owns the interface and receptacle tables, the life-cycle
/// state machine, and a footprint estimate used by the memory experiments.
pub struct ComponentCore {
    id: ComponentId,
    descriptor: ComponentDescriptor,
    state: Mutex<LifecycleState>,
    exports: RwLock<HashMap<InterfaceId, InterfaceExport>>,
    receptacles: RwLock<HashMap<String, ReceptacleEntry>>,
}

impl ComponentCore {
    /// Creates a core for a new instance, allocating a fresh
    /// [`ComponentId`].
    pub fn new(descriptor: ComponentDescriptor) -> Self {
        Self {
            id: ComponentId::next(),
            descriptor,
            state: Mutex::new(LifecycleState::Created),
            exports: RwLock::new(HashMap::new()),
            receptacles: RwLock::new(HashMap::new()),
        }
    }

    /// This instance's unique id.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Static metadata.
    pub fn descriptor(&self) -> &ComponentDescriptor {
        &self.descriptor
    }

    /// Current life-cycle state.
    pub fn state(&self) -> LifecycleState {
        *self.state.lock()
    }

    /// Performs a life-cycle transition.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IllegalTransition`] if the move is not permitted by
    /// the state machine.
    pub fn transition(&self, to: LifecycleState) -> Result<()> {
        let mut state = self.state.lock();
        if !state.can_transition_to(to) {
            return Err(Error::IllegalTransition {
                from: state.name(),
                to: to.name(),
            });
        }
        *state = to;
        Ok(())
    }

    /// Lists the interface ids this component exports.
    pub fn interfaces(&self) -> Vec<InterfaceId> {
        let mut ids: Vec<_> = self.exports.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Produces a strong [`InterfaceRef`] for an exported interface.
    pub fn query_interface(&self, id: InterfaceId) -> Result<InterfaceRef> {
        self.exports
            .read()
            .get(&id)
            .and_then(|e| e.materialize())
            .ok_or(Error::InterfaceNotFound {
                component: self.id,
                interface: id,
            })
    }

    /// Lists receptacle metadata for the meta-model.
    pub fn receptacle_infos(&self) -> Vec<ReceptacleInfo> {
        let mut infos: Vec<_> = self.receptacles.read().values().map(|e| e.info()).collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Binds `iref` into the named receptacle (type-erased path used by the
    /// capsule `bind` primitive).
    pub fn bind_receptacle(&self, name: &str, label: &str, iref: InterfaceRef) -> Result<()> {
        let recs = self.receptacles.read();
        let entry = recs.get(name).ok_or_else(|| Error::ReceptacleNotFound {
            component: self.id,
            name: name.to_owned(),
        })?;
        entry.bind(label, iref)
    }

    /// Unbinds the peer attached under `label` from the named receptacle.
    pub fn unbind_receptacle(&self, name: &str, peer: ComponentId, label: &str) -> Result<()> {
        let recs = self.receptacles.read();
        let entry = recs.get(name).ok_or_else(|| Error::ReceptacleNotFound {
            component: self.id,
            name: name.to_owned(),
        })?;
        entry.unbind(peer, label)
    }

    /// Atomically swaps the peer of an existing binding (hot-swap).
    pub fn rebind_receptacle(
        &self,
        name: &str,
        old_peer: ComponentId,
        label: &str,
        iref: InterfaceRef,
    ) -> Result<()> {
        let recs = self.receptacles.read();
        let entry = recs.get(name).ok_or_else(|| Error::ReceptacleNotFound {
            component: self.id,
            name: name.to_owned(),
        })?;
        entry.rebind(old_peer, label, iref)
    }

    /// Returns current `(receptacle, label, peer, iface)` tuples for every
    /// outgoing binding.
    pub fn outgoing_bindings(&self) -> Vec<(String, String, ComponentId, InterfaceRef)> {
        let recs = self.receptacles.read();
        let mut out = Vec::new();
        for (name, entry) in recs.iter() {
            for (label, peer, iref) in entry.bindings() {
                out.push((name.clone(), label, peer, iref));
            }
        }
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }

    fn register_export(&self, export: InterfaceExport) {
        self.exports.write().insert(export.id, export);
    }

    fn register_receptacle(&self, entry: ReceptacleEntry) {
        self.receptacles.write().insert(entry.name.clone(), entry);
    }

    /// Removes an exported interface (dynamic remove, legal as long as the
    /// hosting CF's rules remain satisfied — the CF re-checks).
    pub fn retract_interface(&self, id: InterfaceId) -> Result<()> {
        if self.exports.write().remove(&id).is_none() {
            return Err(Error::InterfaceNotFound {
                component: self.id,
                interface: id,
            });
        }
        Ok(())
    }
}

impl fmt::Debug for ComponentCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ComponentCore({} `{}` v{} {:?})",
            self.id,
            self.descriptor.type_name,
            self.descriptor.version,
            self.state()
        )
    }
}

/// Handed to [`Component::publish`] so a freshly constructed component can
/// announce its interfaces and receptacles.
pub struct Registrar<'a> {
    core: &'a ComponentCore,
}

impl fmt::Debug for Registrar<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registrar({})", self.core.descriptor().type_name)
    }
}

impl<'a> Registrar<'a> {
    pub(crate) fn new(core: &'a ComponentCore) -> Self {
        Self { core }
    }

    /// Exports `iface` under `id`. The registrar stores only a weak
    /// reference, so exporting does not leak the component.
    pub fn expose<I>(&self, id: InterfaceId, iface: &Arc<I>)
    where
        I: ?Sized + Send + Sync + 'static,
    {
        self.core
            .register_export(InterfaceExport::new(id, self.core.id(), iface));
    }

    /// Re-exports an interface obtained from elsewhere (used by composites
    /// that surface an inner component's interface at their boundary).
    pub fn expose_ref(&self, iref: InterfaceRef) {
        self.core.register_export(InterfaceExport::from_ref(iref));
    }

    /// Registers a typed receptacle with the component's table so the
    /// capsule `bind` primitive and the meta-model can reach it.
    pub fn receptacle<I: ?Sized + Send + Sync + 'static>(&self, rec: &Receptacle<I>) {
        self.core
            .register_receptacle(ReceptacleEntry::from_typed(rec));
    }
}

/// The trait all OpenCOM components implement.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
/// use opencom::ident::{InterfaceId, Version};
///
/// trait IEcho: Send + Sync { fn echo(&self, s: &str) -> String; }
/// const IECHO: InterfaceId = InterfaceId::new("demo.IEcho");
///
/// struct Echo { core: ComponentCore }
/// impl Echo {
///     fn new() -> Arc<Self> {
///         Arc::new(Self { core: ComponentCore::new(
///             ComponentDescriptor::new("demo.Echo", Version::new(1, 0, 0))) })
///     }
/// }
/// impl IEcho for Echo { fn echo(&self, s: &str) -> String { s.to_owned() } }
/// impl Component for Echo {
///     fn core(&self) -> &ComponentCore { &self.core }
///     fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
///         let me: Arc<dyn IEcho> = self.clone();
///         reg.expose(IECHO, &me);
///     }
/// }
/// ```
pub trait Component: Send + Sync + 'static {
    /// Access to the embedded [`ComponentCore`].
    fn core(&self) -> &ComponentCore;

    /// Called exactly once after construction; the component exposes its
    /// interfaces and registers its receptacles here.
    fn publish(self: Arc<Self>, reg: &Registrar<'_>);

    /// Hook invoked when the component becomes [`LifecycleState::Active`].
    ///
    /// # Errors
    ///
    /// Implementations may fail to veto activation.
    fn on_activate(&self) -> Result<()> {
        Ok(())
    }

    /// Hook invoked when the component leaves the active state.
    ///
    /// # Errors
    ///
    /// Implementations may report (but cannot veto) deactivation problems.
    fn on_deactivate(&self) -> Result<()> {
        Ok(())
    }

    /// Approximate bytes of state held by this component, used by the
    /// footprint experiment (E3). Implementations should include owned
    /// buffers/tables; the default covers only the core tables.
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<ComponentCore>()
    }
}

/// Runs post-construction publication. Called by capsules and tests.
pub fn publish_component(comp: &Arc<dyn Component>) {
    let registrar = Registrar::new(comp.core());
    Arc::clone(comp).publish(&registrar);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receptacle::Cardinality;

    trait IEcho: Send + Sync {
        fn echo(&self, s: &str) -> String;
    }
    const IECHO: InterfaceId = InterfaceId::new("test.IEcho");

    struct Echo {
        core: ComponentCore,
        out: Receptacle<dyn IEcho>,
    }

    impl Echo {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                core: ComponentCore::new(ComponentDescriptor::new(
                    "test.Echo",
                    Version::new(1, 0, 0),
                )),
                out: Receptacle::new("out", IECHO, Cardinality::Single),
            })
        }
    }

    impl IEcho for Echo {
        fn echo(&self, s: &str) -> String {
            // Forward through the receptacle when bound, else identity.
            self.out
                .with_bound(|next| next.echo(s))
                .unwrap_or_else(|| s.to_owned())
        }
    }

    impl Component for Echo {
        fn core(&self) -> &ComponentCore {
            &self.core
        }
        fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
            let me: Arc<dyn IEcho> = self.clone();
            reg.expose(IECHO, &me);
            reg.receptacle(&self.out);
        }
    }

    fn make() -> Arc<dyn Component> {
        let e = Echo::new();
        let comp: Arc<dyn Component> = e;
        publish_component(&comp);
        comp
    }

    #[test]
    fn query_interface_returns_working_handle() {
        let comp = make();
        let iref = comp.core().query_interface(IECHO).unwrap();
        let echo: Arc<dyn IEcho> = iref.downcast().unwrap();
        assert_eq!(echo.echo("hi"), "hi");
    }

    #[test]
    fn query_unknown_interface_fails() {
        let comp = make();
        let err = comp
            .core()
            .query_interface(InterfaceId::new("test.Nope"))
            .unwrap_err();
        assert!(matches!(err, Error::InterfaceNotFound { .. }));
    }

    #[test]
    fn bind_through_type_erased_path() {
        let a = make();
        let b = make();
        let iref = b.core().query_interface(IECHO).unwrap();
        a.core().bind_receptacle("out", "", iref).unwrap();
        let echo: Arc<dyn IEcho> = a.core().query_interface(IECHO).unwrap().downcast().unwrap();
        assert_eq!(echo.echo("via b"), "via b");
        let infos = a.core().receptacle_infos();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].bound.len(), 1);
        assert_eq!(infos[0].bound[0].1, b.core().id());
    }

    #[test]
    fn unbind_unknown_receptacle_fails() {
        let a = make();
        let err = a
            .core()
            .unbind_receptacle("missing", ComponentId::from_raw(1), "")
            .unwrap_err();
        assert!(matches!(err, Error::ReceptacleNotFound { .. }));
    }

    #[test]
    fn lifecycle_happy_path() {
        let comp = make();
        let core = comp.core();
        assert_eq!(core.state(), LifecycleState::Created);
        core.transition(LifecycleState::Connected).unwrap();
        core.transition(LifecycleState::Active).unwrap();
        core.transition(LifecycleState::Suspended).unwrap();
        core.transition(LifecycleState::Active).unwrap();
        core.transition(LifecycleState::Destroyed).unwrap();
    }

    #[test]
    fn lifecycle_rejects_illegal_moves() {
        let comp = make();
        let core = comp.core();
        assert!(core.transition(LifecycleState::Active).is_err()); // Created -> Active
        core.transition(LifecycleState::Connected).unwrap();
        core.transition(LifecycleState::Destroyed).unwrap();
        assert!(core.transition(LifecycleState::Active).is_err()); // terminal
    }

    #[test]
    fn retract_interface_dynamic_remove() {
        let comp = make();
        comp.core().retract_interface(IECHO).unwrap();
        assert!(comp.core().query_interface(IECHO).is_err());
        assert!(comp.core().retract_interface(IECHO).is_err());
    }

    #[test]
    fn interfaces_listing_is_sorted_and_complete() {
        let comp = make();
        assert_eq!(comp.core().interfaces(), vec![IECHO]);
    }

    #[test]
    fn no_arc_cycle_from_publication() {
        let e = Echo::new();
        let weak = Arc::downgrade(&e);
        let comp: Arc<dyn Component> = e;
        publish_component(&comp);
        drop(comp);
        // If publication stored a strong self-reference the component
        // would leak and the weak count would still upgrade.
        assert!(weak.upgrade().is_none());
    }
}
