//! Property-based tests over the component model: random sequences of
//! bind / unbind / replace operations must keep the architecture
//! meta-model consistent with the components' receptacle state, never
//! leak components, and never panic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use opencom::capsule::{Capsule, Quiescence};
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::ident::{ComponentId, InterfaceId, Version};
use opencom::receptacle::Receptacle;
use opencom::runtime::Runtime;

const ISINK: InterfaceId = InterfaceId::new("prop.ISink");

trait ISink: Send + Sync {
    fn accept(&self, n: u64);
}

/// A node exporting ISink and holding a multi-receptacle of ISinks.
struct Node {
    core: ComponentCore,
    outs: Receptacle<dyn ISink>,
    seen: AtomicU64,
}

impl Node {
    fn make() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new("prop.Node", Version::new(1, 0, 0))),
            outs: Receptacle::multi("out", ISINK),
            seen: AtomicU64::new(0),
        })
    }
}

impl ISink for Node {
    fn accept(&self, n: u64) {
        self.seen.fetch_add(n, Ordering::Relaxed);
        // Do not forward: keeps arbitrary graphs cycle-safe.
    }
}

impl Component for Node {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let me: Arc<dyn ISink> = self.clone();
        reg.expose(ISINK, &me);
        reg.receptacle(&self.outs);
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Bind { src: usize, dst: usize, label: u8 },
    UnbindNth { idx: usize },
    Replace { victim: usize, full: bool },
    Call { via: usize },
}

fn op_strategy(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes, 0..nodes, any::<u8>()).prop_map(|(src, dst, label)| Op::Bind {
            src,
            dst,
            label
        }),
        (0..64usize).prop_map(|idx| Op::UnbindNth { idx }),
        (0..nodes, any::<bool>()).prop_map(|(victim, full)| Op::Replace { victim, full }),
        (0..nodes).prop_map(|via| Op::Call { via }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_reconfiguration_keeps_the_meta_model_consistent(
        n_nodes in 2usize..6,
        ops in proptest::collection::vec(op_strategy(5), 1..40),
    ) {
        let rt = Runtime::new();
        let capsule = Capsule::new("prop", &rt);
        let mut ids: Vec<ComponentId> = Vec::new();
        for _ in 0..n_nodes {
            ids.push(capsule.adopt(Node::make()).unwrap());
        }

        for op in ops {
            match op {
                Op::Bind { src, dst, label } => {
                    let (src, dst) = (ids[src % ids.len()], ids[dst % ids.len()]);
                    // Self-binds and duplicate labels may legitimately
                    // fail; the property is no-panic + consistency.
                    let _ = capsule.bind(src, "out", &format!("l{label}"), dst, ISINK);
                }
                Op::UnbindNth { idx } => {
                    let records = capsule.arch().binding_records();
                    if !records.is_empty() {
                        let _ = capsule.unbind(records[idx % records.len()].id);
                    }
                }
                Op::Replace { victim, full } => {
                    let old = ids[victim % ids.len()];
                    let fresh = capsule.adopt(Node::make()).unwrap();
                    let mode = if full { Quiescence::FullGraph } else { Quiescence::PerEdge };
                    match capsule.replace(old, fresh, mode) {
                        Ok(()) => {
                            for id in ids.iter_mut() {
                                if *id == old {
                                    *id = fresh;
                                }
                            }
                        }
                        Err(_) => {
                            // Roll the unused replacement back out.
                            let _ = capsule.destroy(fresh);
                        }
                    }
                }
                Op::Call { via } => {
                    let id = ids[via % ids.len()];
                    if let Ok(iref) = capsule.query_interface(id, ISINK) {
                        if let Some(sink) = iref.downcast::<dyn ISink>() {
                            sink.accept(1);
                        }
                    }
                }
            }

            // Invariant 1: the meta-model's binding records agree with
            // the components' outgoing binding tables.
            let records = capsule.arch().binding_records();
            let mut from_components = 0usize;
            for &id in &ids {
                let comp = capsule.component(id).unwrap();
                from_components += comp.core().outgoing_bindings().len();
            }
            prop_assert_eq!(records.len(), from_components);

            // Invariant 2: every record's endpoints exist.
            for rec in &records {
                prop_assert!(capsule.component(rec.src).is_ok());
                prop_assert!(capsule.component(rec.dst).is_ok());
            }

            // Invariant 3: the live component set is exactly `ids`.
            prop_assert_eq!(capsule.arch().component_count(), ids.len());
        }

        // Every live component still answers query_interface.
        for &id in &ids {
            prop_assert!(capsule.query_interface(id, ISINK).is_ok());
        }
    }

    #[test]
    fn footprint_is_monotonic_in_graph_size(extra in 1usize..16) {
        let rt = Runtime::new();
        let capsule = Capsule::new("fp", &rt);
        let mut last = capsule.footprint_bytes();
        for _ in 0..extra {
            capsule.adopt(Node::make()).unwrap();
            let now = capsule.footprint_bytes();
            prop_assert!(now > last, "adding a component must grow the estimate");
            last = now;
        }
    }
}
