//! Property-based tests for the Click-like config compiler: generated
//! valid configs always compile and run; the parser never panics on
//! arbitrary text; counters conserve packets.

use proptest::prelude::*;

use netkit_baselines::click::ClickRouter;
use netkit_packet::packet::PacketBuilder;

/// A generated linear pipeline: N pass-through stages ending in a sink,
/// with declarations and connections interleaved arbitrarily.
fn linear_config(stages: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut cfg = String::new();
    for (i, class) in stages.iter().enumerate() {
        let _ = writeln!(cfg, "e{i} :: {class};");
    }
    let _ = writeln!(cfg, "sink :: Discard;");
    for i in 0..stages.len().saturating_sub(1) {
        let _ = writeln!(cfg, "e{i} -> e{};", i + 1);
    }
    if !stages.is_empty() {
        let _ = writeln!(cfg, "e{} -> sink;", stages.len() - 1);
    }
    cfg
}

fn passthrough_class() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("Counter"), Just("DecTtl")]
}

proptest! {
    #[test]
    fn generated_linear_configs_compile_and_conserve_packets(
        classes in proptest::collection::vec(passthrough_class(), 1..12),
        packets in 1u64..32,
    ) {
        let cfg = linear_config(&classes);
        let router = ClickRouter::compile(&cfg).expect("generated config is valid");
        prop_assert_eq!(router.element_count(), classes.len() + 1);
        for i in 0..packets {
            router.push(
                "e0",
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", i as u16, 80)
                    .ttl(64)
                    .build(),
            );
        }
        // TTL 64 with <12 DecTtl stages: nothing expires, so the sink
        // sees every packet.
        prop_assert_eq!(router.count("sink"), Some(packets));
    }

    #[test]
    fn parser_never_panics(config in "\\PC{0,256}") {
        let _ = ClickRouter::compile(&config);
    }

    #[test]
    fn parser_never_panics_on_structured_soup(
        names in proptest::collection::vec("[a-z]{1,6}", 1..8),
        seps in proptest::collection::vec(prop_oneof![
            Just(" :: "), Just(" -> "), Just("; "), Just(" ["), Just("] "), Just("("), Just(")"),
        ], 1..16),
    ) {
        let mut config = String::new();
        for (i, sep) in seps.iter().enumerate() {
            config.push_str(names[i % names.len()].as_str());
            config.push_str(sep);
        }
        let _ = ClickRouter::compile(&config);
    }

    #[test]
    fn queue_depth_is_always_bounded(
        cap in 1usize..64,
        offered in 1u64..128,
    ) {
        let router = ClickRouter::compile(&format!("q :: Queue({cap});")).unwrap();
        for i in 0..offered {
            router.push("q", PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", i as u16, 80).build());
        }
        let depth = router.queue_len("q").unwrap() as u64;
        let drops = router.queue_drops("q").unwrap();
        prop_assert!(depth <= cap as u64);
        prop_assert_eq!(depth + drops, offered, "every packet queued or dropped");
    }

    #[test]
    fn classifier_routing_is_total_over_rule_order(
        boundary in 1024u16..60_000,
        probes in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        // Two complementary rules: below/above a port boundary.
        let hi = u16::MAX;
        let router = ClickRouter::compile(&format!(
            "cls :: Classifier(udp 0-{boundary} low, udp {next}-{hi} high);
             low :: Counter; high :: Counter;
             cls [low] -> low; cls [high] -> high;",
            next = boundary + 1,
        ))
        .unwrap();
        for (i, dport) in probes.iter().enumerate() {
            router.push(
                "cls",
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", i as u16, *dport).build(),
            );
        }
        let low = router.count("low").unwrap();
        let high = router.count("high").unwrap();
        prop_assert_eq!(low + high, probes.len() as u64, "no packet escapes both rules");
        let expected_low = probes.iter().filter(|p| **p <= boundary).count() as u64;
        prop_assert_eq!(low, expected_low);
    }
}
