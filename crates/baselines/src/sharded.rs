//! Sharded variants of the comparator dataplanes.
//!
//! The multi-core benches must compare like-for-like: the same
//! [`ShardSpec`] that drives the NETKIT `ShardedPipeline` also drives
//! these wrappers, which replicate a baseline per worker and steer
//! flows with the identical table-driven index split
//! ([`PacketBatch::shard_split_with`], the same pass `ShardedPipeline`'s
//! dispatcher runs — identity [`BucketMap`] by default, and
//! `set_bucket_map` installs a rebalanced table so skew experiments
//! compare like-for-like too). Whatever scaling the worker pool buys
//! (or costs) is therefore an architecture-independent constant across
//! the three dataplanes, and the measured deltas stay attributable to
//! the component model alone.

use std::fmt;
use std::sync::Arc;

use netkit_kernel::shard::{ShardSpec, WorkerPool};
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_packet::steer::BucketMap;
use netkit_router::routing::RoutingTable;
use parking_lot::RwLock;

use crate::click::{ClickError, ClickRouter};
use crate::monolithic::{ForwarderStats, MonolithicForwarder};

fn partition(pkts: Vec<Packet>, map: &BucketMap) -> Vec<Vec<Packet>> {
    PacketBatch::from_packets(pkts)
        .shard_split_with(map)
        .into_shard_batches()
        .into_iter()
        .map(PacketBatch::into_packets)
        .collect()
}

/// `spec.workers` independent [`ClickRouter`] replicas compiled from one
/// config, fed flow-affinely by a worker pool.
pub struct ShardedClick {
    pool: WorkerPool<Vec<Packet>>,
    replicas: Vec<Arc<ClickRouter>>,
    steering: RwLock<Arc<BucketMap>>,
}

impl ShardedClick {
    /// Compiles `config` once per worker and starts the pool; `entry` is
    /// the element every burst enters through.
    ///
    /// # Errors
    ///
    /// Propagates compile errors (the first replica to fail).
    pub fn compile(config: &str, entry: &str, spec: ShardSpec) -> Result<Self, ClickError> {
        let replicas: Vec<Arc<ClickRouter>> = (0..spec.workers)
            .map(|_| ClickRouter::compile(config).map(Arc::new))
            .collect::<Result<_, _>>()?;
        let worker_replicas = replicas.clone();
        let entry = entry.to_string();
        let pool = WorkerPool::start(spec, move |shard| {
            let replica = Arc::clone(&worker_replicas[shard]);
            let entry = entry.clone();
            Box::new(move |pkts: Vec<Packet>| {
                replica.push_batch(&entry, pkts);
            })
        });
        let workers = pool.workers();
        Ok(Self {
            pool,
            replicas,
            steering: RwLock::new(Arc::new(BucketMap::identity(workers))),
        })
    }

    /// Installs a bucket → shard steering table (identity by default) —
    /// the same table a rebalanced `ShardedPipeline` would run, so skew
    /// benches compare like-for-like.
    ///
    /// # Panics
    ///
    /// Panics if `map` targets a different worker count.
    pub fn set_bucket_map(&self, map: BucketMap) {
        assert_eq!(map.shards(), self.pool.workers(), "shard count mismatch");
        *self.steering.write() = Arc::new(map);
    }

    /// RSS-partitions a burst through the installed table and enqueues
    /// each non-empty slice on its worker.
    pub fn push_batch(&self, pkts: Vec<Packet>) {
        let map = Arc::clone(&self.steering.read());
        for (shard, slice) in partition(pkts, &map).into_iter().enumerate() {
            if !slice.is_empty() {
                let _ = self.pool.submit(shard, slice);
            }
        }
    }

    /// Waits until every enqueued burst has run to completion.
    pub fn flush(&self) {
        self.pool.flush();
    }

    /// Counter value of element `name`, summed over all replicas.
    pub fn count(&self, name: &str) -> Option<u64> {
        self.replicas.iter().map(|r| r.count(name)).sum()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Stops the workers.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl fmt::Debug for ShardedClick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedClick({} replicas)", self.replicas.len())
    }
}

/// `spec.workers` independent [`MonolithicForwarder`] replicas fed
/// flow-affinely by a worker pool; each worker drains the egress queue
/// it just filled, run-to-completion style.
pub struct ShardedMonolithic {
    pool: WorkerPool<Vec<Packet>>,
    replicas: Vec<Arc<MonolithicForwarder>>,
    steering: RwLock<Arc<BucketMap>>,
}

impl ShardedMonolithic {
    /// Builds one forwarder per worker (`make_routes` supplies each
    /// replica's routing table) and starts the pool.
    pub fn new(
        make_routes: impl Fn() -> RoutingTable,
        ports: u16,
        queue_cap: usize,
        spec: ShardSpec,
    ) -> Self {
        let replicas: Vec<Arc<MonolithicForwarder>> = (0..spec.workers)
            .map(|_| Arc::new(MonolithicForwarder::new(make_routes(), ports, queue_cap)))
            .collect();
        let worker_replicas = replicas.clone();
        let pool = WorkerPool::start(spec, move |shard| {
            let replica = Arc::clone(&worker_replicas[shard]);
            Box::new(move |pkts: Vec<Packet>| {
                for port in replica.forward_batch(pkts).into_iter().flatten() {
                    let _ = replica.drain(port);
                }
            })
        });
        let workers = pool.workers();
        Self {
            pool,
            replicas,
            steering: RwLock::new(Arc::new(BucketMap::identity(workers))),
        }
    }

    /// Installs a bucket → shard steering table (identity by default);
    /// see [`ShardedClick::set_bucket_map`].
    ///
    /// # Panics
    ///
    /// Panics if `map` targets a different worker count.
    pub fn set_bucket_map(&self, map: BucketMap) {
        assert_eq!(map.shards(), self.pool.workers(), "shard count mismatch");
        *self.steering.write() = Arc::new(map);
    }

    /// RSS-partitions a burst through the installed table and enqueues
    /// each non-empty slice on its worker.
    pub fn forward_batch(&self, pkts: Vec<Packet>) {
        let map = Arc::clone(&self.steering.read());
        for (shard, slice) in partition(pkts, &map).into_iter().enumerate() {
            if !slice.is_empty() {
                let _ = self.pool.submit(shard, slice);
            }
        }
    }

    /// Waits until every enqueued burst has run to completion.
    pub fn flush(&self) {
        self.pool.flush();
    }

    /// Counters summed over all replicas.
    pub fn stats(&self) -> ForwarderStats {
        let mut total = ForwarderStats::default();
        for r in &self.replicas {
            let s = r.stats();
            total.forwarded += s.forwarded;
            total.malformed += s.malformed;
            total.ttl_expired += s.ttl_expired;
            total.no_route += s.no_route;
            total.queue_full += s.queue_full;
        }
        total
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Stops the workers.
    pub fn shutdown(self) {
        self.pool.shutdown();
    }
}

impl fmt::Debug for ShardedMonolithic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedMonolithic({} replicas)", self.replicas.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;
    use netkit_router::routing::RouteEntry;

    fn burst(n: u16) -> Vec<Packet> {
        (0..n)
            .map(|i| PacketBuilder::udp_v4("192.0.2.1", "10.0.0.9", 3000 + i, 80).build())
            .collect()
    }

    #[test]
    fn sharded_click_counts_all_packets_once() {
        let cfg = "c0 :: Counter;\nsink :: Discard;\nc0 -> sink;\n";
        let click = ShardedClick::compile(cfg, "c0", ShardSpec::new(4)).unwrap();
        assert_eq!(click.workers(), 4);
        click.push_batch(burst(64));
        click.flush();
        assert_eq!(click.count("c0"), Some(64));
        assert_eq!(click.count("sink"), Some(64));
        assert_eq!(click.count("nope"), None);
        click.shutdown();
    }

    #[test]
    fn sharded_click_follows_an_installed_table() {
        use netkit_packet::flow::FlowKey;
        let cfg = "c0 :: Counter;\nsink :: Discard;\nc0 -> sink;\n";
        let click = ShardedClick::compile(cfg, "c0", ShardSpec::new(4)).unwrap();
        let pkts = burst(32);
        let mut map = BucketMap::identity(4);
        for p in &pkts {
            map.set(FlowKey::from_packet(p).unwrap().bucket(), 1);
        }
        click.set_bucket_map(map);
        click.push_batch(pkts);
        click.flush();
        assert_eq!(click.count("sink"), Some(32));
        click.shutdown();
    }

    #[test]
    fn sharded_click_rejects_bad_config() {
        assert!(ShardedClick::compile("garbage", "c0", ShardSpec::single()).is_err());
    }

    #[test]
    fn sharded_monolithic_forwards_everything() {
        let make = || {
            let mut t = RoutingTable::new();
            t.add(
                "10.0.0.0/8",
                RouteEntry {
                    egress: 1,
                    next_hop: None,
                },
            );
            t
        };
        let mono = ShardedMonolithic::new(make, 4, 1024, ShardSpec::new(2));
        mono.forward_batch(burst(48));
        mono.flush();
        let stats = mono.stats();
        assert_eq!(stats.forwarded, 48);
        assert_eq!(stats.no_route, 0);
        mono.shutdown();
    }
}
