//! A hand-coded monolithic IPv4 forwarder: the performance *lower bound*
//! for experiment E6.
//!
//! Everything a Fig-3 pipeline does — protocol recognition, header
//! validation, TTL, route lookup, queueing — in one straight-line
//! function with no component boundaries, no dynamic dispatch, and no
//! reconfiguration of any kind. The gap between this and the
//! component-based router *is* the architecture tax the paper's
//! optimisations (vtable bypass, partial evaluation) aim to claw back.

use std::collections::VecDeque;

use netkit_packet::headers::Ipv4Header;
use netkit_packet::packet::Packet;
use netkit_router::routing::RoutingTable;
use parking_lot::Mutex;

/// Why the forwarder dropped a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Not IPv4, truncated, or bad checksum.
    Malformed,
    /// TTL reached zero.
    TtlExpired,
    /// No route for the destination.
    NoRoute,
    /// The egress queue was full.
    QueueFull,
}

/// Counters kept by the forwarder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForwarderStats {
    /// Packets queued for egress.
    pub forwarded: u64,
    /// Malformed drops.
    pub malformed: u64,
    /// TTL drops.
    pub ttl_expired: u64,
    /// No-route drops.
    pub no_route: u64,
    /// Queue-full drops.
    pub queue_full: u64,
}

/// The monolithic forwarder: one routing table, one bounded queue per
/// egress port, one function.
#[derive(Debug)]
pub struct MonolithicForwarder {
    routes: RoutingTable,
    queues: Vec<Mutex<VecDeque<Packet>>>,
    queue_cap: usize,
    stats: Mutex<ForwarderStats>,
}

impl MonolithicForwarder {
    /// Creates a forwarder with `ports` egress queues of depth
    /// `queue_cap`.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0` or `queue_cap == 0`.
    pub fn new(routes: RoutingTable, ports: u16, queue_cap: usize) -> Self {
        assert!(ports > 0, "need at least one port");
        assert!(queue_cap > 0, "queues must hold at least one packet");
        Self {
            routes,
            queues: (0..ports).map(|_| Mutex::new(VecDeque::new())).collect(),
            queue_cap,
            stats: Mutex::new(ForwarderStats::default()),
        }
    }

    /// The entire data path in one function.
    ///
    /// # Errors
    ///
    /// Returns the [`DropReason`] when the packet is not forwarded.
    pub fn forward(&self, mut pkt: Packet) -> Result<u16, DropReason> {
        // 1. Protocol recognition + validation (parse checks checksum).
        let header = match pkt.ipv4() {
            Ok(h) => h,
            Err(_) => {
                self.stats.lock().malformed += 1;
                return Err(DropReason::Malformed);
            }
        };
        let dst = header.dst;

        // 2. Route lookup (same LPM trie the component router uses, so
        // the comparison isolates *architecture*, not data structures).
        let Some(entry) = self.routes.lookup(dst.into()) else {
            self.stats.lock().no_route += 1;
            return Err(DropReason::NoRoute);
        };
        let egress = entry.egress;
        if egress as usize >= self.queues.len() {
            self.stats.lock().no_route += 1;
            return Err(DropReason::NoRoute);
        }

        // 3. TTL + incremental checksum update.
        let alive = matches!(
            Ipv4Header::decrement_ttl_in_place(pkt.l3_mut()),
            Ok(ttl) if ttl > 0
        );
        if !alive {
            self.stats.lock().ttl_expired += 1;
            return Err(DropReason::TtlExpired);
        }

        // 4. Enqueue for egress.
        let mut queue = self.queues[egress as usize].lock();
        if queue.len() >= self.queue_cap {
            self.stats.lock().queue_full += 1;
            return Err(DropReason::QueueFull);
        }
        queue.push_back(pkt);
        self.stats.lock().forwarded += 1;
        Ok(egress)
    }

    /// The data path over a burst: per-packet results identical to
    /// repeated [`Self::forward`] calls, with the stats lock taken once
    /// per burst instead of once per packet — the monolithic analogue of
    /// the component router's `push_batch`, used by the E6 batch series.
    pub fn forward_batch(
        &self,
        pkts: impl IntoIterator<Item = Packet>,
    ) -> Vec<Result<u16, DropReason>> {
        let mut results = Vec::new();
        let mut delta = ForwarderStats::default();
        for mut pkt in pkts {
            let outcome = (|| {
                let header = match pkt.ipv4() {
                    Ok(h) => h,
                    Err(_) => {
                        delta.malformed += 1;
                        return Err(DropReason::Malformed);
                    }
                };
                let Some(entry) = self.routes.lookup(header.dst.into()) else {
                    delta.no_route += 1;
                    return Err(DropReason::NoRoute);
                };
                let egress = entry.egress;
                if egress as usize >= self.queues.len() {
                    delta.no_route += 1;
                    return Err(DropReason::NoRoute);
                }
                let alive = matches!(
                    Ipv4Header::decrement_ttl_in_place(pkt.l3_mut()),
                    Ok(ttl) if ttl > 0
                );
                if !alive {
                    delta.ttl_expired += 1;
                    return Err(DropReason::TtlExpired);
                }
                let mut queue = self.queues[egress as usize].lock();
                if queue.len() >= self.queue_cap {
                    delta.queue_full += 1;
                    return Err(DropReason::QueueFull);
                }
                queue.push_back(pkt);
                delta.forwarded += 1;
                Ok(egress)
            })();
            results.push(outcome);
        }
        let mut stats = self.stats.lock();
        stats.forwarded += delta.forwarded;
        stats.malformed += delta.malformed;
        stats.ttl_expired += delta.ttl_expired;
        stats.no_route += delta.no_route;
        stats.queue_full += delta.queue_full;
        results
    }

    /// Drains one packet from an egress queue.
    pub fn drain(&self, port: u16) -> Option<Packet> {
        self.queues.get(port as usize)?.lock().pop_front()
    }

    /// Counters so far.
    pub fn stats(&self) -> ForwarderStats {
        *self.stats.lock()
    }

    /// The routing table (for sizing experiments).
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }
}

/// Why the stateful edge dropped a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDropReason {
    /// Not a parseable IPv4 UDP/TCP flow.
    NotAFlow,
    /// The flow's byte meter crossed the guard threshold.
    RateLimited,
    /// The connection table was full and the flow was new.
    TableFull,
    /// The NAT external-port pool had no free slot.
    Exhausted,
}

/// Counters kept by [`MonolithicStatefulEdge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Packets translated and delivered.
    pub delivered: u64,
    /// Non-flow drops.
    pub not_a_flow: u64,
    /// Guard drops.
    pub rate_limited: u64,
    /// Connection-table drops.
    pub table_full: u64,
    /// NAT-pool drops.
    pub exhausted: u64,
}

/// The stateful edge — guard, connection tracking, source NAT — as one
/// straight-line function: the performance lower bound the
/// component-based edge (and its declarative-description build) is
/// benchmarked against.
///
/// Same simplifications as the Click baseline's stateful trio, and the
/// same defining limitation: plain hash maps, a sequential
/// **never-reclaimed** port pool, no teardown, no timers, no
/// reconfiguration. The NAT rewrite reuses
/// [`rewrite_ipv4_endpoint`](netkit_router::flow::rewrite_ipv4_endpoint)
/// so checksum arithmetic is identical across all three contenders.
#[derive(Debug)]
pub struct MonolithicStatefulEdge {
    byte_threshold: u64,
    conn_capacity: usize,
    external_ip: std::net::Ipv4Addr,
    port_base: u16,
    pool: usize,
    state: Mutex<EdgeState>,
}

#[derive(Debug, Default)]
struct EdgeState {
    meters: std::collections::HashMap<netkit_packet::flow::FlowKey, u64>,
    flows: std::collections::HashMap<netkit_packet::flow::FlowKey, u64>,
    bindings: std::collections::HashMap<netkit_packet::flow::FlowKey, u16>,
    next_port: usize,
    stats: EdgeStats,
}

impl MonolithicStatefulEdge {
    /// Creates an edge with the given guard threshold, connection-table
    /// bound, and NAT pool (`port_base .. port_base + pool`).
    ///
    /// # Panics
    ///
    /// Panics if the port pool does not fit in `u16`.
    pub fn new(
        byte_threshold: u64,
        conn_capacity: usize,
        external_ip: std::net::Ipv4Addr,
        port_base: u16,
        pool: usize,
    ) -> Self {
        assert!(
            port_base as usize + pool <= u16::MAX as usize + 1,
            "port pool must fit in u16"
        );
        Self {
            byte_threshold,
            conn_capacity,
            external_ip,
            port_base,
            pool,
            state: Mutex::new(EdgeState::default()),
        }
    }

    /// The entire stateful data path in one function: meter → track →
    /// translate. Returns the allocated external port on delivery.
    ///
    /// # Errors
    ///
    /// Returns the [`EdgeDropReason`] when the packet is not delivered.
    pub fn process(&self, pkt: &mut Packet) -> Result<u16, EdgeDropReason> {
        use netkit_packet::flow::FlowKey;
        use netkit_packet::headers::proto;
        use netkit_router::flow::{rewrite_ipv4_endpoint, RewriteSide};

        let mut st = self.state.lock();
        // 1. Flow recognition.
        let key = match FlowKey::from_packet(pkt) {
            Some(k) if k.protocol == proto::UDP || k.protocol == proto::TCP => k.canonical(),
            _ => {
                st.stats.not_a_flow += 1;
                return Err(EdgeDropReason::NotAFlow);
            }
        };
        // 2. Guard: per-flow byte meter.
        let bytes = st.meters.entry(key).or_insert(0);
        *bytes += pkt.data().len() as u64;
        if *bytes > self.byte_threshold {
            st.stats.rate_limited += 1;
            return Err(EdgeDropReason::RateLimited);
        }
        // 3. Connection tracking (bounded; new flows past the bound drop).
        if let Some(pkts) = st.flows.get_mut(&key) {
            *pkts += 1;
        } else if st.flows.len() < self.conn_capacity {
            st.flows.insert(key, 1);
        } else {
            st.stats.table_full += 1;
            return Err(EdgeDropReason::TableFull);
        }
        // 4. Source NAT with a sequential pool.
        let ext_port = match st.bindings.get(&key) {
            Some(&p) => p,
            None => {
                if st.next_port >= self.pool {
                    st.stats.exhausted += 1;
                    return Err(EdgeDropReason::Exhausted);
                }
                let p = self.port_base + st.next_port as u16;
                st.next_port += 1;
                st.bindings.insert(key, p);
                p
            }
        };
        rewrite_ipv4_endpoint(pkt, RewriteSide::Src, self.external_ip, ext_port);
        st.stats.delivered += 1;
        Ok(ext_port)
    }

    /// Counters so far.
    pub fn stats(&self) -> EdgeStats {
        self.state.lock().stats
    }

    /// External ports allocated (never reclaimed).
    pub fn ports_in_use(&self) -> usize {
        self.state.lock().next_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;
    use netkit_router::routing::RouteEntry;

    fn forwarder() -> MonolithicForwarder {
        let mut routes = RoutingTable::new();
        routes.add(
            "10.1.0.0/16",
            RouteEntry {
                egress: 0,
                next_hop: None,
            },
        );
        routes.add(
            "10.2.0.0/16",
            RouteEntry {
                egress: 1,
                next_hop: None,
            },
        );
        routes.add(
            "10.2.3.0/24",
            RouteEntry {
                egress: 2,
                next_hop: None,
            },
        );
        MonolithicForwarder::new(routes, 3, 16)
    }

    #[test]
    fn forwards_by_longest_prefix() {
        let f = forwarder();
        assert_eq!(
            f.forward(PacketBuilder::udp_v4("10.0.0.1", "10.1.5.5", 1, 2).build()),
            Ok(0)
        );
        assert_eq!(
            f.forward(PacketBuilder::udp_v4("10.0.0.1", "10.2.9.9", 1, 2).build()),
            Ok(1)
        );
        assert_eq!(
            f.forward(PacketBuilder::udp_v4("10.0.0.1", "10.2.3.9", 1, 2).build()),
            Ok(2),
            "the /24 beats the /16"
        );
        assert_eq!(f.stats().forwarded, 3);
        assert!(f.drain(2).is_some());
    }

    #[test]
    fn drops_have_reasons() {
        let f = forwarder();
        assert_eq!(
            f.forward(PacketBuilder::udp_v4("10.0.0.1", "172.16.0.1", 1, 2).build()),
            Err(DropReason::NoRoute)
        );
        assert_eq!(
            f.forward(
                PacketBuilder::udp_v4("10.0.0.1", "10.1.0.1", 1, 2)
                    .ttl(1)
                    .build()
            ),
            Err(DropReason::TtlExpired)
        );
        let mut junk = Packet::from_slice(&[0u8; 10]);
        junk.data_mut()[0] = 0x45;
        assert_eq!(f.forward(junk), Err(DropReason::Malformed));
        let s = f.stats();
        assert_eq!((s.no_route, s.ttl_expired, s.malformed), (1, 1, 1));
    }

    #[test]
    fn queue_full_backpressure() {
        let mut routes = RoutingTable::new();
        routes.add(
            "10.0.0.0/8",
            RouteEntry {
                egress: 0,
                next_hop: None,
            },
        );
        let f = MonolithicForwarder::new(routes, 1, 2);
        let pkt = || PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        assert!(f.forward(pkt()).is_ok());
        assert!(f.forward(pkt()).is_ok());
        assert_eq!(f.forward(pkt()), Err(DropReason::QueueFull));
        f.drain(0).unwrap();
        assert!(f.forward(pkt()).is_ok(), "drained capacity is reusable");
    }

    #[test]
    fn stateful_edge_straight_line_path() {
        let edge =
            MonolithicStatefulEdge::new(1 << 20, 64, "192.0.2.1".parse().unwrap(), 40_000, 2);
        let mut a = PacketBuilder::udp_v4("10.0.0.1", "203.0.113.9", 1001, 80).build();
        let mut b = PacketBuilder::udp_v4("10.0.0.2", "203.0.113.9", 1002, 80).build();
        let mut c = PacketBuilder::udp_v4("10.0.0.3", "203.0.113.9", 1003, 80).build();
        let pa = edge.process(&mut a).unwrap();
        assert!((40_000..40_002).contains(&pa));
        assert_eq!(
            a.ipv4().unwrap().src,
            "192.0.2.1".parse::<std::net::Ipv4Addr>().unwrap()
        );
        edge.process(&mut b).unwrap();
        assert_eq!(edge.process(&mut c), Err(EdgeDropReason::Exhausted));
        assert_eq!(edge.ports_in_use(), 2);
        let s = edge.stats();
        assert_eq!((s.delivered, s.exhausted), (2, 1));
        // Repeat traffic on a bound flow reuses its port.
        let mut a2 = PacketBuilder::udp_v4("10.0.0.1", "203.0.113.9", 1001, 80).build();
        assert_eq!(edge.process(&mut a2), Ok(pa));
    }

    #[test]
    fn ttl_decrement_is_visible_downstream() {
        let f = forwarder();
        f.forward(
            PacketBuilder::udp_v4("10.0.0.1", "10.1.0.1", 1, 2)
                .ttl(9)
                .build(),
        )
        .unwrap();
        let out = f.drain(0).unwrap();
        assert_eq!(out.ipv4().unwrap().ttl, 8);
    }
}
