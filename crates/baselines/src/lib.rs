//! # netkit-baselines — the paper's comparators
//!
//! Paper §6 positions the Router CF against two architectural extremes,
//! both reproduced here for the forwarding experiment (E6):
//!
//! * [`click`] — a **Click-like statically-configured router**: a config
//!   language compiled once into an index-dispatched element graph.
//!   "Flexible support for the configuration (but not reconfiguration)"
//!   — fast, but frozen after compile.
//! * [`monolithic`] — a **hand-coded single-function forwarder**: the
//!   lower bound with no architecture at all.
//!
//! The NETKIT router (crate `netkit-router`) sits between the two:
//! component indirection buys run-time admission, introspection,
//! interception, and hot reconfiguration; the benches measure what that
//! costs relative to these baselines.

//!
//! [`sharded`] replicates either baseline across the workers of a
//! `netkit_kernel::shard::ShardSpec` with the same RSS flow steering the
//! NETKIT sharded pipeline uses, so multi-core comparisons stay
//! apples-to-apples.

#![warn(missing_docs)]

pub mod click;
pub mod monolithic;
pub mod sharded;

pub use click::{ClickError, ClickRouter};
pub use monolithic::{
    DropReason, EdgeDropReason, EdgeStats, ForwarderStats, MonolithicForwarder,
    MonolithicStatefulEdge,
};
pub use sharded::{ShardedClick, ShardedMonolithic};
