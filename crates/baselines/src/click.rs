//! A Click-like statically-configured router (paper §6: "The Click
//! modular router employs a fine grained C++-based component model with
//! flexible support for the *configuration* (but not *reconfiguration*)
//! of packet scheduling, route lookup and queue drop modules").
//!
//! This baseline reproduces exactly that axis: a declarative config
//! language compiled **once** into a flat element graph dispatched by
//! index — no interface tables, no receptacles, no meta-models, and *no
//! way to change the graph after [`ClickRouter::compile`]*. It is the
//! "configuration but not reconfiguration" comparator for experiment E6.
//!
//! ## Config language
//!
//! ```text
//! // declarations                 // connections
//! src :: Counter;                 src -> cls;
//! cls :: Classifier(udp 5000-5999 voice, any bulk);
//! voice :: Queue(64);             cls [voice] -> voice;
//! bulk :: Queue(256);             cls [bulk] -> bulk;
//! sink :: Discard;                voice -> sink; bulk -> sink;
//! ```
//!
//! Classes: `Counter`, `Discard`, `Queue(cap)`, `DecTtl`,
//! `Classifier(rule out, …)` (rules: `udp`, `tcp`, `dscp N`,
//! `dst A.B.C.D/L`, `dport LO-HI`, `any`), `Tee(n)`, and the stateful
//! edge trio mirroring `netkit_router::flow` —
//! `ConnTracker(capacity)` (bounded flow table, new flows beyond the
//! bound drop), `Guard(byte_threshold)` (per-flow byte meter, heavy
//! flows drop), `Nat44(ext_ip, port_base, pool)` (source NAT with a
//! sequential, **never-reclaimed** port pool: the baseline has no
//! teardown, which is exactly the reconfigurability gap the component
//! router's RST/sweep reclamation closes). The NAT rewrites with the
//! same incremental-checksum helper as the component element
//! ([`rewrite_ipv4_endpoint`]), so the stateful-edge benches compare
//! dispatch and bookkeeping — not checksum arithmetic.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::net::Ipv4Addr;

use netkit_packet::flow::FlowKey;
use netkit_packet::headers::{proto, Ipv4Header};
use netkit_packet::packet::Packet;
use netkit_router::flow::{rewrite_ipv4_endpoint, RewriteSide};
use parking_lot::Mutex;

/// A parse/compile failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClickError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ClickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ClickError {}

fn err(line: usize, message: impl Into<String>) -> ClickError {
    ClickError {
        line,
        message: message.into(),
    }
}

/// One classifier rule: pattern → named output.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Rule {
    protocol: Option<u8>,
    dscp: Option<u8>,
    dst: Option<(Ipv4Addr, u8)>,
    dport: Option<(u16, u16)>,
    output: String,
}

impl Rule {
    fn matches(&self, flow: &FlowKey, dscp: u8) -> bool {
        if let Some(p) = self.protocol {
            if flow.protocol != p {
                return false;
            }
        }
        if let Some(d) = self.dscp {
            if d != dscp {
                return false;
            }
        }
        if let Some((net, len)) = self.dst {
            let std::net::IpAddr::V4(v4) = flow.dst else {
                return false;
            };
            let mask = if len == 0 {
                0
            } else {
                !(u32::MAX >> len.min(32))
            };
            if (u32::from(v4) & mask) != (u32::from(net) & mask) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.dport {
            if !(lo..=hi).contains(&flow.dst_port) {
                return false;
            }
        }
        true
    }
}

/// Element behaviours (static dispatch — the whole point of the
/// baseline).
#[derive(Debug)]
enum ElementKind {
    Counter {
        count: Mutex<u64>,
    },
    Discard {
        count: Mutex<u64>,
    },
    Queue {
        cap: usize,
        buf: Mutex<VecDeque<Packet>>,
        drops: Mutex<u64>,
    },
    DecTtl {
        expired: Mutex<u64>,
    },
    Classifier {
        rules: Vec<Rule>,
    },
    Tee {
        n: usize,
    },
    ConnTracker {
        capacity: usize,
        flows: Mutex<HashMap<FlowKey, u64>>,
        dropped: Mutex<u64>,
    },
    Guard {
        byte_threshold: u64,
        meters: Mutex<HashMap<FlowKey, u64>>,
        dropped: Mutex<u64>,
    },
    Nat44 {
        external_ip: Ipv4Addr,
        port_base: u16,
        pool: usize,
        bindings: Mutex<HashMap<FlowKey, u16>>,
        next: Mutex<usize>,
        dropped: Mutex<u64>,
    },
}

/// A compiled element.
#[derive(Debug)]
struct Element {
    name: String,
    kind: ElementKind,
    /// Outgoing edges: `(label, element index)`. The unlabeled edge is
    /// `""`.
    out: Vec<(String, usize)>,
}

impl Element {
    fn first_out(&self) -> Option<usize> {
        self.out.first().map(|(_, i)| *i)
    }

    fn labelled_out(&self, label: &str) -> Option<usize> {
        self.out.iter().find(|(l, _)| l == label).map(|(_, i)| *i)
    }
}

/// A compiled, immutable Click-style router.
///
/// ```
/// use netkit_baselines::click::ClickRouter;
/// use netkit_packet::packet::PacketBuilder;
///
/// let router = ClickRouter::compile(
///     "in :: DecTtl; q :: Queue(8); sink :: Discard;
///      in -> q; q -> sink;",
/// )?;
/// router.push("in", PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build());
/// assert_eq!(router.queue_len("q").unwrap(), 1);
/// # Ok::<(), netkit_baselines::click::ClickError>(())
/// ```
#[derive(Debug)]
pub struct ClickRouter {
    elements: Vec<Element>,
    by_name: HashMap<String, usize>,
}

impl ClickRouter {
    /// Parses and compiles a configuration. The graph is immutable
    /// afterwards — reconfiguration requires a full recompile (the
    /// baseline's defining limitation).
    ///
    /// # Errors
    ///
    /// Returns a [`ClickError`] naming the offending line for unknown
    /// classes, bad arguments, duplicate declarations, unknown element or
    /// output references, or dangling required outputs.
    pub fn compile(config: &str) -> Result<Self, ClickError> {
        let mut elements: Vec<Element> = Vec::new();
        let mut by_name: HashMap<String, usize> = HashMap::new();
        let mut connections: Vec<(usize, String, String, String)> = Vec::new(); // (line, src, label, dst)

        for (line_no, raw_line) in config.lines().enumerate() {
            let line_no = line_no + 1;
            let line = match raw_line.find("//") {
                Some(at) => &raw_line[..at],
                None => raw_line,
            };
            for stmt in line.split(';') {
                let stmt = stmt.trim();
                if stmt.is_empty() {
                    continue;
                }
                if let Some((name, decl)) = stmt.split_once("::") {
                    let name = name.trim();
                    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        return Err(err(line_no, format!("bad element name `{name}`")));
                    }
                    if by_name.contains_key(name) {
                        return Err(err(line_no, format!("duplicate element `{name}`")));
                    }
                    let kind = Self::parse_class(line_no, decl.trim())?;
                    by_name.insert(name.to_string(), elements.len());
                    elements.push(Element {
                        name: name.to_string(),
                        kind,
                        out: Vec::new(),
                    });
                } else if stmt.contains("->") {
                    let parts: Vec<&str> = stmt.split("->").map(str::trim).collect();
                    if parts.len() < 2 {
                        return Err(err(line_no, format!("bad connection `{stmt}`")));
                    }
                    // Support chains: a -> b -> c.
                    for w in parts.windows(2) {
                        let (src, label) = match w[0].split_once('[') {
                            Some((s, rest)) => {
                                let label = rest
                                    .strip_suffix(']')
                                    .ok_or_else(|| err(line_no, "unterminated output label"))?;
                                (s.trim(), label.trim().to_string())
                            }
                            None => (w[0], String::new()),
                        };
                        // `cls [voice] -> q` puts the label on the source
                        // side; `w[0]` may itself be `cls [voice]`. The
                        // destination side must be a plain name (possibly
                        // with its own label for the *next* window, which
                        // we strip when it becomes a source).
                        let dst = match w[1].split_once('[') {
                            Some((d, _)) => d.trim(),
                            None => w[1],
                        };
                        connections.push((line_no, src.to_string(), label, dst.to_string()));
                    }
                } else {
                    return Err(err(line_no, format!("unparseable statement `{stmt}`")));
                }
            }
        }

        for (line_no, src, label, dst) in connections {
            let &src_idx = by_name
                .get(&src)
                .ok_or_else(|| err(line_no, format!("unknown element `{src}`")))?;
            let &dst_idx = by_name
                .get(&dst)
                .ok_or_else(|| err(line_no, format!("unknown element `{dst}`")))?;
            // Classifier outputs must name declared rules.
            if let ElementKind::Classifier { rules } = &elements[src_idx].kind {
                if !label.is_empty() && !rules.iter().any(|r| r.output == label) {
                    return Err(err(
                        line_no,
                        format!("classifier `{src}` has no output `{label}`"),
                    ));
                }
            }
            elements[src_idx].out.push((label, dst_idx));
        }

        // Static completeness check: classifiers must have every rule
        // output connected (Click refuses to start with dangling ports).
        for el in &elements {
            if let ElementKind::Classifier { rules } = &el.kind {
                for rule in rules {
                    if el.labelled_out(&rule.output).is_none() {
                        return Err(err(
                            0,
                            format!(
                                "classifier `{}` output `{}` is not connected",
                                el.name, rule.output
                            ),
                        ));
                    }
                }
            }
        }

        Ok(Self { elements, by_name })
    }

    fn parse_class(line: usize, decl: &str) -> Result<ElementKind, ClickError> {
        let (class, args) = match decl.find('(') {
            Some(at) => {
                let class = decl[..at].trim();
                let args = decl[at + 1..]
                    .strip_suffix(')')
                    .ok_or_else(|| err(line, "unterminated argument list"))?;
                (class, args.trim())
            }
            None => (decl.trim(), ""),
        };
        match class {
            "Counter" => Ok(ElementKind::Counter {
                count: Mutex::new(0),
            }),
            "Discard" => Ok(ElementKind::Discard {
                count: Mutex::new(0),
            }),
            "DecTtl" => Ok(ElementKind::DecTtl {
                expired: Mutex::new(0),
            }),
            "Queue" => {
                let cap: usize = if args.is_empty() {
                    64
                } else {
                    args.parse()
                        .map_err(|_| err(line, format!("bad queue size `{args}`")))?
                };
                if cap == 0 {
                    return Err(err(line, "queue capacity must be positive"));
                }
                Ok(ElementKind::Queue {
                    cap,
                    buf: Mutex::new(VecDeque::new()),
                    drops: Mutex::new(0),
                })
            }
            "Tee" => {
                let n: usize = if args.is_empty() {
                    2
                } else {
                    args.parse()
                        .map_err(|_| err(line, format!("bad tee count `{args}`")))?
                };
                Ok(ElementKind::Tee { n })
            }
            "Classifier" => {
                if args.is_empty() {
                    return Err(err(line, "classifier needs at least one rule"));
                }
                let mut rules = Vec::new();
                for rule_src in args.split(',') {
                    rules.push(Self::parse_rule(line, rule_src.trim())?);
                }
                Ok(ElementKind::Classifier { rules })
            }
            "ConnTracker" => {
                let capacity: usize = if args.is_empty() {
                    4_096
                } else {
                    args.parse()
                        .map_err(|_| err(line, format!("bad conntrack capacity `{args}`")))?
                };
                if capacity == 0 {
                    return Err(err(line, "conntrack capacity must be positive"));
                }
                Ok(ElementKind::ConnTracker {
                    capacity,
                    flows: Mutex::new(HashMap::new()),
                    dropped: Mutex::new(0),
                })
            }
            "Guard" => {
                let byte_threshold: u64 = if args.is_empty() {
                    1 << 20
                } else {
                    args.parse()
                        .map_err(|_| err(line, format!("bad guard threshold `{args}`")))?
                };
                Ok(ElementKind::Guard {
                    byte_threshold,
                    meters: Mutex::new(HashMap::new()),
                    dropped: Mutex::new(0),
                })
            }
            "Nat44" => {
                let parts: Vec<&str> = if args.is_empty() {
                    Vec::new()
                } else {
                    args.split(',').map(str::trim).collect()
                };
                if !parts.is_empty() && parts.len() != 3 {
                    return Err(err(
                        line,
                        "Nat44 takes (ext_ip, port_base, pool) or nothing",
                    ));
                }
                let external_ip: Ipv4Addr =
                    parts.first().map_or(Ok(Ipv4Addr::new(192, 0, 2, 1)), |s| {
                        s.parse()
                            .map_err(|_| err(line, format!("bad NAT external ip `{s}`")))
                    })?;
                let port_base: u16 = parts.get(1).map_or(Ok(10_000), |s| {
                    s.parse()
                        .map_err(|_| err(line, format!("bad NAT port base `{s}`")))
                })?;
                let pool: usize = parts.get(2).map_or(Ok(4_096), |s| {
                    s.parse()
                        .map_err(|_| err(line, format!("bad NAT pool size `{s}`")))
                })?;
                if port_base as usize + pool > u16::MAX as usize + 1 {
                    return Err(err(line, "NAT port pool must fit in u16"));
                }
                Ok(ElementKind::Nat44 {
                    external_ip,
                    port_base,
                    pool,
                    bindings: Mutex::new(HashMap::new()),
                    next: Mutex::new(0),
                    dropped: Mutex::new(0),
                })
            }
            other => Err(err(line, format!("unknown element class `{other}`"))),
        }
    }

    fn parse_rule(line: usize, src: &str) -> Result<Rule, ClickError> {
        let tokens: Vec<&str> = src.split_whitespace().collect();
        if tokens.len() < 2 && tokens != ["any"] {
            // last token is the output name
        }
        if tokens.is_empty() {
            return Err(err(line, "empty classifier rule"));
        }
        let output = (*tokens.last().expect("non-empty")).to_string();
        let mut rule = Rule {
            protocol: None,
            dscp: None,
            dst: None,
            dport: None,
            output,
        };
        let mut i = 0;
        while i + 1 < tokens.len() {
            match tokens[i] {
                "udp" => rule.protocol = Some(proto::UDP),
                "tcp" => rule.protocol = Some(proto::TCP),
                "any" => {}
                "dscp" => {
                    i += 1;
                    if i + 1 >= tokens.len() {
                        return Err(err(line, "dscp needs a value"));
                    }
                    rule.dscp = Some(
                        tokens[i]
                            .parse()
                            .map_err(|_| err(line, format!("bad dscp `{}`", tokens[i])))?,
                    );
                }
                "dst" => {
                    i += 1;
                    if i + 1 >= tokens.len() {
                        return Err(err(line, "dst needs a prefix"));
                    }
                    let (addr, len) = tokens[i]
                        .split_once('/')
                        .ok_or_else(|| err(line, "dst prefix must be A.B.C.D/L"))?;
                    rule.dst = Some((
                        addr.parse()
                            .map_err(|_| err(line, format!("bad address `{addr}`")))?,
                        len.parse()
                            .map_err(|_| err(line, format!("bad prefix len `{len}`")))?,
                    ));
                }
                tok if tok.contains('-') && tok != "-" => {
                    let (lo, hi) = tok.split_once('-').expect("checked");
                    rule.dport = Some((
                        lo.parse()
                            .map_err(|_| err(line, format!("bad port `{lo}`")))?,
                        hi.parse()
                            .map_err(|_| err(line, format!("bad port `{hi}`")))?,
                    ));
                }
                other => return Err(err(line, format!("unknown rule token `{other}`"))),
            }
            i += 1;
        }
        Ok(rule)
    }

    /// Index of the named element.
    pub fn element_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of compiled elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Pushes a packet into the named element and walks the static graph
    /// to completion (queues absorb; discard terminates).
    ///
    /// # Panics
    ///
    /// Panics on an unknown entry element (a config/test bug, not a
    /// run-time input).
    pub fn push(&self, entry: &str, pkt: Packet) {
        let idx = *self
            .by_name
            .get(entry)
            .unwrap_or_else(|| panic!("no element `{entry}`"));
        self.run(idx, pkt);
    }

    /// Pushes a burst of packets into the named element: the entry is
    /// resolved once and each packet then walks the static graph. This is
    /// the baseline's analogue of the component router's `push_batch`,
    /// keeping the E6 batch-size series apples-to-apples.
    ///
    /// # Panics
    ///
    /// Panics on an unknown entry element.
    pub fn push_batch(&self, entry: &str, pkts: impl IntoIterator<Item = Packet>) {
        let idx = *self
            .by_name
            .get(entry)
            .unwrap_or_else(|| panic!("no element `{entry}`"));
        for pkt in pkts {
            self.run(idx, pkt);
        }
    }

    fn run(&self, mut idx: usize, mut pkt: Packet) {
        loop {
            let el = &self.elements[idx];
            match &el.kind {
                ElementKind::Counter { count } => {
                    *count.lock() += 1;
                    match el.first_out() {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
                ElementKind::Discard { count } => {
                    *count.lock() += 1;
                    return;
                }
                ElementKind::Queue { cap, buf, drops } => {
                    let mut buf = buf.lock();
                    if buf.len() >= *cap {
                        *drops.lock() += 1;
                    } else {
                        buf.push_back(pkt);
                    }
                    return;
                }
                ElementKind::DecTtl { expired } => {
                    let alive = matches!(
                        Ipv4Header::decrement_ttl_in_place(pkt.l3_mut()),
                        Ok(ttl) if ttl > 0
                    );
                    if !alive {
                        *expired.lock() += 1;
                        return;
                    }
                    match el.first_out() {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
                ElementKind::Classifier { rules } => {
                    let dscp = pkt.ipv4().map(|ip| ip.dscp).unwrap_or(0);
                    let Some(flow) = FlowKey::from_packet(&pkt) else {
                        return;
                    };
                    let Some(rule) = rules.iter().find(|r| r.matches(&flow, dscp)) else {
                        return; // unmatched: silently dropped (Click's default port absent)
                    };
                    match el.labelled_out(&rule.output) {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
                ElementKind::Tee { n } => {
                    let copies = el.out.iter().take(*n);
                    let mut targets: Vec<usize> = copies.map(|(_, i)| *i).collect();
                    let Some(last) = targets.pop() else { return };
                    for t in targets {
                        self.run(t, pkt.clone());
                    }
                    idx = last;
                }
                ElementKind::ConnTracker {
                    capacity,
                    flows,
                    dropped,
                } => {
                    if let Some(key) = FlowKey::from_packet(&pkt) {
                        let mut flows = flows.lock();
                        let key = key.canonical();
                        if let Some(pkts) = flows.get_mut(&key) {
                            *pkts += 1;
                        } else if flows.len() < *capacity {
                            flows.insert(key, 1);
                        } else {
                            *dropped.lock() += 1;
                            return;
                        }
                    }
                    match el.first_out() {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
                ElementKind::Guard {
                    byte_threshold,
                    meters,
                    dropped,
                } => {
                    if let Some(key) = FlowKey::from_packet(&pkt) {
                        let mut meters = meters.lock();
                        let bytes = meters.entry(key.canonical()).or_insert(0);
                        *bytes += pkt.data().len() as u64;
                        if *bytes > *byte_threshold {
                            *dropped.lock() += 1;
                            return;
                        }
                    }
                    match el.first_out() {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
                ElementKind::Nat44 {
                    external_ip,
                    port_base,
                    pool,
                    bindings,
                    next,
                    dropped,
                } => {
                    let translatable = FlowKey::from_packet(&pkt).filter(|k| {
                        matches!(k.dst, std::net::IpAddr::V4(d) if d != *external_ip)
                            && (k.protocol == proto::UDP || k.protocol == proto::TCP)
                    });
                    if let Some(key) = translatable {
                        let mut bindings = bindings.lock();
                        let ext_port = match bindings.get(&key.canonical()) {
                            Some(&p) => p,
                            None => {
                                let mut cursor = next.lock();
                                if *cursor >= *pool {
                                    *dropped.lock() += 1;
                                    return;
                                }
                                let p = port_base + *cursor as u16;
                                *cursor += 1;
                                bindings.insert(key.canonical(), p);
                                p
                            }
                        };
                        rewrite_ipv4_endpoint(&mut pkt, RewriteSide::Src, *external_ip, ext_port);
                    }
                    match el.first_out() {
                        Some(next) => idx = next,
                        None => return,
                    }
                }
            }
        }
    }

    /// Pulls a packet from the named queue.
    pub fn pull(&self, queue: &str) -> Option<Packet> {
        let idx = self.by_name.get(queue)?;
        match &self.elements[*idx].kind {
            ElementKind::Queue { buf, .. } => buf.lock().pop_front(),
            _ => None,
        }
    }

    /// Packets counted by a `Counter` or `Discard` element.
    pub fn count(&self, name: &str) -> Option<u64> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::Counter { count } => Some(*count.lock()),
            ElementKind::Discard { count } => Some(*count.lock()),
            _ => None,
        }
    }

    /// Current depth of a `Queue` element.
    pub fn queue_len(&self, name: &str) -> Option<usize> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::Queue { buf, .. } => Some(buf.lock().len()),
            _ => None,
        }
    }

    /// Drops recorded by a `Queue` element.
    pub fn queue_drops(&self, name: &str) -> Option<u64> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::Queue { drops, .. } => Some(*drops.lock()),
            _ => None,
        }
    }

    /// Packets dropped by a stateful element: table-full for
    /// `ConnTracker`, over-threshold for `Guard`, pool-exhausted for
    /// `Nat44`.
    pub fn stateful_drops(&self, name: &str) -> Option<u64> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::ConnTracker { dropped, .. }
            | ElementKind::Guard { dropped, .. }
            | ElementKind::Nat44 { dropped, .. } => Some(*dropped.lock()),
            _ => None,
        }
    }

    /// Live flow count of a `ConnTracker` element.
    pub fn tracked_flows(&self, name: &str) -> Option<usize> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::ConnTracker { flows, .. } => Some(flows.lock().len()),
            _ => None,
        }
    }

    /// External ports allocated by a `Nat44` element (never reclaimed —
    /// the baseline's defining limitation).
    pub fn nat_ports_in_use(&self, name: &str) -> Option<usize> {
        let idx = self.by_name.get(name)?;
        match &self.elements[*idx].kind {
            ElementKind::Nat44 { next, .. } => Some(*next.lock()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    fn udp(dport: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 4000, dport).build()
    }

    #[test]
    fn compile_and_run_a_diffserv_path() {
        let router = ClickRouter::compile(
            "in :: Counter;
             cls :: Classifier(udp 5000-5999 voice, any bulk);
             voice :: Queue(4); bulk :: Queue(4); sink :: Discard;
             in -> cls; cls [voice] -> voice; cls [bulk] -> bulk;",
        )
        .unwrap();
        router.push("in", udp(5500));
        router.push("in", udp(80));
        assert_eq!(router.count("in"), Some(2));
        assert_eq!(router.queue_len("voice"), Some(1));
        assert_eq!(router.queue_len("bulk"), Some(1));
        assert!(router.pull("voice").is_some());
        assert!(router.pull("voice").is_none());
    }

    #[test]
    fn chains_compile() {
        let router = ClickRouter::compile(
            "a :: Counter; b :: DecTtl; c :: Queue(8);
             a -> b -> c;",
        )
        .unwrap();
        router.push("a", udp(1));
        assert_eq!(router.queue_len("c"), Some(1));
    }

    #[test]
    fn stateful_edge_chain_translates_and_exhausts() {
        let router = ClickRouter::compile(
            "guard :: Guard(1000000);
             ct :: ConnTracker(64);
             nat :: Nat44(192.0.2.1, 40000, 2);
             sink :: Discard;
             guard -> ct -> nat -> sink;",
        )
        .unwrap();
        for dport in [81, 82, 83] {
            router.push("guard", udp(dport));
        }
        assert_eq!(router.tracked_flows("ct"), Some(3));
        assert_eq!(router.nat_ports_in_use("nat"), Some(2));
        assert_eq!(
            router.stateful_drops("nat"),
            Some(1),
            "pool of 2: third flow drops"
        );
        assert_eq!(router.count("sink"), Some(2));
    }

    #[test]
    fn guard_drops_heavy_flows() {
        let router = ClickRouter::compile("g :: Guard(100); sink :: Discard; g -> sink;").unwrap();
        for _ in 0..4 {
            router.push("g", udp(9)); // ~46-byte frames: the third crosses 100 bytes
        }
        assert!(router.stateful_drops("g").unwrap() >= 1);
        assert!(router.count("sink").unwrap() < 4);
    }

    #[test]
    fn queue_overflow_drops() {
        let router = ClickRouter::compile("q :: Queue(2);").unwrap();
        for _ in 0..3 {
            router.push("q", udp(1));
        }
        assert_eq!(router.queue_len("q"), Some(2));
        assert_eq!(router.queue_drops("q"), Some(1));
    }

    #[test]
    fn dec_ttl_drops_expired() {
        let router = ClickRouter::compile("t :: DecTtl; s :: Discard; t -> s;").unwrap();
        router.push(
            "t",
            PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                .ttl(1)
                .build(),
        );
        router.push(
            "t",
            PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
                .ttl(64)
                .build(),
        );
        assert_eq!(router.count("s"), Some(1), "only the live packet survives");
    }

    #[test]
    fn tee_duplicates() {
        let router =
            ClickRouter::compile("t :: Tee(2); a :: Counter; b :: Counter; t -> a; t -> b;")
                .unwrap();
        router.push("t", udp(1));
        assert_eq!(router.count("a"), Some(1));
        assert_eq!(router.count("b"), Some(1));
    }

    #[test]
    fn dscp_and_dst_rules() {
        let router = ClickRouter::compile(
            "cls :: Classifier(dscp 46 ef, dst 10.1.0.0/16 net, any rest);
             ef :: Counter; net :: Counter; rest :: Discard;
             cls [ef] -> ef; cls [net] -> net; cls [rest] -> rest;",
        )
        .unwrap();
        router.push(
            "cls",
            PacketBuilder::udp_v4("10.0.0.1", "10.2.0.2", 1, 2)
                .dscp(46)
                .build(),
        );
        router.push(
            "cls",
            PacketBuilder::udp_v4("10.0.0.1", "10.1.9.9", 1, 2).build(),
        );
        router.push(
            "cls",
            PacketBuilder::udp_v4("10.0.0.1", "10.2.0.2", 1, 2).build(),
        );
        assert_eq!(router.count("ef"), Some(1));
        assert_eq!(router.count("net"), Some(1));
        assert_eq!(router.count("rest"), Some(1));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let router = ClickRouter::compile(
            "// a comment line
             a :: Counter; // trailing comment
             b :: Discard;
             a -> b;",
        )
        .unwrap();
        assert_eq!(router.element_count(), 2);
    }

    #[test]
    fn error_unknown_class() {
        let e = ClickRouter::compile("x :: Wombat;").unwrap_err();
        assert!(e.message.contains("unknown element class"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_duplicate_and_unknown_references() {
        let e = ClickRouter::compile("a :: Counter; a :: Counter;").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = ClickRouter::compile("a :: Counter; a -> ghost;").unwrap_err();
        assert!(e.message.contains("unknown element `ghost`"));
    }

    #[test]
    fn error_bad_args() {
        assert!(ClickRouter::compile("q :: Queue(zero);").is_err());
        assert!(ClickRouter::compile("q :: Queue(0);").is_err());
        assert!(ClickRouter::compile("c :: Classifier();").is_err());
        assert!(
            ClickRouter::compile("c :: Classifier(dscp x out); o :: Discard; c [out] -> o;")
                .is_err()
        );
    }

    #[test]
    fn error_dangling_classifier_output() {
        let e =
            ClickRouter::compile("cls :: Classifier(udp a, any b); qa :: Queue(1); cls [a] -> qa;")
                .unwrap_err();
        assert!(e.message.contains("output `b` is not connected"), "{e}");
    }

    #[test]
    fn error_unknown_classifier_output_in_connection() {
        let e = ClickRouter::compile("cls :: Classifier(any a); q :: Queue(1); cls [nope] -> q;")
            .unwrap_err();
        assert!(e.message.contains("no output `nope`"), "{e}");
    }

    #[test]
    fn no_reconfiguration_after_compile() {
        // The API simply offers no mutation: this test documents the
        // intended limitation by exercising the full public surface.
        let router = ClickRouter::compile("a :: Counter;").unwrap();
        assert_eq!(router.element_count(), 1);
        assert!(router.element_index("a").is_some());
        assert!(router.element_index("b").is_none());
    }
}
