//! City-scale scenarios: seeded, reproducible runs of real dataplanes
//! over generated topologies.
//!
//! [`run_city`] composes everything this crate and the dataplane
//! crates provide into one seeded call: a
//! [`random_connected`] topology
//! whose every node is a [`PipelineNode`] hosting the full stateful
//! chain (conntrack → heavy-hitter guard → stratum-3 media filter),
//! next-hop routing over the generated graph, three seeded traffic
//! phases (diurnal base load, a flash crowd colocated onto one shard
//! of one hot node, an elephant/mice wave), and the autonomous
//! per-node [`RebalanceController`] loop running from simulated time.
//! The returned [`ScenarioReport`] carries exact conservation books,
//! the hot node's skew-recovery ratio across the flash phase, and a
//! fingerprint folding every counter, meter, and steering table in the
//! city — two runs with the same [`CityConfig`] produce the same
//! fingerprint bit for bit.
//!
//! Modelled vs executed: traffic, links, clocks, and routing are
//! *modelled* (seeded generators, the event heap); every packet's path
//! through a node is *executed* by the real element graphs — the same
//! components, verdicts, meters, and control decisions production
//! runs, single-threaded via
//! [`SoloPipeline`](netkit_router::shard::SoloPipeline).
//!
//! # Examples
//!
//! A three-node flash crowd, recovered by the per-node control loop:
//!
//! ```
//! use netkit_sim::scenario::{run_city, CityConfig};
//!
//! let mut cfg = CityConfig::small(7);
//! cfg.nodes = 3;
//! cfg.source_stride = 1;
//! let report = run_city(&cfg);
//! // Exact conservation across every node, link, and element graph.
//! assert!(report.conserved());
//! assert_eq!(
//!     report.injected,
//!     report.delivered + report.link_drops + report.node_drops
//! );
//! // The hot node's controller migrated buckets on its own and the
//! // flash-phase shard imbalance recovered.
//! assert!(report.hot_migrations >= 1);
//! assert!(report.skew_recovery() > 1.0);
//! // Same seed, same city, bit for bit.
//! assert_eq!(report.fingerprint, run_city(&cfg).fingerprint);
//! ```

use std::net::Ipv4Addr;
use std::sync::Arc;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::{Packet, PacketBuilder};
use netkit_packet::steer::BucketMap;
use netkit_router::api::IPACKET_PUSH;
use netkit_router::flow::{ConnTracker, Guard, GuardConfig};
use netkit_router::shard::{
    RebalanceController, RebalancePolicy, ShardGraph, WeightedRebalancePolicy,
};
use netkit_services::media::{annotate_gop, DropLevel, FrameDropFilter};
use parking_lot::Mutex;

use crate::pipeline::{PipelineNode, RouteAction};
use crate::topology::{next_hops, node_addr, random_connected};
use crate::traffic::{Delayed, DiurnalGen, ElephantMiceGen, FlashCrowdGen, PacketFactory};
use crate::{LinkSpec, Simulator};
use netkit_kernel::time::SimTime;

/// Everything one seeded city run needs. Start from
/// [`CityConfig::small`] (the default-lane shape) or
/// [`CityConfig::city`] (the thousand-node soak) and override fields.
#[derive(Clone, Debug)]
pub struct CityConfig {
    /// Master seed: topology, gap draws, and population mixes all
    /// derive from it.
    pub seed: u64,
    /// Topology size (`node_addr` addressing caps this at 65 536).
    pub nodes: usize,
    /// Shard replicas per node.
    pub shards_per_node: usize,
    /// Extra-edge probability for the random connected topology.
    pub extra_link_p: f64,
    /// Every `source_stride`-th node attaches the three-phase source
    /// stack (1 = every node).
    pub source_stride: usize,
    /// Ports the mice population fans over per source — the knob that
    /// sets the simulated-flow count.
    pub mice_fan: u16,
    /// Distinct colocated flash flows per source.
    pub flash_flows: usize,
    /// Packets per source in the diurnal phase.
    pub diurnal_packets: u64,
    /// Packets per source in the flash phase.
    pub flash_packets: u64,
    /// Packets per source in the elephant/mice phase.
    pub elephant_packets: u64,
    /// Base inter-packet gap for every generator.
    pub base_interval_ns: u64,
    /// Diurnal period.
    pub diurnal_period_ns: u64,
    /// Diurnal amplitude (0..0.95).
    pub diurnal_amplitude: f64,
    /// Flash-crowd onset, in emitted time.
    pub flash_onset_ns: u64,
    /// Flash-crowd window length.
    pub flash_duration_ns: u64,
    /// Rate multiplier inside the flash window.
    pub flash_spike: u64,
    /// Start of the elephant/mice wave.
    pub elephant_onset_ns: u64,
    /// Probability an elephant-phase emission is an elephant packet.
    pub elephant_p: f64,
    /// Per-node control-loop cadence (sim time).
    pub control_interval_ns: u64,
    /// Conntrack table slots per shard (bounded, LRU).
    pub conntrack_capacity: usize,
    /// Record `(node, packet id)` per delivery for duplication proofs.
    /// Costs memory linear in deliveries; off for the big city.
    pub collect_delivery_log: bool,
}

impl CityConfig {
    /// The default-lane shape: a dozen nodes, a few sources, seconds
    /// of wall clock in debug builds.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            nodes: 12,
            shards_per_node: 2,
            extra_link_p: 0.15,
            source_stride: 3,
            mice_fan: 64,
            flash_flows: 8,
            diurnal_packets: 150,
            // Sized to fill the whole flash window at the spiked gap
            // (duration / (base / spike)), so the closing slice still
            // measures the storm — after the controller's answer.
            flash_packets: 640,
            elephant_packets: 120,
            base_interval_ns: 20_000,
            diurnal_period_ns: 1_000_000,
            diurnal_amplitude: 0.5,
            flash_onset_ns: 400_000,
            flash_duration_ns: 1_600_000,
            flash_spike: 8,
            elephant_onset_ns: 600_000,
            elephant_p: 0.2,
            control_interval_ns: 100_000,
            conntrack_capacity: 256,
            collect_delivery_log: false,
        }
    }

    /// The thousand-node, million-flow soak shape (release builds;
    /// gated behind `NETKIT_CITY_SOAK=1` in CI).
    pub fn city(seed: u64) -> Self {
        Self {
            seed,
            nodes: 1000,
            shards_per_node: 2,
            extra_link_p: 0.02,
            source_stride: 1,
            mice_fan: 512,
            flash_flows: 8,
            diurnal_packets: 600,
            // Fills the 20 ms window at gap 50 µs / 8.
            flash_packets: 3200,
            elephant_packets: 600,
            base_interval_ns: 50_000,
            diurnal_period_ns: 20_000_000,
            diurnal_amplitude: 0.5,
            flash_onset_ns: 5_000_000,
            flash_duration_ns: 20_000_000,
            flash_spike: 8,
            elephant_onset_ns: 10_000_000,
            elephant_p: 0.2,
            // One turn per measurement slice (duration / 8): the
            // controller reacts within 2.5 ms of a 20 ms storm, and
            // the peak slice still captures the pre-migration skew.
            control_interval_ns: 2_500_000,
            conntrack_capacity: 256,
            collect_delivery_log: false,
        }
    }

    /// Number of source stacks the config attaches.
    pub fn sources(&self) -> u64 {
        let stride = self.source_stride.max(1);
        self.nodes.div_ceil(stride) as u64
    }

    /// Distinct simulated flows the configuration models: per source,
    /// the diurnal mice fan + the elephant-phase mice fan (different
    /// destination, so different flows) + the colocated flash flows +
    /// one elephant.
    pub fn modelled_flows(&self) -> u64 {
        self.sources() * (u64::from(self.mice_fan) * 2 + self.flash_flows as u64 + 1)
    }
}

/// Per-node books the report keeps for every node in the city.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeBooks {
    /// Packets the node's pipeline processed.
    pub packets: u64,
    /// Verdict-accepted packets.
    pub accepted: u64,
    /// Verdict-dropped packets.
    pub dropped: u64,
    /// Drops the guard rate-limited (cause-tagged).
    pub guard_drops: u64,
    /// Drops by ordinary graph policy (cause-tagged).
    pub graph_drops: u64,
    /// Media frames the stratum-3 filter shed.
    pub media_shed: u64,
    /// Bucket migrations the node's own controller applied.
    pub migrations: u64,
    /// Completed control-loop lapses.
    pub control_turns: u64,
}

/// What one seeded city run produced.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Packets injected by every source.
    pub injected: u64,
    /// Packets delivered at their destination nodes.
    pub delivered: u64,
    /// Packets lost on links.
    pub link_drops: u64,
    /// Packets consumed at nodes (guard, graph policy, media shed,
    /// unroutable).
    pub node_drops: u64,
    /// Link traversals.
    pub forwarded: u64,
    /// Mean end-to-end delivery latency.
    pub mean_latency_ns: Option<f64>,
    /// Per-node books, indexed like the topology.
    pub per_node: Vec<NodeBooks>,
    /// Index of the flash crowd's target node.
    pub hot_node: usize,
    /// Migrations the hot node's controller applied.
    pub hot_migrations: u64,
    /// Hot-node shard imbalance (max/mean of per-shard packet deltas):
    /// the peak eighth-slice over the opening half of the flash
    /// window — the storm at its worst, wherever arrival latency and
    /// control cadence put that instant.
    pub skew_early: f64,
    /// The same imbalance over the final eighth-slice of the window —
    /// the load shape the node's controller settled on.
    pub skew_late: f64,
    /// Flows the configuration modelled.
    pub modelled_flows: u64,
    /// FNV-1a fold of every counter, cause book, meter, control
    /// decision count, and steering table in the city.
    pub fingerprint: u64,
    /// `(node, packet id)` per delivery, when collection was enabled.
    pub delivery_log: Option<Vec<(u16, u64)>>,
}

impl ScenarioReport {
    /// How much of the flash-phase shard skew the hot node's
    /// autonomous control loop recovered: early imbalance over late
    /// imbalance (≥ 1 means it improved).
    pub fn skew_recovery(&self) -> f64 {
        self.skew_early / self.skew_late.max(1.0)
    }

    /// The global conservation identity, plus the per-cause identity
    /// on every node's pipeline.
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.link_drops + self.node_drops
            && self
                .per_node
                .iter()
                .all(|b| b.guard_drops + b.graph_drops == b.dropped)
    }

    /// Sum of a per-node projection.
    pub fn total<F: Fn(&NodeBooks) -> u64>(&self, f: F) -> u64 {
        self.per_node.iter().map(f).sum()
    }
}

/// max/mean of per-shard deltas — 1.0 is perfectly balanced,
/// `shards` is everything-on-one-shard.
pub fn imbalance(deltas: &[u64]) -> f64 {
    if deltas.is_empty() {
        return 1.0;
    }
    let total: u64 = deltas.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / deltas.len() as f64;
    let max = *deltas.iter().max().expect("non-empty") as f64;
    max / mean
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Source ports whose flows (src → dst:dport, UDP) all land on shard 0
/// of an identity bucket map with `shards` shards — the colocation
/// that turns a flash crowd into single-shard pressure.
fn colocated_sports(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    dport: u16,
    shards: usize,
    want: usize,
) -> Vec<u16> {
    let map = BucketMap::identity(shards);
    let src = src.to_string();
    let dst = dst.to_string();
    let mut out = Vec::with_capacity(want);
    let mut sport = 20_000u16;
    while out.len() < want && sport < 60_000 {
        let pkt = PacketBuilder::udp_v4(&src, &dst, sport, dport).build();
        if let Some(key) = FlowKey::from_packet(&pkt) {
            if map.shard_of_bucket(key.bucket()) == 0 {
                out.push(sport);
            }
        }
        sport += 1;
    }
    assert!(!out.is_empty(), "no colocatable source ports found");
    out
}

/// The factory for one phase's packets: unique 8-byte ids in the
/// payload (`id_base + seq`), source-port fan for population spread,
/// optional GOP annotation so the stratum-3 media filter has frames
/// to judge, and elephant-sized payloads when asked.
#[allow(clippy::too_many_arguments)]
fn phase_factory(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    dport: u16,
    sport_base: u16,
    sport_fan: u16,
    id_base: u64,
    payload_len: usize,
    annotate_media: bool,
) -> PacketFactory {
    let src = src.to_string();
    let dst = dst.to_string();
    Box::new(move |seq| {
        let sport = sport_base + (seq % u64::from(sport_fan.max(1))) as u16;
        let mut payload = vec![0u8; payload_len.max(8)];
        payload[..8].copy_from_slice(&(id_base + seq).to_be_bytes());
        let mut pkt = PacketBuilder::udp_v4(&src, &dst, sport, dport)
            .payload(&payload)
            .build();
        if annotate_media {
            annotate_gop(&mut pkt, seq, 9);
        }
        pkt
    })
}

/// Handles run_city keeps per node to read books back after the run.
struct NodeHandles {
    media: Vec<Arc<FrameDropFilter>>,
}

/// One standard city node: per shard, conntrack → guard → media
/// filter → egress, with the guard reading the shard's pipeline
/// sketch, a per-node controller, and guard-window retirement on the
/// control cadence.
fn city_node(name: &str, cfg: &CityConfig, handles: &mut Vec<NodeHandles>) -> PipelineNode {
    let guards: Arc<Mutex<Vec<Arc<Guard>>>> = Arc::new(Mutex::new(Vec::new()));
    let media: Arc<Mutex<Vec<Arc<FrameDropFilter>>>> = Arc::new(Mutex::new(Vec::new()));
    let node = {
        let guards = Arc::clone(&guards);
        let media = Arc::clone(&media);
        let conntrack_capacity = cfg.conntrack_capacity;
        PipelineNode::build(name, ShardSpec::new(cfg.shards_per_node), move |site| {
            let (capsule, _rt) = PipelineNode::shard_capsule();
            let tracker = ConnTracker::with_table(conntrack_capacity, u64::MAX);
            let guard = Guard::with_tracker(
                Arc::clone(&site.sketch),
                Arc::clone(&tracker),
                GuardConfig::default(),
            );
            let filter = FrameDropFilter::with_level(DropLevel::DropB);
            let tid = capsule.adopt(tracker.clone())?;
            let gid = capsule.adopt(guard.clone())?;
            let fid = capsule.adopt(filter.clone())?;
            let eid = capsule.adopt(site.egress.clone())?;
            capsule.bind_simple(tid, "out", gid, IPACKET_PUSH)?;
            capsule.bind_simple(gid, "out", fid, IPACKET_PUSH)?;
            capsule.bind_simple(fid, "out", eid, IPACKET_PUSH)?;
            guards.lock().push(guard);
            media.lock().push(filter);
            Ok(ShardGraph::new(capsule, tracker).with_components(vec![tid, gid, fid, eid]))
        })
        .expect("city node builds")
    };
    let controller = RebalanceController::new(
        WeightedRebalancePolicy {
            base: RebalancePolicy {
                max_imbalance: 1.25,
                min_samples: 64,
            },
            pressure_weight: 0.0,
            decay: 0.5,
        },
        1,
    );
    let built_guards = guards.lock().clone();
    let node = node
        .with_controller(controller, cfg.control_interval_ns)
        .with_control_hook(Box::new(move || {
            for guard in &built_guards {
                guard.retire_window();
            }
        }));
    handles.push(NodeHandles {
        media: media.lock().clone(),
    });
    node
}

/// Runs one seeded city: build the topology of pipeline nodes, install
/// next-hop routes, attach the three-phase source stacks, step through
/// the flash window taking deterministic skew snapshots at the hot
/// node, then run to idle and close the books.
pub fn run_city(cfg: &CityConfig) -> ScenarioReport {
    assert!(cfg.nodes >= 2, "a city needs at least two nodes");
    let mut sim = Simulator::new(cfg.seed);
    let mut handles: Vec<NodeHandles> = Vec::with_capacity(cfg.nodes);
    let topo = {
        let handles = &mut handles;
        let mut names = (0..cfg.nodes).map(|i| format!("city-{i}"));
        random_connected(
            &mut sim,
            cfg.nodes,
            cfg.extra_link_p,
            cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
            LinkSpec::default(),
            &mut move |_i| {
                let name = names.next().expect("one name per node");
                Box::new(city_node(&name, cfg, handles))
            },
        )
    };
    let hops = next_hops(&sim);
    #[allow(clippy::type_complexity)]
    let delivery_log: Option<Arc<Mutex<Vec<(u16, u64)>>>> = cfg
        .collect_delivery_log
        .then(|| Arc::new(Mutex::new(Vec::new())));

    // Install next-hop routes: deliver at the destination (logging the
    // packet id when asked), forward along the topology otherwise,
    // drop the unroutable.
    for (i, node) in topo.nodes.iter().enumerate() {
        let row = hops[i].clone();
        let log = delivery_log.clone();
        let behaviour = sim
            .node_behaviour_mut::<PipelineNode>(*node)
            .expect("city node behaviour");
        behaviour.set_route(Box::new(move |pkt: &Packet| {
            let Ok(ip) = pkt.ipv4() else {
                return RouteAction::Drop;
            };
            let o = ip.dst.octets();
            if o[0] != 10 || o[3] != 1 {
                return RouteAction::Drop;
            }
            let dest = usize::from(o[1]) * 256 + usize::from(o[2]);
            if dest == i {
                if let Some(log) = log.as_ref() {
                    let id = pkt
                        .udp_payload_v4()
                        .ok()
                        .filter(|p| p.len() >= 8)
                        .map(|p| u64::from_be_bytes(p[..8].try_into().expect("8 bytes")));
                    if let Some(id) = id {
                        log.lock().push((i as u16, id));
                    }
                }
                return RouteAction::Deliver;
            }
            match row.get(dest).copied().flatten() {
                Some(port) => RouteAction::Forward(port),
                None => RouteAction::Drop,
            }
        }));
    }

    // The flash crowd's target: the last node (sources aim at it from
    // everywhere else).
    let hot = cfg.nodes - 1;
    let hot_addr = node_addr(hot);

    // Attach the three-phase source stack to every strided node.
    let stride = cfg.source_stride.max(1);
    let mut gen_serial: u64 = 0;
    for i in (0..cfg.nodes).step_by(stride) {
        let src_addr = node_addr(i);
        // Diurnal base load to a deterministic far destination.
        let d_dest = {
            let d = (i * 7 + 3) % cfg.nodes;
            if d == i {
                (d + 1) % cfg.nodes
            } else {
                d
            }
        };
        sim.attach_source(
            topo.nodes[i],
            Box::new(DiurnalGen::new(
                cfg.base_interval_ns,
                cfg.diurnal_period_ns,
                cfg.diurnal_amplitude,
                cfg.diurnal_packets,
                phase_factory(
                    src_addr,
                    node_addr(d_dest),
                    80,
                    10_000,
                    cfg.mice_fan,
                    gen_serial << 32,
                    64,
                    true,
                ),
            )),
        );
        gen_serial += 1;
        // Flash crowd onto the hot node, colocated on its shard 0.
        if i != hot {
            let sports = colocated_sports(
                src_addr,
                hot_addr,
                80,
                cfg.shards_per_node,
                cfg.flash_flows.max(1),
            );
            let src = src_addr.to_string();
            let dst = hot_addr.to_string();
            let id_base = gen_serial << 32;
            sim.attach_source(
                topo.nodes[i],
                Box::new(FlashCrowdGen::new(
                    cfg.base_interval_ns,
                    cfg.flash_onset_ns,
                    cfg.flash_duration_ns,
                    cfg.flash_spike,
                    cfg.flash_packets,
                    Box::new(move |seq| {
                        let sport = sports[(seq as usize) % sports.len()];
                        let mut payload = vec![0u8; 64];
                        payload[..8].copy_from_slice(&(id_base + seq).to_be_bytes());
                        PacketBuilder::udp_v4(&src, &dst, sport, 80)
                            .payload(&payload)
                            .build()
                    }),
                )),
            );
            gen_serial += 1;
        }
        // Elephant/mice wave to a different far destination, opening
        // mid-run.
        let e_dest = {
            let d = (i * 13 + 5) % cfg.nodes;
            if d == i {
                (d + 1) % cfg.nodes
            } else {
                d
            }
        };
        let elephant_ids = gen_serial << 32;
        gen_serial += 1;
        let mice_ids = gen_serial << 32;
        gen_serial += 1;
        sim.attach_source(
            topo.nodes[i],
            Box::new(Delayed::new(
                cfg.elephant_onset_ns,
                Box::new(ElephantMiceGen::new(
                    cfg.base_interval_ns,
                    cfg.elephant_p,
                    cfg.elephant_packets,
                    phase_factory(
                        src_addr,
                        node_addr(e_dest),
                        443,
                        7_000,
                        1,
                        elephant_ids,
                        1024,
                        false,
                    ),
                    phase_factory(
                        src_addr,
                        node_addr(e_dest),
                        80,
                        30_000,
                        cfg.mice_fan,
                        mice_ids,
                        64,
                        false,
                    ),
                )),
            )),
        );
    }

    // Step through the flash window taking deterministic skew
    // snapshots at the hot node: the opening slice shows the
    // colocated storm, the closing slice shows what the node's own
    // controller made of it.
    let hot_shards = |sim: &mut Simulator| -> Vec<u64> {
        sim.node_behaviour_mut::<PipelineNode>(topo.nodes[hot])
            .expect("hot node")
            .pipeline()
            .shard_loads()
            .iter()
            .map(|l| l.packets)
            .collect()
    };
    // Eighth-slices across the flash window. The storm's arrival at
    // the hot node lags its emission by the path's link latency, and
    // the controller's first migration lands within a control interval
    // of the evidence — both phase shifts the measurement must not be
    // sensitive to. Taking the *peak* slice of the opening half as the
    // storm's skew and the *final* slice as the settled state measures
    // "how bad did it get" against "where did the controller leave it"
    // wherever those instants fall inside the window.
    const SLICES: u64 = 8;
    let slice = (cfg.flash_duration_ns / SLICES).max(1);
    let mut snaps: Vec<Vec<u64>> = Vec::with_capacity(SLICES as usize + 1);
    for k in 0..=SLICES {
        sim.run_until(SimTime::from_nanos(cfg.flash_onset_ns + k * slice));
        snaps.push(hot_shards(&mut sim));
    }
    sim.run_to_idle();

    let delta = |a: &[u64], b: &[u64]| -> Vec<u64> {
        a.iter()
            .zip(b)
            .map(|(late, early)| late.saturating_sub(*early))
            .collect()
    };
    let slice_skew: Vec<f64> = snaps
        .windows(2)
        .map(|w| imbalance(&delta(&w[1], &w[0])))
        .collect();
    let skew_early = slice_skew[..SLICES as usize / 2]
        .iter()
        .copied()
        .fold(1.0f64, f64::max);
    let skew_late = *slice_skew.last().expect("at least one slice");

    // Close the books.
    let mut per_node = Vec::with_capacity(cfg.nodes);
    let mut fingerprint = FNV_OFFSET;
    for (i, node) in topo.nodes.iter().enumerate() {
        let media_shed: u64 = handles[i].media.iter().map(|m| m.stats().1).sum();
        let behaviour = sim
            .node_behaviour_mut::<PipelineNode>(*node)
            .expect("city node behaviour");
        let pipe = behaviour.pipeline();
        let stats = pipe.stats();
        let drops = pipe.drop_stats();
        let books = NodeBooks {
            packets: stats.packets,
            accepted: stats.accepted,
            dropped: stats.dropped,
            guard_drops: drops.guard,
            graph_drops: drops.graph,
            media_shed,
            migrations: pipe.migrations(),
            control_turns: behaviour.control_turns(),
        };
        for v in [
            books.packets,
            books.accepted,
            books.dropped,
            books.guard_drops,
            books.graph_drops,
            books.media_shed,
            books.migrations,
            books.control_turns,
        ] {
            fingerprint = fnv_fold(fingerprint, v);
        }
        let map = pipe.bucket_map();
        for bucket in 0..netkit_packet::steer::RSS_BUCKETS {
            fingerprint = fnv_fold(fingerprint, map.shard_of_bucket(bucket) as u64);
        }
        per_node.push(books);
    }
    let stats = sim.stats();
    for v in [
        stats.injected,
        stats.delivered,
        stats.link_drops,
        stats.node_drops,
        stats.forwarded,
        stats.latency_samples().len() as u64,
        stats.latency_samples().iter().sum::<u64>(),
    ] {
        fingerprint = fnv_fold(fingerprint, v);
    }

    let hot_migrations = per_node[hot].migrations;
    ScenarioReport {
        injected: stats.injected,
        delivered: stats.delivered,
        link_drops: stats.link_drops,
        node_drops: stats.node_drops,
        forwarded: stats.forwarded,
        mean_latency_ns: stats.mean_latency_ns(),
        per_node,
        hot_node: hot,
        hot_migrations,
        skew_early,
        skew_late,
        modelled_flows: cfg.modelled_flows(),
        fingerprint,
        delivery_log: delivery_log.map(|log| log.lock().clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_city_conserves_and_reproduces() {
        let cfg = CityConfig::small(11);
        let a = run_city(&cfg);
        assert!(a.conserved(), "books must close: {a:?}");
        assert!(a.injected > 0 && a.delivered > 0);
        assert!(a.total(|b| b.packets) >= a.injected, "every hop executes");
        let b = run_city(&cfg);
        assert_eq!(a.fingerprint, b.fingerprint, "same seed, same city");
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_city(&CityConfig::small(1));
        let b = run_city(&CityConfig::small(2));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn flash_crowd_recovers_at_the_hot_node() {
        let report = run_city(&CityConfig::small(11));
        assert!(
            report.hot_migrations >= 1,
            "hot node controller must migrate: {report:?}"
        );
        assert!(
            report.skew_recovery() >= 1.5,
            "early {} late {} recovery {}",
            report.skew_early,
            report.skew_late,
            report.skew_recovery()
        );
    }

    #[test]
    fn delivery_log_has_no_duplicates() {
        let mut cfg = CityConfig::small(5);
        cfg.collect_delivery_log = true;
        let report = run_city(&cfg);
        let log = report.delivery_log.as_ref().expect("log enabled");
        assert_eq!(log.len() as u64, report.delivered);
        let mut seen = std::collections::HashSet::new();
        for entry in log {
            assert!(seen.insert(*entry), "duplicate delivery {entry:?}");
        }
    }

    #[test]
    fn media_filter_sheds_b_frames() {
        let report = run_city(&CityConfig::small(11));
        assert!(
            report.total(|b| b.media_shed) > 0,
            "diurnal GOP traffic must exercise the stratum-3 filter"
        );
    }
}
