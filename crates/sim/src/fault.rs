//! Deterministic fault injection for sim nodes.
//!
//! [`FaultedBehaviour`] wraps any [`NodeBehaviour`] and runs every
//! arriving packet past a shared
//! [`FaultPlan`] — the same seeded,
//! replayable schedule the threaded chaos tests drive their NICs with —
//! so a single plan can script a whole experiment: wire loss and
//! duplication on the way in, plus a crash on the scheduled n-th
//! packet.
//!
//! The simulator is single-threaded, so a crash cannot unwind a worker
//! thread; it is *modelled*: when the plan's crash fault fires the
//! wrapper goes **dead** — the crashing packet and everything after it
//! (including the rest of the same batch, mirroring a panicking
//! worker's lost job) is counted on [`FaultedBehaviour::crash_dropped`]
//! and filed as a node drop — until [`FaultedBehaviour::revive`], the
//! sim-side analogue of the threaded pipeline's `respawn_shard`.
//! Accounting stays closed under chaos: every packet the wrapper eats
//! shows up either in the plan's [`FaultStats`] (wire faults) or in
//! `crash_dropped` (the crash), so a test can prove nothing was lost
//! *silently*.
//!
//! [`FaultStats`]: netkit_kernel::fault::FaultStats

use std::fmt;
use std::sync::Arc;

use netkit_kernel::fault::{FaultPlan, RxFault};
use netkit_packet::packet::Packet;

use crate::node::{NodeBehaviour, NodeCtx};

/// A [`NodeBehaviour`] decorator driven by a [`FaultPlan`]. See the
/// module docs.
pub struct FaultedBehaviour {
    name: String,
    inner: Box<dyn NodeBehaviour>,
    plan: Arc<FaultPlan>,
    dead: bool,
    crash_dropped: u64,
}

impl FaultedBehaviour {
    /// Wraps `inner`, subjecting its ingress to `plan`'s schedule.
    pub fn new(inner: Box<dyn NodeBehaviour>, plan: Arc<FaultPlan>) -> Self {
        Self {
            name: format!("faulted-{}", inner.name()),
            inner,
            plan,
            dead: false,
            crash_dropped: 0,
        }
    }

    /// True after the plan's crash fault fired and before
    /// [`Self::revive`]: the wrapper is eating every packet.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Brings a crashed behaviour back — the sim-side respawn. The
    /// inner behaviour's state survives (the threaded analogue rebuilds
    /// the replica; here the crash models the *worker*, not the graph).
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// Packets eaten by the crash: the one that fired the fault plus
    /// everything that arrived dead (the stranded-ring analogue).
    pub fn crash_dropped(&self) -> u64 {
        self.crash_dropped
    }

    /// The shared plan, for closing the accounting books.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped behaviour, for post-run inspection.
    pub fn inner(&self) -> &dyn NodeBehaviour {
        self.inner.as_ref()
    }

    /// Runs one packet through the fault schedule; `None` means the
    /// plan (or the dead state) consumed it. A duplicate returns the
    /// extra copy alongside.
    fn filter(&mut self, ctx: &mut NodeCtx<'_>, pkt: Packet) -> Option<(Packet, Option<Packet>)> {
        if self.dead {
            self.crash_dropped += 1;
            ctx.drop_packet(pkt);
            return None;
        }
        if self.plan.should_panic() {
            // The crashing packet dies with its "worker", like the
            // in-flight job of a panicking thread.
            self.dead = true;
            self.crash_dropped += 1;
            ctx.drop_packet(pkt);
            return None;
        }
        match self.plan.rx_action() {
            RxFault::Deliver => Some((pkt, None)),
            RxFault::Drop => {
                ctx.drop_packet(pkt);
                None
            }
            RxFault::Corrupt => {
                let mut pkt = pkt;
                // Flip the last byte: deterministic, and late enough to
                // hit payload/L4 rather than always beheading L2.
                let len = pkt.len();
                if len > 0 {
                    pkt.data_mut()[len - 1] ^= 0xFF;
                }
                Some((pkt, None))
            }
            RxFault::Duplicate => {
                let dup = pkt.clone();
                Some((pkt, Some(dup)))
            }
        }
    }
}

impl NodeBehaviour for FaultedBehaviour {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkt: Packet) {
        if let Some((pkt, dup)) = self.filter(ctx, pkt) {
            self.inner.on_packet(ctx, ingress, pkt);
            if let Some(dup) = dup {
                self.inner.on_packet(ctx, ingress, dup);
            }
        }
    }

    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkts: Vec<Packet>) {
        // Filter the whole burst first, then hand the survivors down as
        // one batch so the inner behaviour keeps its burst semantics. A
        // crash mid-burst eats the tail (the dead check in `filter`),
        // exactly like a worker panicking mid-job.
        let mut out = Vec::with_capacity(pkts.len());
        for pkt in pkts {
            if let Some((pkt, dup)) = self.filter(ctx, pkt) {
                out.push(pkt);
                out.extend(dup);
            }
        }
        if !out.is_empty() {
            self.inner.on_batch(ctx, ingress, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if !self.dead {
            self.inner.on_timer(ctx, token);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for FaultedBehaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FaultedBehaviour(`{}`, dead: {}, crash_dropped: {})",
            self.name, self.dead, self.crash_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, SinkBehaviour};
    use netkit_kernel::fault::FaultConfig;
    use netkit_kernel::time::SimTime;
    use netkit_packet::packet::PacketBuilder;

    fn run_batch(b: &mut dyn NodeBehaviour, pkts: Vec<Packet>) -> u64 {
        let (mut em, mut ti, mut de, mut dr) = (Vec::new(), Vec::new(), Vec::new(), 0u64);
        let mut ctx = NodeCtx {
            node: NodeId(0),
            now: SimTime::from_nanos(0),
            emissions: &mut em,
            timers: &mut ti,
            deliveries: &mut de,
            drops: &mut dr,
        };
        b.on_batch(&mut ctx, 0, pkts);
        dr
    }

    fn traffic(n: u16) -> Vec<Packet> {
        (0..n)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80).build())
            .collect()
    }

    #[test]
    fn crash_eats_the_burst_tail_and_revive_resumes() {
        let plan = Arc::new(FaultPlan::new(FaultConfig::new(11).panic_on_nth(5)));
        let (sink, counters) = SinkBehaviour::new();
        let mut faulted = FaultedBehaviour::new(Box::new(sink), plan);
        let drops = run_batch(&mut faulted, traffic(16));
        // Packets 1-4 delivered, 5 crashed, 6-16 arrived dead.
        assert_eq!(counters.received(), 4);
        assert!(faulted.is_dead());
        assert_eq!(faulted.crash_dropped(), 12);
        assert_eq!(drops, 12, "every eaten packet is a counted node drop");
        // Still dead: nothing gets through.
        run_batch(&mut faulted, traffic(4));
        assert_eq!(counters.received(), 4);
        assert_eq!(faulted.crash_dropped(), 16);
        // The respawn analogue restores delivery.
        faulted.revive();
        run_batch(&mut faulted, traffic(4));
        assert_eq!(counters.received(), 8);
        assert_eq!(faulted.plan().stats().panics_fired, 1);
    }

    #[test]
    fn wire_faults_close_the_accounting_books() {
        let cfg = FaultConfig::new(77).rx_drop(0.25).rx_duplicate(0.125);
        let plan = Arc::new(FaultPlan::new(cfg));
        let (sink, counters) = SinkBehaviour::new();
        let mut faulted = FaultedBehaviour::new(Box::new(sink), Arc::clone(&plan));
        let injected = 512u64;
        let drops = run_batch(&mut faulted, traffic(injected as u16));
        let stats = plan.stats();
        assert_eq!(stats.rx_frames, injected);
        assert!(stats.rx_dropped > 0 && stats.rx_duplicated > 0);
        // delivered = injected - plan drops + plan duplicates: nothing
        // is lost silently.
        assert_eq!(
            counters.received(),
            injected - stats.rx_dropped + stats.rx_duplicated
        );
        assert_eq!(drops, stats.rx_dropped, "plan drops are node drops");
        assert_eq!(faulted.crash_dropped(), 0);
    }

    #[test]
    fn same_seed_same_chaos() {
        let run = || {
            let plan = Arc::new(FaultPlan::new(
                FaultConfig::new(42)
                    .rx_drop(0.2)
                    .rx_corrupt(0.1)
                    .rx_duplicate(0.1)
                    .panic_on_nth(40),
            ));
            let (sink, counters) = SinkBehaviour::new();
            let mut faulted = FaultedBehaviour::new(Box::new(sink), plan);
            run_batch(&mut faulted, traffic(64));
            (counters.received(), faulted.crash_dropped())
        };
        assert_eq!(run(), run(), "a chaos run replays bit-for-bit");
    }

    #[test]
    fn corruption_mangles_the_frame_but_delivers_it() {
        let plan = Arc::new(FaultPlan::new(FaultConfig::new(5).rx_corrupt(1.0)));
        let (sink, counters) = SinkBehaviour::new();
        let mut faulted = FaultedBehaviour::new(Box::new(sink), Arc::clone(&plan));
        let pristine = traffic(1);
        let original_len = pristine[0].len() as u64;
        run_batch(&mut faulted, pristine);
        assert_eq!(counters.received(), 1, "corrupt frames still arrive");
        assert_eq!(counters.bytes(), original_len, "mangled, not truncated");
        assert_eq!(plan.stats().rx_corrupted, 1);
    }
}
