//! Aggregate counters and latency records for a simulation run.

use std::fmt;

/// Maximum number of per-packet latency samples retained (reservoir cap;
/// beyond it new samples are dropped — fine for the experiments, which
/// run well below the cap).
const MAX_SAMPLES: usize = 1 << 20;

/// Counters accumulated by a [`Simulator`](crate::Simulator) run.
#[derive(Debug, Default, Clone)]
pub struct SimStats {
    /// Packets injected by traffic sources.
    pub injected: u64,
    /// Packets delivered to a final destination
    /// ([`NodeCtx::deliver_local`](crate::node::NodeCtx::deliver_local)).
    pub delivered: u64,
    /// Packets dropped on full link queues.
    pub link_drops: u64,
    /// Packets dropped inside nodes (TTL expiry, no route, queue policy).
    pub node_drops: u64,
    /// Packet emissions onto links (hop count contributions).
    pub forwarded: u64,
    latency_ns: Vec<u64>,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_delivery(&mut self, latency_ns: u64) {
        self.delivered += 1;
        if self.latency_ns.len() < MAX_SAMPLES {
            self.latency_ns.push(latency_ns);
        }
    }

    /// End-to-end latency samples (injection → delivery), in nanoseconds.
    pub fn latency_samples(&self) -> &[u64] {
        &self.latency_ns
    }

    /// Mean delivery latency, or `None` if nothing was delivered.
    pub fn mean_latency_ns(&self) -> Option<f64> {
        if self.latency_ns.is_empty() {
            return None;
        }
        Some(self.latency_ns.iter().map(|v| *v as f64).sum::<f64>() / self.latency_ns.len() as f64)
    }

    /// The `p`-th latency percentile (0.0–100.0), or `None` if no samples.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn latency_percentile_ns(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.latency_ns.is_empty() {
            return None;
        }
        let mut sorted = self.latency_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Fraction of injected packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.injected as f64
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected={} delivered={} ({:.1}%) link_drops={} node_drops={} forwarded={}",
            self.injected,
            self.delivered,
            self.delivery_ratio() * 100.0,
            self.link_drops,
            self.node_drops,
            self.forwarded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_mean() {
        let mut s = SimStats::new();
        for v in [10, 20, 30, 40, 50] {
            s.record_delivery(v);
        }
        assert_eq!(s.delivered, 5);
        assert_eq!(s.mean_latency_ns(), Some(30.0));
        assert_eq!(s.latency_percentile_ns(0.0), Some(10));
        assert_eq!(s.latency_percentile_ns(50.0), Some(30));
        assert_eq!(s.latency_percentile_ns(100.0), Some(50));
    }

    #[test]
    fn empty_stats_have_no_latency() {
        let s = SimStats::new();
        assert!(s.mean_latency_ns().is_none());
        assert!(s.latency_percentile_ns(50.0).is_none());
        assert_eq!(s.delivery_ratio(), 0.0);
    }

    #[test]
    fn delivery_ratio_counts_injections() {
        let mut s = SimStats::new();
        s.injected = 4;
        s.record_delivery(5);
        assert_eq!(s.delivery_ratio(), 0.25);
    }
}
