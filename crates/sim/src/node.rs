//! Nodes and their behaviours.
//!
//! A node is a slot in the simulator with numbered ports; its
//! [`NodeBehaviour`] decides what happens to each arriving packet. The
//! behaviour emits packets on ports, sets timers, delivers packets
//! locally, or drops them — all through the [`NodeCtx`] handed to each
//! callback, which keeps the behaviour decoupled from the event engine.
//!
//! Router nodes in the experiments adapt a Router-CF pipeline behind this
//! trait; the built-in [`StaticForwarder`] and [`SinkBehaviour`] cover
//! hosts and plain IP forwarding without pulling in the router crate.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netkit_kernel::time::SimTime;
use netkit_packet::packet::Packet;

/// Identifies a node within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// The pseudo-port on which locally originated (injected) traffic enters
/// a node.
pub const LOCAL_PORT: u16 = u16::MAX;

/// Actions a behaviour may take during a callback.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) emissions: &'a mut Vec<(u16, Packet)>,
    pub(crate) timers: &'a mut Vec<(u64, u64)>,
    pub(crate) deliveries: &'a mut Vec<Packet>,
    pub(crate) drops: &'a mut u64,
}

impl NodeCtx<'_> {
    /// The node being called.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `pkt` out of `port`; it will traverse the attached link.
    /// Emitting on an unconnected port counts as a node drop.
    pub fn emit(&mut self, port: u16, pkt: Packet) {
        self.emissions.push((port, pkt));
    }

    /// Requests [`NodeBehaviour::on_timer`] with `token` after
    /// `delay_ns`.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.timers.push((delay_ns, token));
    }

    /// Consumes `pkt` as having reached its final destination; records
    /// end-to-end latency against its injection timestamp.
    pub fn deliver_local(&mut self, pkt: Packet) {
        self.deliveries.push(pkt);
    }

    /// Explicitly drops a packet (TTL expiry, policy, no route).
    pub fn drop_packet(&mut self, _pkt: Packet) {
        *self.drops += 1;
    }

    /// Counts `n` packets consumed inside a hosted dataplane — graph
    /// or guard policy drops whose packets were swallowed by elements
    /// and never surface as a `Packet` to hand to
    /// [`Self::drop_packet`]. Keeps the simulator's conservation books
    /// (`injected == delivered + link_drops + node_drops`) exact for
    /// nodes hosting real element graphs.
    pub fn count_drops(&mut self, n: u64) {
        *self.drops += n;
    }
}

/// Per-node packet-handling logic.
///
/// The `Any` supertrait enables typed access to a node's behaviour after
/// it has been added to a simulator
/// ([`Simulator::node_behaviour_mut`](crate::Simulator::node_behaviour_mut)).
pub trait NodeBehaviour: Send + std::any::Any {
    /// Called when a packet arrives on `ingress` (or [`LOCAL_PORT`] for
    /// injected traffic).
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkt: Packet);

    /// Called when a burst of packets arrives on `ingress` at the same
    /// instant (the simulator coalesces same-time same-port arrivals).
    /// The default loops over [`Self::on_packet`] in arrival order;
    /// router-pipeline behaviours override it to feed their dataplane's
    /// `push_batch` and pay component-boundary costs once per burst.
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkts: Vec<Packet>) {
        for pkt in pkts {
            self.on_packet(ctx, ingress, pkt);
        }
    }

    /// Called when a timer set via [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Display name for traces.
    fn name(&self) -> &str {
        "node"
    }
}

/// A behaviour assembled from closures; handy in tests and examples.
pub struct FnBehaviour<P, T> {
    name: String,
    on_packet: P,
    on_timer: T,
}

impl<P> FnBehaviour<P, fn(&mut NodeCtx<'_>, u64)>
where
    P: FnMut(&mut NodeCtx<'_>, u16, Packet) + Send + 'static,
{
    /// A behaviour with only a packet handler.
    pub fn new(name: impl Into<String>, on_packet: P) -> Self {
        Self {
            name: name.into(),
            on_packet,
            on_timer: |_, _| {},
        }
    }
}

impl<P, T> FnBehaviour<P, T>
where
    P: FnMut(&mut NodeCtx<'_>, u16, Packet) + Send + 'static,
    T: FnMut(&mut NodeCtx<'_>, u64) + Send + 'static,
{
    /// A behaviour with packet and timer handlers.
    pub fn with_timer(name: impl Into<String>, on_packet: P, on_timer: T) -> Self {
        Self {
            name: name.into(),
            on_packet,
            on_timer,
        }
    }
}

impl<P, T> NodeBehaviour for FnBehaviour<P, T>
where
    P: FnMut(&mut NodeCtx<'_>, u16, Packet) + Send + 'static,
    T: FnMut(&mut NodeCtx<'_>, u64) + Send + 'static,
{
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkt: Packet) {
        (self.on_packet)(ctx, ingress, pkt)
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        (self.on_timer)(ctx, token)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

impl<P, T> std::fmt::Debug for FnBehaviour<P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnBehaviour(`{}`)", self.name)
    }
}

/// Shared counters exposed by a [`SinkBehaviour`].
#[derive(Debug, Default)]
pub struct SinkCounters {
    received: AtomicU64,
    bytes: AtomicU64,
}

impl SinkCounters {
    /// Packets absorbed so far.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Bytes absorbed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// A terminal host: absorbs every arriving packet as a local delivery.
#[derive(Debug)]
pub struct SinkBehaviour {
    counters: Arc<SinkCounters>,
}

impl SinkBehaviour {
    /// Creates the sink and a counter handle the test/benchmark keeps.
    pub fn new() -> (Self, Arc<SinkCounters>) {
        let counters = Arc::new(SinkCounters::default());
        (
            Self {
                counters: Arc::clone(&counters),
            },
            counters,
        )
    }
}

impl NodeBehaviour for SinkBehaviour {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _ingress: u16, pkt: Packet) {
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes
            .fetch_add(pkt.len() as u64, Ordering::Relaxed);
        ctx.deliver_local(pkt);
    }
    fn name(&self) -> &str {
        "sink"
    }
}

/// A plain destination-keyed forwarder: looks the destination address up
/// in a host-route table, decrements the TTL, and emits on the mapped
/// port. Packets addressed to the node itself are delivered locally.
#[derive(Debug)]
pub struct StaticForwarder {
    local: IpAddr,
    routes: HashMap<IpAddr, u16>,
    forwarded: Arc<AtomicU64>,
}

impl StaticForwarder {
    /// Creates a forwarder that owns address `local`.
    pub fn new(local: IpAddr) -> Self {
        Self {
            local,
            routes: HashMap::new(),
            forwarded: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds (or replaces) the egress port for destination `dst`.
    pub fn route(&mut self, dst: IpAddr, port: u16) -> &mut Self {
        self.routes.insert(dst, port);
        self
    }

    /// Shared forwarded-packet counter.
    pub fn forwarded_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.forwarded)
    }

    fn dst_of(pkt: &Packet) -> Option<IpAddr> {
        if let Ok(ip) = pkt.ipv4() {
            return Some(IpAddr::V4(ip.dst));
        }
        if let Ok(ip6) = pkt.ipv6() {
            return Some(IpAddr::V6(ip6.dst));
        }
        None
    }
}

impl NodeBehaviour for StaticForwarder {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _ingress: u16, mut pkt: Packet) {
        let Some(dst) = Self::dst_of(&pkt) else {
            ctx.drop_packet(pkt);
            return;
        };
        if dst == self.local {
            ctx.deliver_local(pkt);
            return;
        }
        let Some(&port) = self.routes.get(&dst) else {
            ctx.drop_packet(pkt);
            return;
        };
        if decrement_ttl(&mut pkt) {
            self.forwarded.fetch_add(1, Ordering::Relaxed);
            ctx.emit(port, pkt);
        } else {
            ctx.drop_packet(pkt);
        }
    }
    fn name(&self) -> &str {
        "static-forwarder"
    }
}

/// Decrements the packet's TTL/hop-limit in place; returns `false` when
/// the packet must be dropped (expired, or not IP).
pub fn decrement_ttl(pkt: &mut Packet) -> bool {
    use netkit_packet::headers::{Ipv4Header, Ipv6Header};
    if pkt.ipv4().is_ok() {
        return matches!(Ipv4Header::decrement_ttl_in_place(pkt.l3_mut()), Ok(ttl) if ttl > 0);
    }
    if pkt.ipv6().is_ok() {
        return matches!(
            Ipv6Header::decrement_hop_limit_in_place(pkt.l3_mut()),
            Ok(hops) if hops > 0
        );
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;

    #[allow(clippy::type_complexity)]
    fn ctx_parts() -> (Vec<(u16, Packet)>, Vec<(u64, u64)>, Vec<Packet>, u64) {
        (Vec::new(), Vec::new(), Vec::new(), 0)
    }

    #[allow(clippy::type_complexity)]
    fn run_on_packet(
        b: &mut dyn NodeBehaviour,
        ingress: u16,
        pkt: Packet,
    ) -> (Vec<(u16, Packet)>, Vec<Packet>, u64) {
        let (mut em, mut ti, mut de, mut dr) = ctx_parts();
        let mut ctx = NodeCtx {
            node: NodeId(0),
            now: SimTime::from_nanos(0),
            emissions: &mut em,
            timers: &mut ti,
            deliveries: &mut de,
            drops: &mut dr,
        };
        b.on_packet(&mut ctx, ingress, pkt);
        (em, de, dr)
    }

    #[test]
    fn sink_counts_and_delivers() {
        let (mut sink, counters) = SinkBehaviour::new();
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .payload(b"xyz")
            .build();
        let len = pkt.len() as u64;
        let (_, delivered, _) = run_on_packet(&mut sink, 0, pkt);
        assert_eq!(delivered.len(), 1);
        assert_eq!(counters.received(), 1);
        assert_eq!(counters.bytes(), len);
    }

    #[test]
    fn forwarder_routes_by_destination() {
        let mut fwd = StaticForwarder::new("10.0.0.1".parse().unwrap());
        fwd.route("10.0.0.9".parse().unwrap(), 3);
        let pkt = PacketBuilder::udp_v4("10.0.0.5", "10.0.0.9", 1, 2).build();
        let (emitted, delivered, drops) = run_on_packet(&mut fwd, 0, pkt);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].0, 3);
        assert!(delivered.is_empty());
        assert_eq!(drops, 0);
        // TTL was decremented in flight.
        assert_eq!(emitted[0].1.ipv4().unwrap().ttl, 63);
    }

    #[test]
    fn forwarder_delivers_own_address_and_drops_unknown() {
        let mut fwd = StaticForwarder::new("10.0.0.1".parse().unwrap());
        let local = PacketBuilder::udp_v4("10.0.0.5", "10.0.0.1", 1, 2).build();
        let (_, delivered, _) = run_on_packet(&mut fwd, 0, local);
        assert_eq!(delivered.len(), 1);

        let unroutable = PacketBuilder::udp_v4("10.0.0.5", "10.9.9.9", 1, 2).build();
        let (emitted, _, drops) = run_on_packet(&mut fwd, 0, unroutable);
        assert!(emitted.is_empty());
        assert_eq!(drops, 1);
    }

    #[test]
    fn forwarder_drops_expired_ttl() {
        let mut fwd = StaticForwarder::new("10.0.0.1".parse().unwrap());
        fwd.route("10.0.0.9".parse().unwrap(), 0);
        let pkt = PacketBuilder::udp_v4("10.0.0.5", "10.0.0.9", 1, 2)
            .ttl(1)
            .build();
        let (emitted, _, drops) = run_on_packet(&mut fwd, 0, pkt);
        assert!(emitted.is_empty());
        assert_eq!(drops, 1);
    }

    #[test]
    fn fn_behaviour_invokes_closures() {
        let mut echo = FnBehaviour::new("echo", |ctx: &mut NodeCtx<'_>, ingress, pkt| {
            ctx.emit(ingress, pkt);
        });
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        let (emitted, _, _) = run_on_packet(&mut echo, 7, pkt);
        assert_eq!(emitted[0].0, 7);
        assert_eq!(echo.name(), "echo");
    }
}
