//! Synthetic traffic generators.
//!
//! Sources substitute for the production traces the paper's testbed would
//! have offered (see DESIGN.md §2): what the experiments need is
//! *controlled, reproducible load*, so every generator draws from the
//! simulator's seeded RNG and is deterministic for a given seed.

use netkit_packet::packet::{Packet, PacketBuilder};
use rand::rngs::SmallRng;
use rand::Rng;

/// Builds the `seq`-th packet of a flow.
pub type PacketFactory = Box<dyn FnMut(u64) -> Packet + Send>;

/// A convenience factory for a fixed-size UDP flow between two addresses.
pub fn udp_flow(
    src: &str,
    dst: &str,
    src_port: u16,
    dst_port: u16,
    payload: usize,
) -> PacketFactory {
    let src = src.to_string();
    let dst = dst.to_string();
    Box::new(move |_seq| {
        PacketBuilder::udp_v4(&src, &dst, src_port, dst_port)
            .payload_len(payload)
            .build()
    })
}

/// A source of timed packet injections.
pub trait TrafficGen: Send {
    /// Returns `(delay from the previous injection, packet)`, or `None`
    /// when the flow is exhausted.
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)>;
}

/// Constant-bit-rate: one packet every `interval_ns`.
pub struct CbrGen {
    interval_ns: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl CbrGen {
    /// `count` packets, one every `interval_ns`.
    pub fn new(interval_ns: u64, count: u64, factory: PacketFactory) -> Self {
        Self {
            interval_ns,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for CbrGen {
    fn next(&mut self, _rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((self.interval_ns, pkt))
    }
}

impl std::fmt::Debug for CbrGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CbrGen(every {}ns, {} left)",
            self.interval_ns, self.remaining
        )
    }
}

/// Poisson arrivals: exponentially distributed inter-arrival times with
/// the given mean.
pub struct PoissonGen {
    mean_interval_ns: f64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl PoissonGen {
    /// `count` packets with exponential gaps of mean `mean_interval_ns`.
    pub fn new(mean_interval_ns: u64, count: u64, factory: PacketFactory) -> Self {
        Self {
            mean_interval_ns: mean_interval_ns as f64,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for PoissonGen {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.mean_interval_ns).round() as u64;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for PoissonGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PoissonGen(mean {}ns, {} left)",
            self.mean_interval_ns, self.remaining
        )
    }
}

/// On/off bursty traffic: geometric-length bursts at a fast interval,
/// separated by long idle gaps.
pub struct BurstyGen {
    burst_interval_ns: u64,
    idle_gap_ns: u64,
    mean_burst_len: f64,
    in_burst: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl BurstyGen {
    /// `count` packets in bursts of geometric mean length
    /// `mean_burst_len`, packets within a burst `burst_interval_ns`
    /// apart, bursts separated by `idle_gap_ns`.
    pub fn new(
        burst_interval_ns: u64,
        idle_gap_ns: u64,
        mean_burst_len: f64,
        count: u64,
        factory: PacketFactory,
    ) -> Self {
        assert!(
            mean_burst_len >= 1.0,
            "bursts must average at least one packet"
        );
        Self {
            burst_interval_ns,
            idle_gap_ns,
            mean_burst_len,
            in_burst: 0,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for BurstyGen {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = if self.in_burst > 0 {
            self.in_burst -= 1;
            self.burst_interval_ns
        } else {
            // Draw a new burst length (geometric with mean m: p = 1/m).
            let p = 1.0 / self.mean_burst_len;
            let mut len = 1u64;
            while rng.gen::<f64>() > p && len < 10_000 {
                len += 1;
            }
            self.in_burst = len - 1;
            self.idle_gap_ns
        };
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for BurstyGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BurstyGen({} left)", self.remaining)
    }
}

/// Diurnal load: a CBR whose rate swings sinusoidally over a period —
/// the city's day/night cycle. The instantaneous gap is
/// `base_interval_ns / (1 + amplitude * sin(2π·t/period))`, so
/// `amplitude` 0.5 means peak hour runs 1.5× the base rate and the
/// small hours run 0.5×. Purely a clock shape: flow identity comes
/// from the supplied factory.
pub struct DiurnalGen {
    base_interval_ns: u64,
    period_ns: u64,
    amplitude: f64,
    elapsed_ns: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl DiurnalGen {
    /// `count` packets at base gap `base_interval_ns`, rate modulated
    /// by `amplitude` (clamped to `[0, 0.95]`) over `period_ns`.
    pub fn new(
        base_interval_ns: u64,
        period_ns: u64,
        amplitude: f64,
        count: u64,
        factory: PacketFactory,
    ) -> Self {
        Self {
            base_interval_ns: base_interval_ns.max(1),
            period_ns: period_ns.max(1),
            amplitude: amplitude.clamp(0.0, 0.95),
            elapsed_ns: 0,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for DiurnalGen {
    fn next(&mut self, _rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let phase = (self.elapsed_ns % self.period_ns) as f64 / self.period_ns as f64;
        let rate = 1.0 + self.amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        let gap = ((self.base_interval_ns as f64 / rate).round() as u64).max(1);
        self.elapsed_ns += gap;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for DiurnalGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DiurnalGen(base {}ns, period {}ns, {} left)",
            self.base_interval_ns, self.period_ns, self.remaining
        )
    }
}

/// Flash crowd: silence until `onset_ns` of emitted time, then a
/// `spike`-times-compressed storm for `spike_ns`, then the base rate —
/// the news-event shape that makes one destination (and, with
/// colocated flows, one shard) suddenly hot. The silence matters: the
/// crowd's flows must not exist before the onset, or the target's
/// controller would spread them before the storm ever forms.
pub struct FlashCrowdGen {
    base_interval_ns: u64,
    onset_ns: u64,
    spike_ns: u64,
    spike: u64,
    elapsed_ns: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl FlashCrowdGen {
    /// `count` packets, silent until `onset_ns`, then emitted at gap
    /// `base_interval_ns` compressed by `spike`× (≥ 1) while inside
    /// the window `[onset_ns, onset_ns + spike_ns)` and at the base
    /// gap after it closes.
    pub fn new(
        base_interval_ns: u64,
        onset_ns: u64,
        spike_ns: u64,
        spike: u64,
        count: u64,
        factory: PacketFactory,
    ) -> Self {
        Self {
            base_interval_ns: base_interval_ns.max(1),
            onset_ns,
            spike_ns,
            spike: spike.max(1),
            elapsed_ns: 0,
            remaining: count,
            seq: 0,
            factory,
        }
    }

    /// True while `t` falls in the spike window.
    fn spiking(&self, t: u64) -> bool {
        t >= self.onset_ns && t < self.onset_ns.saturating_add(self.spike_ns)
    }
}

impl TrafficGen for FlashCrowdGen {
    fn next(&mut self, _rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // A crowd is a step change: silent until onset, then the first
        // packet lands exactly at the onset instant and the rest follow
        // at the compressed gap while the window lasts.
        let gap = if self.elapsed_ns < self.onset_ns {
            self.onset_ns - self.elapsed_ns
        } else if self.spiking(self.elapsed_ns) {
            (self.base_interval_ns / self.spike).max(1)
        } else {
            self.base_interval_ns
        };
        self.elapsed_ns += gap;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for FlashCrowdGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlashCrowdGen(spike {}x at {}ns, {} left)",
            self.spike, self.onset_ns, self.remaining
        )
    }
}

/// Elephants and mice: each emission is drawn from one of two packet
/// populations — with probability `elephant_p` the next packet comes
/// from the elephant factory (few flows, big payloads), otherwise from
/// the mice factory (many small flows). Gaps are exponential like
/// [`PoissonGen`]. Deterministic for a seed: both draws come from the
/// simulator's seeded RNG.
pub struct ElephantMiceGen {
    mean_interval_ns: f64,
    elephant_p: f64,
    remaining: u64,
    elephant_seq: u64,
    mice_seq: u64,
    elephants: PacketFactory,
    mice: PacketFactory,
}

impl ElephantMiceGen {
    /// `count` packets at mean gap `mean_interval_ns`; a fraction
    /// `elephant_p` (clamped to `[0, 1]`) of emissions come from
    /// `elephants`, the rest from `mice`. Each factory sees its own
    /// sequence numbers, so it can fan its population over flows.
    pub fn new(
        mean_interval_ns: u64,
        elephant_p: f64,
        count: u64,
        elephants: PacketFactory,
        mice: PacketFactory,
    ) -> Self {
        Self {
            mean_interval_ns: mean_interval_ns.max(1) as f64,
            elephant_p: elephant_p.clamp(0.0, 1.0),
            remaining: count,
            elephant_seq: 0,
            mice_seq: 0,
            elephants,
            mice,
        }
    }
}

impl TrafficGen for ElephantMiceGen {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.mean_interval_ns).round() as u64;
        let pkt = if rng.gen::<f64>() < self.elephant_p {
            let pkt = (self.elephants)(self.elephant_seq);
            self.elephant_seq += 1;
            pkt
        } else {
            let pkt = (self.mice)(self.mice_seq);
            self.mice_seq += 1;
            pkt
        };
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for ElephantMiceGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ElephantMiceGen(p {}, {} left)",
            self.elephant_p, self.remaining
        )
    }
}

/// Shifts another generator's start: the first emission gains
/// `delay_ns`, later gaps pass through — how a scenario schedules a
/// phase (e.g. an elephant wave) to open mid-run.
pub struct Delayed {
    delay_ns: Option<u64>,
    inner: Box<dyn TrafficGen>,
}

impl Delayed {
    /// Delays `inner`'s first packet by `delay_ns`.
    pub fn new(delay_ns: u64, inner: Box<dyn TrafficGen>) -> Self {
        Self {
            delay_ns: Some(delay_ns),
            inner,
        }
    }
}

impl TrafficGen for Delayed {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        let (gap, pkt) = self.inner.next(rng)?;
        let extra = self.delay_ns.take().unwrap_or(0);
        Some((gap.saturating_add(extra), pkt))
    }
}

impl std::fmt::Debug for Delayed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Delayed({:?}ns)", self.delay_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn cbr_emits_fixed_gaps_and_count() {
        let mut g = CbrGen::new(1000, 3, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 64));
        let mut r = rng();
        let mut gaps = Vec::new();
        while let Some((gap, pkt)) = g.next(&mut r) {
            gaps.push(gap);
            assert_eq!(pkt.udp_payload_v4().unwrap().len(), 64);
        }
        assert_eq!(gaps, [1000, 1000, 1000]);
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let mut g = PoissonGen::new(1000, 4000, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8));
        let mut r = rng();
        let mut total = 0u64;
        let mut n = 0u64;
        while let Some((gap, _)) = g.next(&mut r) {
            total += gap;
            n += 1;
        }
        assert_eq!(n, 4000);
        let mean = total as f64 / n as f64;
        assert!((800.0..1200.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let run = || {
            let mut g = PoissonGen::new(500, 100, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8));
            let mut r = rng();
            let mut gaps = Vec::new();
            while let Some((gap, _)) = g.next(&mut r) {
                gaps.push(gap);
            }
            gaps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bursty_alternates_gaps() {
        let mut g = BurstyGen::new(
            10,
            100_000,
            5.0,
            1000,
            udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8),
        );
        let mut r = rng();
        let mut short = 0u64;
        let mut long = 0u64;
        while let Some((gap, _)) = g.next(&mut r) {
            if gap == 10 {
                short += 1;
            } else {
                long += 1;
            }
        }
        assert_eq!(short + long, 1000);
        assert!(long >= 100, "expected many bursts, got {long}");
        assert!(short > long, "bursts should dominate packet count");
    }

    #[test]
    fn factory_sequences() {
        let mut seqs = Vec::new();
        let mut g = CbrGen::new(
            1,
            3,
            Box::new(move |seq| {
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, (seq + 1) as u16).build()
            }),
        );
        let mut r = rng();
        while let Some((_, pkt)) = g.next(&mut r) {
            seqs.push(pkt.udp_v4().unwrap().dst_port);
        }
        assert_eq!(seqs, [1, 2, 3]);
    }

    #[test]
    fn diurnal_swings_rate_over_the_period() {
        // Period long enough to see both halves of the sine.
        let mut g = DiurnalGen::new(
            1000,
            1_000_000,
            0.5,
            2000,
            udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8),
        );
        let mut r = rng();
        let mut gaps = Vec::new();
        while let Some((gap, _)) = g.next(&mut r) {
            gaps.push(gap);
        }
        assert_eq!(gaps.len(), 2000);
        let min = *gaps.iter().min().unwrap();
        let max = *gaps.iter().max().unwrap();
        assert!(min < 1000, "peak hour gap compressed, got {min}");
        assert!(max > 1000, "night gap stretched, got {max}");
        // Deterministic: no RNG involved, a rerun matches exactly.
        let mut g2 = DiurnalGen::new(
            1000,
            1_000_000,
            0.5,
            2000,
            udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8),
        );
        let mut r2 = rng();
        let gaps2: Vec<u64> = std::iter::from_fn(|| g2.next(&mut r2).map(|(g, _)| g)).collect();
        assert_eq!(gaps, gaps2);
    }

    #[test]
    fn flash_crowd_compresses_the_spike_window() {
        let mut g = FlashCrowdGen::new(
            1000,
            100_000,
            50_000,
            10,
            1000,
            udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8),
        );
        let mut r = rng();
        let mut t = 0u64;
        let mut in_spike = 0u64;
        let mut outside = 0u64;
        while let Some((gap, _)) = g.next(&mut r) {
            t += gap;
            if (100_000..150_000).contains(&t) {
                in_spike += 1;
            } else {
                outside += 1;
            }
        }
        assert_eq!(in_spike + outside, 1000);
        // 50k ns at gap 100 holds ~500 packets; the same window at the
        // base rate would hold ~50.
        assert!(in_spike > 300, "spike window must be dense, got {in_spike}");
    }

    #[test]
    fn elephant_mice_mixes_both_populations() {
        let mut g = ElephantMiceGen::new(
            1000,
            0.2,
            1000,
            udp_flow("10.0.0.1", "10.0.0.9", 7, 443, 1024),
            Box::new(|seq| {
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.9", 10_000 + (seq % 500) as u16, 80)
                    .payload_len(64)
                    .build()
            }),
        );
        let mut r = rng();
        let mut heavy = 0u64;
        let mut light = 0u64;
        while let Some((_, pkt)) = g.next(&mut r) {
            if pkt.udp_payload_v4().unwrap().len() == 1024 {
                heavy += 1;
            } else {
                light += 1;
            }
        }
        assert_eq!(heavy + light, 1000);
        assert!((100..350).contains(&heavy), "p=0.2 of 1000, got {heavy}");
        assert!(light > heavy);
    }
}
