//! Synthetic traffic generators.
//!
//! Sources substitute for the production traces the paper's testbed would
//! have offered (see DESIGN.md §2): what the experiments need is
//! *controlled, reproducible load*, so every generator draws from the
//! simulator's seeded RNG and is deterministic for a given seed.

use netkit_packet::packet::{Packet, PacketBuilder};
use rand::rngs::SmallRng;
use rand::Rng;

/// Builds the `seq`-th packet of a flow.
pub type PacketFactory = Box<dyn FnMut(u64) -> Packet + Send>;

/// A convenience factory for a fixed-size UDP flow between two addresses.
pub fn udp_flow(
    src: &str,
    dst: &str,
    src_port: u16,
    dst_port: u16,
    payload: usize,
) -> PacketFactory {
    let src = src.to_string();
    let dst = dst.to_string();
    Box::new(move |_seq| {
        PacketBuilder::udp_v4(&src, &dst, src_port, dst_port)
            .payload_len(payload)
            .build()
    })
}

/// A source of timed packet injections.
pub trait TrafficGen: Send {
    /// Returns `(delay from the previous injection, packet)`, or `None`
    /// when the flow is exhausted.
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)>;
}

/// Constant-bit-rate: one packet every `interval_ns`.
pub struct CbrGen {
    interval_ns: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl CbrGen {
    /// `count` packets, one every `interval_ns`.
    pub fn new(interval_ns: u64, count: u64, factory: PacketFactory) -> Self {
        Self {
            interval_ns,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for CbrGen {
    fn next(&mut self, _rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((self.interval_ns, pkt))
    }
}

impl std::fmt::Debug for CbrGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CbrGen(every {}ns, {} left)",
            self.interval_ns, self.remaining
        )
    }
}

/// Poisson arrivals: exponentially distributed inter-arrival times with
/// the given mean.
pub struct PoissonGen {
    mean_interval_ns: f64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl PoissonGen {
    /// `count` packets with exponential gaps of mean `mean_interval_ns`.
    pub fn new(mean_interval_ns: u64, count: u64, factory: PacketFactory) -> Self {
        Self {
            mean_interval_ns: mean_interval_ns as f64,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for PoissonGen {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.mean_interval_ns).round() as u64;
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for PoissonGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PoissonGen(mean {}ns, {} left)",
            self.mean_interval_ns, self.remaining
        )
    }
}

/// On/off bursty traffic: geometric-length bursts at a fast interval,
/// separated by long idle gaps.
pub struct BurstyGen {
    burst_interval_ns: u64,
    idle_gap_ns: u64,
    mean_burst_len: f64,
    in_burst: u64,
    remaining: u64,
    seq: u64,
    factory: PacketFactory,
}

impl BurstyGen {
    /// `count` packets in bursts of geometric mean length
    /// `mean_burst_len`, packets within a burst `burst_interval_ns`
    /// apart, bursts separated by `idle_gap_ns`.
    pub fn new(
        burst_interval_ns: u64,
        idle_gap_ns: u64,
        mean_burst_len: f64,
        count: u64,
        factory: PacketFactory,
    ) -> Self {
        assert!(
            mean_burst_len >= 1.0,
            "bursts must average at least one packet"
        );
        Self {
            burst_interval_ns,
            idle_gap_ns,
            mean_burst_len,
            in_burst: 0,
            remaining: count,
            seq: 0,
            factory,
        }
    }
}

impl TrafficGen for BurstyGen {
    fn next(&mut self, rng: &mut SmallRng) -> Option<(u64, Packet)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let gap = if self.in_burst > 0 {
            self.in_burst -= 1;
            self.burst_interval_ns
        } else {
            // Draw a new burst length (geometric with mean m: p = 1/m).
            let p = 1.0 / self.mean_burst_len;
            let mut len = 1u64;
            while rng.gen::<f64>() > p && len < 10_000 {
                len += 1;
            }
            self.in_burst = len - 1;
            self.idle_gap_ns
        };
        let pkt = (self.factory)(self.seq);
        self.seq += 1;
        Some((gap, pkt))
    }
}

impl std::fmt::Debug for BurstyGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BurstyGen({} left)", self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn cbr_emits_fixed_gaps_and_count() {
        let mut g = CbrGen::new(1000, 3, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 64));
        let mut r = rng();
        let mut gaps = Vec::new();
        while let Some((gap, pkt)) = g.next(&mut r) {
            gaps.push(gap);
            assert_eq!(pkt.udp_payload_v4().unwrap().len(), 64);
        }
        assert_eq!(gaps, [1000, 1000, 1000]);
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let mut g = PoissonGen::new(1000, 4000, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8));
        let mut r = rng();
        let mut total = 0u64;
        let mut n = 0u64;
        while let Some((gap, _)) = g.next(&mut r) {
            total += gap;
            n += 1;
        }
        assert_eq!(n, 4000);
        let mean = total as f64 / n as f64;
        assert!((800.0..1200.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let run = || {
            let mut g = PoissonGen::new(500, 100, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8));
            let mut r = rng();
            let mut gaps = Vec::new();
            while let Some((gap, _)) = g.next(&mut r) {
                gaps.push(gap);
            }
            gaps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bursty_alternates_gaps() {
        let mut g = BurstyGen::new(
            10,
            100_000,
            5.0,
            1000,
            udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 8),
        );
        let mut r = rng();
        let mut short = 0u64;
        let mut long = 0u64;
        while let Some((gap, _)) = g.next(&mut r) {
            if gap == 10 {
                short += 1;
            } else {
                long += 1;
            }
        }
        assert_eq!(short + long, 1000);
        assert!(long >= 100, "expected many bursts, got {long}");
        assert!(short > long, "bursts should dominate packet count");
    }

    #[test]
    fn factory_sequences() {
        let mut seqs = Vec::new();
        let mut g = CbrGen::new(
            1,
            3,
            Box::new(move |seq| {
                PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, (seq + 1) as u16).build()
            }),
        );
        let mut r = rng();
        while let Some((_, pkt)) = g.next(&mut r) {
            seqs.push(pkt.udp_v4().unwrap().dst_port);
        }
        assert_eq!(seqs, [1, 2, 3]);
    }
}
