//! Real dataplanes as simulation nodes.
//!
//! [`PipelineNode`] hosts a [`SoloPipeline`] — `spec.workers` replicas
//! of a factory-built element graph, the same `ShardGraph` recipe the
//! threaded `ShardedPipeline` runs — behind the [`NodeBehaviour`]
//! interface, so a discrete-event topology can be populated with
//! *actual* stateful dataplanes (conntrack/NAT44/L4-LB chains, the
//! heavy-hitter guard, stratum-3 media filters) instead of toy
//! sinks and forwarders. Everything runs single-threaded on the
//! simulator's thread in shard-index order, so a run is bit-for-bit
//! reproducible for a seed.
//!
//! The moving parts:
//!
//! - [`EgressCollector`] — the terminal element a shard graph ends in.
//!   Packets that reach it leave the dataplane and re-enter the
//!   simulation, where the node's [`RouteAction`] function decides
//!   per packet whether to deliver locally, emit on a port, or drop.
//! - Conservation — packets a graph consumes (guard rate-limits,
//!   queue tail drops, media-filter policy, sink-mode terminations)
//!   never reappear; the node books `batch_in - egress_out` as node
//!   drops via [`NodeCtx::count_drops`], so the simulator's global
//!   identity `injected == delivered + link_drops + node_drops` stays
//!   exact with real elements in the loop. Cause tags stay available
//!   through [`PipelineNode::pipeline`]'s `drop_stats`.
//! - The autonomous control loop — [`PipelineNode::with_controller`]
//!   arms a per-node timer from sim time; each lapse retires guard
//!   windows (via registered control hooks) and runs one
//!   [`RebalanceController`] turn over the node's own meters,
//!   migrating its bucket map exactly like the threaded control loop.
//!   The timer re-arms only while traffic flows, so `run_to_idle`
//!   terminates.
//! - The control tap — [`PipelineNode::with_control_tap`] diverts
//!   packets matching a predicate (e.g. RSVP's UDP port) to an inner
//!   [`NodeBehaviour`] *before* the dataplane, and routes unknown
//!   timer tokens to it, so signaling agents ride inside pipeline
//!   nodes with their own timer discipline intact.

use std::sync::Arc;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_packet::sketch::{FlowSketch, SketchConfig};
use netkit_router::api::{BatchResult, IPacketPush, PushResult, IPACKET_PUSH};
use netkit_router::desc::{Compiler, DescBinding, ElementHandle, PipelineDesc};
use netkit_router::shard::{RebalanceController, ShardGraph, SoloPipeline};
use opencom::component::{Component, ComponentCore, ComponentDescriptor, Registrar};
use opencom::error::Result;
use opencom::ident::Version;
use opencom::meta::resources::ResourceManager;
use parking_lot::Mutex;

use crate::node::{NodeBehaviour, NodeCtx};

/// Timer token reserved for the node's own control loop; every other
/// token is routed to the control tap's inner behaviour.
const CONTROL_TOKEN: u64 = u64::MAX;

/// Terminal element for sim-hosted shard graphs: packets pushed into
/// it have left the dataplane and wait for the simulator to route
/// them. Adoptable into a capsule (so mid-graph elements can bind
/// their `out` receptacle to it) or usable directly as a bare
/// [`IPacketPush`] entry.
pub struct EgressCollector {
    core: ComponentCore,
    inbox: Mutex<Vec<Packet>>,
}

impl EgressCollector {
    /// Creates an empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "netkit.sim.EgressCollector",
                Version::new(1, 0, 0),
            )),
            inbox: Mutex::new(Vec::new()),
        })
    }

    /// Takes everything collected so far, in arrival order.
    pub fn drain(&self) -> Vec<Packet> {
        std::mem::take(&mut *self.inbox.lock())
    }

    /// Packets currently waiting.
    pub fn len(&self) -> usize {
        self.inbox.lock().len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.inbox.lock().is_empty()
    }
}

impl Default for EgressCollector {
    fn default() -> Self {
        Self {
            core: ComponentCore::new(ComponentDescriptor::new(
                "netkit.sim.EgressCollector",
                Version::new(1, 0, 0),
            )),
            inbox: Mutex::new(Vec::new()),
        }
    }
}

impl IPacketPush for EgressCollector {
    fn push(&self, pkt: Packet) -> PushResult {
        self.inbox.lock().push(pkt);
        Ok(())
    }

    fn push_batch(&self, mut batch: PacketBatch) -> BatchResult {
        let n = batch.len();
        self.inbox.lock().extend(batch.drain_all());
        BatchResult::ok(n)
    }
}

impl Component for EgressCollector {
    fn core(&self) -> &ComponentCore {
        &self.core
    }
    fn publish(self: Arc<Self>, reg: &Registrar<'_>) {
        let push: Arc<dyn IPacketPush> = self.clone();
        reg.expose(IPACKET_PUSH, &push);
    }
    fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// What the simulator does with one packet that egressed a node's
/// dataplane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteAction {
    /// Terminate at this node (count a delivery, record latency).
    Deliver,
    /// Emit on the given sim port.
    Forward(u16),
    /// Drop at this node (counted as a node drop).
    Drop,
}

/// Per-egress-packet routing decision.
pub type RouteFn = Box<dyn FnMut(&Packet) -> RouteAction + Send>;

/// Everything a shard-graph factory gets for one shard: its index,
/// the terminal collector its chain must end in, and the flow sketch
/// the drive meters this shard's bytes into — clone it into a
/// [`Guard`](netkit_router::flow::Guard) and the guard reads exactly
/// the estimates the pipeline maintains, current batch included.
pub struct ShardSite {
    /// Shard index, `0..spec.workers`.
    pub shard: usize,
    /// The shard's terminal element; bind the chain's last `out` to it
    /// (or use it directly as the graph entry for a pass-through).
    pub egress: Arc<EgressCollector>,
    /// The shard's byte sketch, maintained by the pipeline drive.
    pub sketch: Arc<FlowSketch>,
}

/// A [`NodeBehaviour`] hosting one [`SoloPipeline`] — a real sharded
/// element graph driven deterministically from simulated time.
///
/// # Examples
///
/// A two-shard conntrack node delivering everything locally:
///
/// ```
/// use netkit_kernel::shard::ShardSpec;
/// use netkit_router::api::IPACKET_PUSH;
/// use netkit_router::flow::ConnTracker;
/// use netkit_router::shard::ShardGraph;
/// use netkit_sim::pipeline::PipelineNode;
/// use netkit_sim::Simulator;
/// use netkit_sim::traffic::{udp_flow, CbrGen};
///
/// let mut sim = Simulator::new(7);
/// let host = sim.add_node(
///     Box::new(PipelineNode::build("edge", ShardSpec::new(2), |site| {
///         let (capsule, _rt) = PipelineNode::shard_capsule();
///         let tracker = ConnTracker::new();
///         let tid = capsule.adopt(tracker.clone())?;
///         let eid = capsule.adopt(site.egress.clone())?;
///         capsule.bind_simple(tid, "out", eid, IPACKET_PUSH)?;
///         Ok(ShardGraph::new(capsule, tracker).with_components(vec![tid, eid]))
///     })
///     .expect("node builds")),
/// );
/// sim.attach_source(host, Box::new(CbrGen::new(
///     1_000,
///     32,
///     udp_flow("10.0.0.1", "10.0.0.2", 4000, 80, 16),
/// )));
/// sim.run_to_idle();
/// assert_eq!(sim.stats().delivered, 32);
/// ```
pub struct PipelineNode {
    pipe: SoloPipeline,
    collectors: Vec<Arc<EgressCollector>>,
    route: RouteFn,
    controller: Option<RebalanceController>,
    control_interval_ns: u64,
    control_hooks: Vec<Box<dyn FnMut() + Send>>,
    #[allow(clippy::type_complexity)]
    tap: Option<(Box<dyn Fn(&Packet) -> bool + Send>, Box<dyn NodeBehaviour>)>,
    timer_armed: bool,
    packets_since_turn: u64,
    control_turns: u64,
    name: String,
}

impl PipelineNode {
    /// Builds a node with `spec.workers` shard replicas. The factory
    /// runs once per shard in index order; its [`ShardSite`] carries
    /// the collector the chain must terminate in and the shard's
    /// sketch. Resource accounting uses a private per-node
    /// [`ResourceManager`] (reachable via
    /// [`resources`](Self::resources)).
    ///
    /// # Errors
    ///
    /// Propagates factory failures.
    pub fn build<F>(name: &str, spec: ShardSpec, mut factory: F) -> Result<Self>
    where
        F: FnMut(&ShardSite) -> Result<ShardGraph>,
    {
        let workers = spec.workers.max(1);
        let collectors: Vec<Arc<EgressCollector>> =
            (0..workers).map(|_| EgressCollector::new()).collect();
        let sketches: Vec<Arc<FlowSketch>> = (0..workers)
            .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
            .collect();
        let rm = Arc::new(ResourceManager::new());
        let pipe = {
            let collectors = collectors.clone();
            let sketches = sketches.clone();
            SoloPipeline::build_with_sketches(name, spec, rm, sketches.clone(), move |shard| {
                factory(&ShardSite {
                    shard,
                    egress: Arc::clone(&collectors[shard]),
                    sketch: Arc::clone(&sketches[shard]),
                })
            })?
        };
        Ok(Self {
            pipe,
            collectors,
            route: Box::new(|_| RouteAction::Deliver),
            controller: None,
            control_interval_ns: 0,
            control_hooks: Vec::new(),
            tap: None,
            timer_armed: false,
            packets_since_turn: 0,
            control_turns: 0,
            name: name.to_string(),
        })
    }

    /// Builds a node whose shard graphs are **compiled from a
    /// declarative description** instead of a hand-written factory.
    ///
    /// The description may terminate chains in the external `egress`
    /// element kind; each shard's instance is that shard's
    /// [`EgressCollector`], so packets reaching it re-enter the
    /// simulation exactly as with [`build`](Self::build). Returns the
    /// node plus the [`DescBinding`] — diff the description against a
    /// successor and [`DescBinding::apply_solo`] the patch on
    /// [`pipeline_mut`](Self::pipeline_mut) to reconfigure the live
    /// dataplane mid-run, which is how the scenario engine rewires
    /// cities from configs.
    ///
    /// Guards compiled from the description read the same per-shard
    /// sketches the pipeline drive meters, current batch included.
    ///
    /// # Errors
    ///
    /// Propagates description validation/compile failures.
    pub fn build_desc(
        name: &str,
        desc: &PipelineDesc,
        spec: ShardSpec,
    ) -> Result<(Self, DescBinding)> {
        let workers = spec.workers.max(1);
        let collectors: Vec<Arc<EgressCollector>> =
            (0..workers).map(|_| EgressCollector::new()).collect();
        let sketches: Vec<Arc<FlowSketch>> = (0..workers)
            .map(|_| Arc::new(FlowSketch::new(SketchConfig::default())))
            .collect();
        let compiler = {
            let collectors = collectors.clone();
            Compiler::new().external("egress", move |shard| {
                (
                    collectors[shard].clone() as Arc<dyn Component>,
                    ElementHandle::Plain,
                )
            })
        };
        let rm = Arc::new(ResourceManager::new());
        let (pipe, binding) = compiler.build_solo_with_sketches(desc, spec, rm, sketches)?;
        Ok((
            Self {
                pipe,
                collectors,
                route: Box::new(|_| RouteAction::Deliver),
                controller: None,
                control_interval_ns: 0,
                control_hooks: Vec::new(),
                tap: None,
                timer_armed: false,
                packets_since_turn: 0,
                control_turns: 0,
                name: name.to_string(),
            },
            binding,
        ))
    }

    /// A fresh capsule (plus the runtime keeping it alive) with the
    /// packet interfaces registered — the standard boilerplate at the
    /// top of every shard factory.
    pub fn shard_capsule() -> (
        Arc<opencom::capsule::Capsule>,
        Arc<opencom::runtime::Runtime>,
    ) {
        let rt = opencom::runtime::Runtime::new();
        netkit_router::api::register_packet_interfaces(&rt);
        let capsule = opencom::capsule::Capsule::new("shard", &rt);
        (capsule, rt)
    }

    /// Sets the per-egress-packet routing decision (default: deliver
    /// everything locally).
    pub fn with_route(mut self, route: RouteFn) -> Self {
        self.route = route;
        self
    }

    /// Replaces the routing decision on a built node — how a topology
    /// layer installs next-hop tables it can only compute after every
    /// node exists.
    pub fn set_route(&mut self, route: RouteFn) {
        self.route = route;
    }

    /// Attaches the autonomous control loop: every `interval_ns` of
    /// simulated time (while traffic flows), run the registered
    /// control hooks and one controller turn over the node's meters.
    pub fn with_controller(mut self, ctl: RebalanceController, interval_ns: u64) -> Self {
        self.controller = Some(ctl);
        self.control_interval_ns = interval_ns.max(1);
        self
    }

    /// Registers a hook run at every control lapse, before the
    /// decision — the place for
    /// [`Guard::retire_window`](netkit_router::flow::Guard::retire_window)
    /// calls and other window upkeep.
    pub fn with_control_hook(mut self, hook: Box<dyn FnMut() + Send>) -> Self {
        self.control_hooks.push(hook);
        self
    }

    /// Diverts arriving packets matching `pred` to `inner` (a full
    /// [`NodeBehaviour`], e.g. a signaling agent) before the
    /// dataplane; timer tokens the pipeline does not own are routed to
    /// `inner` too.
    pub fn with_control_tap(
        mut self,
        pred: Box<dyn Fn(&Packet) -> bool + Send>,
        inner: Box<dyn NodeBehaviour>,
    ) -> Self {
        self.tap = Some((pred, inner));
        self
    }

    /// The hosted pipeline.
    pub fn pipeline(&self) -> &SoloPipeline {
        &self.pipe
    }

    /// The hosted pipeline, mutably (install maps, run manual turns).
    pub fn pipeline_mut(&mut self) -> &mut SoloPipeline {
        &mut self.pipe
    }

    /// The per-node resource manager backing the pipeline's task.
    pub fn resources(&self) -> Arc<ResourceManager> {
        // SoloPipeline holds the Arc; re-derive from the task's home.
        Arc::clone(self.pipe.resources())
    }

    /// The node's controller, if attached.
    pub fn controller(&self) -> Option<&RebalanceController> {
        self.controller.as_ref()
    }

    /// Completed control-loop lapses.
    pub fn control_turns(&self) -> u64 {
        self.control_turns
    }

    /// Downcasts the control tap's inner behaviour.
    pub fn tap_mut<B: NodeBehaviour>(&mut self) -> Option<&mut B> {
        self.tap
            .as_mut()
            .and_then(|(_, inner)| (inner.as_mut() as &mut dyn std::any::Any).downcast_mut::<B>())
    }

    /// Runs the dataplane over `pkts` and routes the egress. The
    /// conservation book: every packet is delivered, emitted, or
    /// counted as a drop — graph-consumed packets via
    /// [`NodeCtx::count_drops`], routed drops via `drop_packet`.
    fn run_data(&mut self, ctx: &mut NodeCtx<'_>, pkts: Vec<Packet>) {
        if pkts.is_empty() {
            return;
        }
        let n_in = pkts.len() as u64;
        self.packets_since_turn += n_in;
        self.pipe.dispatch(PacketBatch::from_packets(pkts));
        let mut n_out = 0u64;
        for collector in &self.collectors {
            if collector.is_empty() {
                continue;
            }
            for pkt in collector.drain() {
                n_out += 1;
                match (self.route)(&pkt) {
                    RouteAction::Deliver => ctx.deliver_local(pkt),
                    RouteAction::Forward(port) => ctx.emit(port, pkt),
                    RouteAction::Drop => ctx.drop_packet(pkt),
                }
            }
        }
        ctx.count_drops(n_in.saturating_sub(n_out));
        if self.controller.is_some() && !self.timer_armed {
            ctx.set_timer(self.control_interval_ns, CONTROL_TOKEN);
            self.timer_armed = true;
        }
    }
}

impl NodeBehaviour for PipelineNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkt: Packet) {
        self.on_batch(ctx, port, vec![pkt]);
    }

    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, port: u16, pkts: Vec<Packet>) {
        let data = if let Some((pred, inner)) = self.tap.as_mut() {
            let mut data = Vec::with_capacity(pkts.len());
            let mut tapped = Vec::new();
            for pkt in pkts {
                if pred(&pkt) {
                    tapped.push(pkt);
                } else {
                    data.push(pkt);
                }
            }
            if !tapped.is_empty() {
                inner.on_batch(ctx, port, tapped);
            }
            data
        } else {
            pkts
        };
        self.run_data(ctx, data);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token != CONTROL_TOKEN {
            if let Some((_, inner)) = self.tap.as_mut() {
                inner.on_timer(ctx, token);
            }
            return;
        }
        for hook in &mut self.control_hooks {
            hook();
        }
        if let Some(ctl) = self.controller.as_mut() {
            self.pipe.control_turn(ctl);
            self.control_turns += 1;
        }
        // Lapse discipline: stay armed only while traffic flows, so
        // run_to_idle terminates once sources exhaust.
        if self.packets_since_turn > 0 {
            ctx.set_timer(self.control_interval_ns, CONTROL_TOKEN);
            self.packets_since_turn = 0;
        } else {
            self.timer_armed = false;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SinkBehaviour;
    use crate::traffic::{udp_flow, CbrGen};
    use crate::{LinkSpec, Simulator};
    use netkit_router::shard::{RebalancePolicy, WeightedRebalancePolicy};

    /// Pass-through node: every shard graph is just the collector.
    fn passthrough(name: &str, workers: usize) -> PipelineNode {
        PipelineNode::build(name, ShardSpec::new(workers), |site| {
            let (capsule, _rt) = PipelineNode::shard_capsule();
            let entry: Arc<dyn IPacketPush> = site.egress.clone();
            Ok(ShardGraph::new(capsule, entry))
        })
        .expect("node builds")
    }

    #[test]
    fn passthrough_node_delivers_and_conserves() {
        let mut sim = Simulator::new(1);
        let host = sim.add_node(Box::new(passthrough("edge", 2)));
        sim.attach_source(
            host,
            Box::new(CbrGen::new(
                500,
                64,
                udp_flow("10.0.0.1", "10.0.0.2", 4000, 80, 16),
            )),
        );
        sim.run_to_idle();
        let stats = sim.stats();
        assert_eq!(stats.injected, 64);
        assert_eq!(stats.delivered, 64);
        assert_eq!(stats.node_drops, 0);
        assert_eq!(
            stats.injected,
            stats.delivered + stats.link_drops + stats.node_drops
        );
    }

    #[test]
    fn graph_consumed_packets_book_as_node_drops() {
        // A graph whose entry rejects everything: the node must book
        // every packet as a node drop and conservation must close.
        use netkit_router::api::{PushError, PushResult};
        struct RejectAll;
        impl IPacketPush for RejectAll {
            fn push(&self, _pkt: Packet) -> PushResult {
                Err(PushError::QueueFull)
            }
        }
        let node = PipelineNode::build("reject", ShardSpec::single(), |_site| {
            let (capsule, _rt) = PipelineNode::shard_capsule();
            let entry: Arc<dyn IPacketPush> = Arc::new(RejectAll);
            Ok(ShardGraph::new(capsule, entry))
        })
        .expect("node builds");
        let mut sim = Simulator::new(1);
        let host = sim.add_node(Box::new(node));
        sim.attach_source(
            host,
            Box::new(CbrGen::new(
                500,
                32,
                udp_flow("10.0.0.1", "10.0.0.2", 4001, 80, 16),
            )),
        );
        sim.run_to_idle();
        let stats = sim.stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.node_drops, 32);
        assert_eq!(
            stats.injected,
            stats.delivered + stats.link_drops + stats.node_drops
        );
        // The cause book survives the boundary.
        let behaviour = sim.node_behaviour_mut::<PipelineNode>(host).unwrap();
        assert_eq!(behaviour.pipeline().drop_stats().graph, 32);
    }

    #[test]
    fn control_loop_runs_and_lapses() {
        let ctl = RebalanceController::new(
            WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 8,
                },
                pressure_weight: 0.0,
                decay: 0.5,
            },
            0,
        );
        let node = passthrough("ctl", 2).with_controller(ctl, 10_000);
        let mut sim = Simulator::new(1);
        let host = sim.add_node(Box::new(node));
        sim.attach_source(
            host,
            Box::new(CbrGen::new(
                1_000,
                256,
                udp_flow("10.0.0.1", "10.0.0.2", 4002, 80, 16),
            )),
        );
        // run_to_idle terminating at all proves the lapse discipline.
        sim.run_to_idle();
        let behaviour = sim.node_behaviour_mut::<PipelineNode>(host).unwrap();
        assert!(behaviour.control_turns() > 0, "control loop must have run");
        assert_eq!(sim.stats().delivered, 256);
    }

    #[test]
    fn desc_built_node_runs_and_repatches_mid_run() {
        // The sim node compiled from a description, reconfigured
        // mid-run by diffing against a successor description — the
        // scenario engine's "cities rewire from configs" path.
        fn base_desc() -> PipelineDesc {
            PipelineDesc::new("sim-edge")
                .element("ct", "conntrack")
                .element("egress", "egress")
                .ingress("ct")
                .edge("ct", "egress")
        }
        let (node, mut binding) =
            PipelineNode::build_desc("edge", &base_desc(), ShardSpec::new(2)).unwrap();
        let mut sim = Simulator::new(3);
        let host = sim.add_node(Box::new(node));
        sim.attach_source(
            host,
            Box::new(CbrGen::new(
                500,
                32,
                udp_flow("10.0.0.1", "10.0.0.2", 4005, 80, 16),
            )),
        );
        sim.run_to_idle();
        assert_eq!(sim.stats().delivered, 32);

        // Structural patch: insert a guard upstream of the tracker.
        let next = PipelineDesc::new("sim-edge")
            .element("ct", "conntrack")
            .element_with("guard", "guard", &[("byte_threshold", (1u64 << 20).into())])
            .element("egress", "egress")
            .ingress("guard")
            .edge("guard", "ct")
            .edge("ct", "egress");
        let patch = binding.diff_to(&next).unwrap();
        assert!(!patch.param_only());
        let behaviour = sim.node_behaviour_mut::<PipelineNode>(host).unwrap();
        binding
            .apply_solo(behaviour.pipeline_mut(), &patch)
            .unwrap();

        sim.attach_source(
            host,
            Box::new(CbrGen::new(
                500,
                16,
                udp_flow("10.0.0.3", "10.0.0.4", 4006, 80, 16),
            )),
        );
        sim.run_to_idle();
        let stats = sim.stats();
        assert_eq!(stats.delivered, 48, "patched dataplane keeps delivering");
        assert_eq!(
            stats.injected,
            stats.delivered + stats.link_drops + stats.node_drops
        );
    }

    #[test]
    fn forwarding_route_emits_on_port() {
        let node = passthrough("fwd", 1).with_route(Box::new(|_| RouteAction::Forward(0)));
        let mut sim = Simulator::new(1);
        let fwd = sim.add_node(Box::new(node));
        let (sink, counters) = SinkBehaviour::new();
        let dst = sim.add_node(Box::new(sink));
        sim.connect(fwd, dst, LinkSpec::default()); // fwd port 0 -> dst
        sim.attach_source(
            fwd,
            Box::new(CbrGen::new(
                500,
                16,
                udp_flow("10.0.0.1", "10.0.0.2", 4003, 80, 16),
            )),
        );
        sim.run_to_idle();
        assert_eq!(counters.received(), 16);
        assert_eq!(sim.stats().delivered, 16);
        assert!(sim.stats().forwarded >= 16);
    }
}
