//! Topology builders and all-pairs next-hop computation.
//!
//! Each builder adds nodes (with caller-supplied behaviours) and wires
//! them with a common [`LinkSpec`]; [`next_hops`] then computes, for every
//! node, the egress port towards every other node over shortest paths —
//! the piece router adapters need to fill their LPM tables.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::link::{LinkId, LinkSpec};
use crate::node::{NodeBehaviour, NodeId};
use crate::Simulator;

/// The nodes and links created by a builder.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Created nodes, in builder order.
    pub nodes: Vec<NodeId>,
    /// Created links, in builder order.
    pub links: Vec<LinkId>,
}

/// Supplies the behaviour for the `i`-th node of a topology.
pub type BehaviourFactory<'a> = dyn FnMut(usize) -> Box<dyn NodeBehaviour> + 'a;

/// A chain: `0 — 1 — … — n-1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(
    sim: &mut Simulator,
    n: usize,
    spec: LinkSpec,
    make: &mut BehaviourFactory<'_>,
) -> Topology {
    assert!(n > 0, "a line needs at least one node");
    let mut topo = Topology::default();
    for i in 0..n {
        topo.nodes.push(sim.add_node(make(i)));
    }
    for w in topo.nodes.windows(2) {
        topo.links.push(sim.connect(w[0], w[1], spec));
    }
    topo
}

/// A star: node 0 is the hub, nodes `1..=leaves` hang off it.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star(
    sim: &mut Simulator,
    leaves: usize,
    spec: LinkSpec,
    make: &mut BehaviourFactory<'_>,
) -> Topology {
    assert!(leaves > 0, "a star needs at least one leaf");
    let mut topo = Topology::default();
    topo.nodes.push(sim.add_node(make(0)));
    for i in 1..=leaves {
        let leaf = sim.add_node(make(i));
        topo.links.push(sim.connect(topo.nodes[0], leaf, spec));
        topo.nodes.push(leaf);
    }
    topo
}

/// A dumbbell: `left` hosts on one router, `right` hosts on another, a
/// single bottleneck link between the two routers.
///
/// Node order: router L (0), router R (1), left hosts, right hosts.
///
/// # Panics
///
/// Panics if either side is empty.
pub fn dumbbell(
    sim: &mut Simulator,
    left: usize,
    right: usize,
    edge: LinkSpec,
    bottleneck: LinkSpec,
    make: &mut BehaviourFactory<'_>,
) -> Topology {
    assert!(left > 0 && right > 0, "both sides need hosts");
    let mut topo = Topology::default();
    let rl = sim.add_node(make(0));
    let rr = sim.add_node(make(1));
    topo.nodes.push(rl);
    topo.nodes.push(rr);
    topo.links.push(sim.connect(rl, rr, bottleneck));
    for i in 0..left {
        let h = sim.add_node(make(2 + i));
        topo.links.push(sim.connect(h, rl, edge));
        topo.nodes.push(h);
    }
    for i in 0..right {
        let h = sim.add_node(make(2 + left + i));
        topo.links.push(sim.connect(h, rr, edge));
        topo.nodes.push(h);
    }
    topo
}

/// A random connected graph: a random spanning tree (guaranteeing
/// connectivity) plus extra edges added with probability `extra_p` per
/// node pair. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `n == 0` or `extra_p` is outside `[0, 1]`.
pub fn random_connected(
    sim: &mut Simulator,
    n: usize,
    extra_p: f64,
    seed: u64,
    spec: LinkSpec,
    make: &mut BehaviourFactory<'_>,
) -> Topology {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&extra_p), "probability out of range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut topo = Topology::default();
    for i in 0..n {
        topo.nodes.push(sim.add_node(make(i)));
    }
    // Random spanning tree: attach node i to a uniformly chosen earlier
    // node.
    let mut connected: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        connected.push((parent, i));
        topo.links
            .push(sim.connect(topo.nodes[parent], topo.nodes[i], spec));
    }
    // Extra edges.
    for a in 0..n {
        for b in (a + 1)..n {
            if connected.contains(&(a, b)) {
                continue;
            }
            if rng.gen::<f64>() < extra_p {
                topo.links
                    .push(sim.connect(topo.nodes[a], topo.nodes[b], spec));
            }
        }
    }
    topo
}

/// For every node, the egress port towards every other node along a
/// shortest path (BFS, hop metric; among equal-cost candidates the
/// lowest-numbered port wins). `result[src][dst]` is `None` for
/// unreachable pairs and for `src == dst`.
pub fn next_hops(sim: &Simulator) -> Vec<Vec<Option<u16>>> {
    let adj = sim.adjacency();
    let n = adj.len();
    let mut all = Vec::with_capacity(n);
    for src in 0..n {
        // BFS from src, remembering the first hop that discovered each
        // node.
        let mut first_port: Vec<Option<u16>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[src] = true;
        let mut queue = VecDeque::new();
        for &(port, peer) in &adj[src] {
            if !seen[peer.0] {
                seen[peer.0] = true;
                first_port[peer.0] = Some(port);
                queue.push_back(peer.0);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &(_, peer) in &adj[at] {
                if !seen[peer.0] {
                    seen[peer.0] = true;
                    first_port[peer.0] = first_port[at];
                    queue.push_back(peer.0);
                }
            }
        }
        all.push(first_port);
    }
    all
}

/// Hop distance between every pair of nodes (BFS), `None` when
/// unreachable.
pub fn hop_counts(sim: &Simulator) -> Vec<Vec<Option<u32>>> {
    let adj = sim.adjacency();
    let n = adj.len();
    let mut all = Vec::with_capacity(n);
    for src in 0..n {
        let mut dist: Vec<Option<u32>> = vec![None; n];
        dist[src] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(at) = queue.pop_front() {
            let d = dist[at].expect("visited");
            for &(_, peer) in &adj[at] {
                if dist[peer.0].is_none() {
                    dist[peer.0] = Some(d + 1);
                    queue.push_back(peer.0);
                }
            }
        }
        all.push(dist);
    }
    all
}

/// The conventional address of the `i`-th simulator node in the
/// experiments: `10.(i / 256).(i % 256).1`.
pub fn node_addr(i: usize) -> std::net::Ipv4Addr {
    assert!(i < 65_536, "node index too large for the addressing scheme");
    std::net::Ipv4Addr::new(10, (i / 256) as u8, (i % 256) as u8, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{FnBehaviour, NodeCtx};
    use netkit_packet::packet::Packet;

    fn noop() -> Box<dyn NodeBehaviour> {
        Box::new(FnBehaviour::new(
            "noop",
            |ctx: &mut NodeCtx<'_>, _, pkt: Packet| ctx.deliver_local(pkt),
        ))
    }

    #[test]
    fn line_has_n_minus_one_links() {
        let mut sim = Simulator::new(1);
        let topo = line(&mut sim, 5, LinkSpec::lan(), &mut |_| noop());
        assert_eq!(topo.nodes.len(), 5);
        assert_eq!(topo.links.len(), 4);
        let dists = hop_counts(&sim);
        assert_eq!(dists[0][4], Some(4));
    }

    #[test]
    fn star_distances() {
        let mut sim = Simulator::new(1);
        let topo = star(&mut sim, 6, LinkSpec::lan(), &mut |_| noop());
        assert_eq!(topo.nodes.len(), 7);
        let dists = hop_counts(&sim);
        for leaf in 1..7 {
            assert_eq!(dists[0][leaf], Some(1));
            assert_eq!(dists[leaf][(leaf % 6) + 1].unwrap_or(2), 2);
        }
    }

    #[test]
    fn dumbbell_bottleneck_is_between_routers() {
        let mut sim = Simulator::new(1);
        let bottleneck = LinkSpec {
            latency_ns: 1,
            bandwidth_bps: 42,
            queue_pkts: 1,
        };
        let topo = dumbbell(&mut sim, 2, 3, LinkSpec::lan(), bottleneck, &mut |_| noop());
        assert_eq!(topo.nodes.len(), 2 + 2 + 3);
        // First link is the bottleneck.
        assert_eq!(sim.link(topo.links[0]).spec().bandwidth_bps, 42);
        let dists = hop_counts(&sim);
        // Host on the left to host on the right: 3 hops.
        assert_eq!(dists[2][5], Some(3));
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let build = |seed| {
            let mut sim = Simulator::new(seed);
            let topo = random_connected(&mut sim, 20, 0.1, seed, LinkSpec::lan(), &mut |_| noop());
            let dists = hop_counts(&sim);
            let reachable = dists[0].iter().filter(|d| d.is_some()).count();
            (topo.links.len(), reachable)
        };
        let (links, reachable) = build(11);
        assert_eq!(reachable, 20, "spanning tree guarantees connectivity");
        assert!(links >= 19);
        assert_eq!(build(11), build(11));
    }

    #[test]
    fn next_hops_agree_with_distances() {
        let mut sim = Simulator::new(1);
        line(&mut sim, 4, LinkSpec::lan(), &mut |_| noop());
        let hops = next_hops(&sim);
        // Node 0's route to everything goes out its only port (0).
        assert_eq!(hops[0][1], Some(0));
        assert_eq!(hops[0][3], Some(0));
        assert_eq!(hops[0][0], None);
        // Middle node 1: port 0 leads back to 0, port 1 leads to 2 and 3.
        assert_eq!(hops[1][0], Some(0));
        assert_eq!(hops[1][2], Some(1));
        assert_eq!(hops[1][3], Some(1));
    }

    #[test]
    fn node_addresses_are_stable() {
        assert_eq!(node_addr(0), std::net::Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(node_addr(300), std::net::Ipv4Addr::new(10, 1, 44, 1));
    }
}
