//! Point-to-point links: latency + serialisation + bounded queue.
//!
//! A link is full-duplex; each direction has an independent transmit
//! queue. The model is analytic: a frame offered at time `t` starts
//! serialising at `max(t, busy_until)`, occupies the wire for
//! `bytes × 8 / bandwidth`, and arrives `latency` later. If more than
//! `queue_pkts` frames are waiting to start, the frame is dropped
//! (drop-tail at the device queue).

use std::collections::VecDeque;

use netkit_kernel::time::SimTime;

/// Identifies a link within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Static link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay in nanoseconds.
    pub latency_ns: u64,
    /// Wire rate in bits per second.
    pub bandwidth_bps: u64,
    /// Transmit queue depth (frames) per direction.
    pub queue_pkts: usize,
}

impl LinkSpec {
    /// A fast LAN-ish default: 1 Gbit/s, 50 µs, 64-frame queues.
    pub fn lan() -> Self {
        Self {
            latency_ns: 50_000,
            bandwidth_bps: 1_000_000_000,
            queue_pkts: 64,
        }
    }

    /// A WAN-ish default: 100 Mbit/s, 5 ms, 256-frame queues.
    pub fn wan() -> Self {
        Self {
            latency_ns: 5_000_000,
            bandwidth_bps: 100_000_000,
            queue_pkts: 256,
        }
    }

    /// Serialisation time of `bytes` on this link.
    pub fn ser_nanos(&self, bytes: usize) -> u64 {
        if self.bandwidth_bps == 0 {
            return 0;
        }
        (bytes as u128 * 8 * 1_000_000_000 / self.bandwidth_bps as u128) as u64
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::lan()
    }
}

/// One direction's dynamic state.
#[derive(Debug, Default)]
struct Direction {
    /// Time the wire becomes free.
    busy_until: u64,
    /// Start times of frames accepted but not yet begun (pruned lazily).
    waiting_starts: VecDeque<u64>,
    /// Frames sent on this direction.
    sent: u64,
    /// Frames dropped on this direction.
    dropped: u64,
}

/// Per-direction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted and (eventually) delivered.
    pub sent: u64,
    /// Frames dropped at the transmit queue.
    pub dropped: u64,
}

/// Dynamic state of a full-duplex link.
#[derive(Debug)]
pub struct LinkState {
    spec: LinkSpec,
    /// Endpoints as `(node index, port index)` pairs.
    pub(crate) ends: [(usize, u16); 2],
    dirs: [Direction; 2],
}

/// Outcome of offering a frame to a link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Accepted; the frame arrives at the far end at this time.
    Arrives(SimTime),
    /// The transmit queue was full; the frame is gone.
    Dropped,
}

impl LinkState {
    pub(crate) fn new(spec: LinkSpec, a: (usize, u16), b: (usize, u16)) -> Self {
        Self {
            spec,
            ends: [a, b],
            dirs: [Direction::default(), Direction::default()],
        }
    }

    /// The link's parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// The direction index for traffic *leaving* `node`, if the node is an
    /// endpoint.
    pub(crate) fn direction_from(&self, node: usize) -> Option<usize> {
        if self.ends[0].0 == node {
            Some(0)
        } else if self.ends[1].0 == node {
            Some(1)
        } else {
            None
        }
    }

    /// The `(node, port)` at the far end of direction `dir`.
    pub(crate) fn far_end(&self, dir: usize) -> (usize, u16) {
        self.ends[1 - dir]
    }

    /// Offers a frame of `bytes` to direction `dir` at `now`.
    pub(crate) fn offer(&mut self, dir: usize, now: SimTime, bytes: usize) -> TxOutcome {
        let d = &mut self.dirs[dir];
        let now_ns = now.as_nanos();
        while d.waiting_starts.front().is_some_and(|s| *s <= now_ns) {
            d.waiting_starts.pop_front();
        }
        if d.waiting_starts.len() >= self.spec.queue_pkts {
            d.dropped += 1;
            return TxOutcome::Dropped;
        }
        let start = d.busy_until.max(now_ns);
        let done = start + self.spec.ser_nanos(bytes);
        d.busy_until = done;
        if start > now_ns {
            d.waiting_starts.push_back(start);
        }
        d.sent += 1;
        TxOutcome::Arrives(SimTime::from_nanos(done + self.spec.latency_ns))
    }

    /// Counters for direction `dir` (0 = from the first endpoint).
    pub fn stats(&self, dir: usize) -> LinkStats {
        LinkStats {
            sent: self.dirs[dir].sent,
            dropped: self.dirs[dir].dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn ser_nanos_scales_with_size_and_rate() {
        let spec = LinkSpec {
            latency_ns: 0,
            bandwidth_bps: 8_000_000_000,
            queue_pkts: 4,
        };
        assert_eq!(spec.ser_nanos(1000), 1000); // 8 Gbit/s => 1ns per byte
        let slow = LinkSpec {
            latency_ns: 0,
            bandwidth_bps: 8_000,
            queue_pkts: 4,
        };
        assert_eq!(slow.ser_nanos(1), 1_000_000);
    }

    #[test]
    fn arrival_includes_latency_and_serialisation() {
        let spec = LinkSpec {
            latency_ns: 100,
            bandwidth_bps: 8_000_000_000,
            queue_pkts: 4,
        };
        let mut link = LinkState::new(spec, (0, 0), (1, 0));
        match link.offer(0, t(0), 1000) {
            TxOutcome::Arrives(at) => assert_eq!(at.as_nanos(), 1000 + 100),
            TxOutcome::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn back_to_back_frames_queue_behind_each_other() {
        let spec = LinkSpec {
            latency_ns: 0,
            bandwidth_bps: 8_000_000_000,
            queue_pkts: 16,
        };
        let mut link = LinkState::new(spec, (0, 0), (1, 0));
        let a1 = link.offer(0, t(0), 1000);
        let a2 = link.offer(0, t(0), 1000);
        assert_eq!(a1, TxOutcome::Arrives(t(1000)));
        assert_eq!(
            a2,
            TxOutcome::Arrives(t(2000)),
            "second frame waits for the first"
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let spec = LinkSpec {
            latency_ns: 0,
            bandwidth_bps: 8_000_000,
            queue_pkts: 2,
        };
        let mut link = LinkState::new(spec, (0, 0), (1, 0));
        // Frame 1 starts immediately (not queued); frames 2 and 3 wait.
        assert!(matches!(link.offer(0, t(0), 1000), TxOutcome::Arrives(_)));
        assert!(matches!(link.offer(0, t(0), 1000), TxOutcome::Arrives(_)));
        assert!(matches!(link.offer(0, t(0), 1000), TxOutcome::Arrives(_)));
        // Queue (2 waiting) is now full.
        assert_eq!(link.offer(0, t(0), 1000), TxOutcome::Dropped);
        assert_eq!(link.stats(0).dropped, 1);
        assert_eq!(link.stats(0).sent, 3);
    }

    #[test]
    fn directions_are_independent() {
        let spec = LinkSpec {
            latency_ns: 10,
            bandwidth_bps: 8_000_000_000,
            queue_pkts: 1,
        };
        let mut link = LinkState::new(spec, (7, 0), (9, 1));
        assert_eq!(link.direction_from(7), Some(0));
        assert_eq!(link.direction_from(9), Some(1));
        assert_eq!(link.direction_from(3), None);
        assert_eq!(link.far_end(0), (9, 1));
        assert_eq!(link.far_end(1), (7, 0));
        let a = link.offer(0, t(0), 100);
        let b = link.offer(1, t(0), 100);
        assert_eq!(a, b, "directions do not contend");
    }

    #[test]
    fn waiting_queue_drains_with_time() {
        let spec = LinkSpec {
            latency_ns: 0,
            bandwidth_bps: 8_000_000,
            queue_pkts: 1,
        };
        let mut link = LinkState::new(spec, (0, 0), (1, 0));
        // 1000 bytes at 1 byte/µs => 1ms serialisation.
        assert!(matches!(link.offer(0, t(0), 1000), TxOutcome::Arrives(_)));
        assert!(matches!(link.offer(0, t(0), 1000), TxOutcome::Arrives(_)));
        assert_eq!(link.offer(0, t(0), 1000), TxOutcome::Dropped);
        // After the first two finished, capacity is back.
        assert!(matches!(
            link.offer(0, t(3_000_000), 1000),
            TxOutcome::Arrives(_)
        ));
    }
}
