//! RSS demultiplexing inside the deterministic simulator.
//!
//! The simulator is single-threaded by design (reproducibility beats
//! realism for architecture experiments), so multi-queue parallelism is
//! *modelled*, not executed: a [`ShardedBehaviour`] wraps one inner
//! [`NodeBehaviour`] per worker of a `ShardSpec` and steers every
//! arriving packet through the same bucket → shard table the real
//! dataplane uses (`netkit_packet::steer::BucketMap`; the default is
//! the identity table, i.e. classic RSS `shard_of` steering). Shards
//! are visited in index order, so a run is bit-for-bit deterministic
//! while still exercising the per-queue state separation — per-shard
//! pipelines, counters, and drops — that the threaded runtime has.
//! Installing a rebalanced table with [`ShardedBehaviour::set_map`]
//! between deliveries models the threaded runtime's quiesce-boundary
//! migration (the sim *is* always at a batch boundary between events).
//!
//! The behaviour also carries the same per-bucket
//! [`BucketLoad`] meter the threaded
//! pipeline feeds worker-side (recorded at demux time, only when
//! sharded), with the same peek / decay / retire window discipline —
//! so the **autonomous control loop's decision core**
//! (`netkit_router::shard::control::RebalanceController`) can be
//! driven from the sim's event loop, deterministically: peek
//! [`ShardedBehaviour::bucket_loads`], decide, then
//! [`ShardedBehaviour::set_map`] +
//! [`ShardedBehaviour::retire_bucket_loads`] on a migration or
//! [`ShardedBehaviour::decay_bucket_loads`] on a hold. Same loop, same
//! evidence semantics, no threads.

use std::fmt;

use netkit_kernel::shard::ShardSpec;
use netkit_packet::batch::PacketBatch;
use netkit_packet::packet::Packet;
use netkit_packet::sketch::{FlowSketch, FlowSketchWindow, HeavyHitter, SketchConfig};
use netkit_packet::steer::{BucketLoad, BucketMap};

use crate::node::{NodeBehaviour, NodeCtx};

/// One inner behaviour per shard, fed flow-affinely. See the module
/// docs.
pub struct ShardedBehaviour {
    name: String,
    shards: Vec<Box<dyn NodeBehaviour>>,
    map: BucketMap,
    /// Per-bucket observation meter (fed at demux time when sharded;
    /// a single-shard behaviour has nothing to rebalance, mirroring
    /// the threaded pipeline's metering gate).
    load: BucketLoad,
    /// Per-flow **byte** meter (count-min + Space-Saving top-k), fed
    /// at demux time under the same sharded-only gate — the sim-side
    /// analogue of the threaded pipeline's per-shard sketches, folded
    /// into one (the demux is the only writer here), with the same
    /// peek / decay / retire window discipline.
    sketch: FlowSketch,
}

impl ShardedBehaviour {
    /// Builds `spec.workers` inner behaviours via `factory(shard)`
    /// (called in shard order). A zero-worker spec is normalised to one
    /// shard, matching the worker pool and the NIC queue clamp.
    pub fn new(
        name: impl Into<String>,
        spec: ShardSpec,
        mut factory: impl FnMut(usize) -> Box<dyn NodeBehaviour>,
    ) -> Self {
        let workers = spec.workers.max(1);
        Self {
            name: name.into(),
            shards: (0..workers).map(&mut factory).collect(),
            map: BucketMap::identity(workers),
            load: BucketLoad::new(),
            sketch: FlowSketch::new(SketchConfig::default()),
        }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The installed bucket → shard steering table.
    pub fn map(&self) -> &BucketMap {
        &self.map
    }

    /// Installs a new steering table — the sim-side analogue of the
    /// threaded pipeline's `install_bucket_map` (no quiesce needed: the
    /// single-threaded driver is always between batches here).
    ///
    /// # Panics
    ///
    /// Panics if `map` targets a different shard count than this
    /// behaviour wraps.
    pub fn set_map(&mut self, map: BucketMap) {
        assert_eq!(
            map.shards(),
            self.shards.len(),
            "bucket map targets {} shards, behaviour has {}",
            map.shards(),
            self.shards.len()
        );
        self.map = map;
    }

    /// Snapshot (peek, non-destructive) of the per-bucket packet
    /// meters — the inspect arm of a sim-driven control loop.
    pub fn bucket_loads(&self) -> Vec<u64> {
        self.load.snapshot()
    }

    /// Subtracts a previously peeked window from the meter — the
    /// commit half of peek-then-commit, called right after the
    /// [`Self::set_map`] a migration decision produced.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not `RSS_BUCKETS` long.
    pub fn retire_bucket_loads(&self, window: &[u64]) {
        self.load.retire(window);
    }

    /// Ages the observation window by one exponential decay step —
    /// what a sim-driven control loop does with a judged-but-declined
    /// window instead of draining it.
    pub fn decay_bucket_loads(&self, alpha: f64) {
        self.load.decay(alpha);
    }

    /// The demux-fed flow sketch (bytes per flow hash); see the field
    /// docs. Empty while single-sharded.
    pub fn flow_sketch(&self) -> &FlowSketch {
        &self.sketch
    }

    /// Snapshot (peek, non-destructive) of the sketch — the byte-side
    /// half of the inspect arm, judged together with
    /// [`Self::bucket_loads`].
    pub fn sketch_window(&self) -> FlowSketchWindow {
        self.sketch.snapshot()
    }

    /// The sketch's current top-k per-flow byte evidence, ready for
    /// `RebalanceController::decide_with_evidence`.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        self.sketch.heavy_hitters()
    }

    /// Subtracts a previously peeked sketch window — called next to
    /// [`Self::retire_bucket_loads`] when a migration decision lands.
    pub fn retire_sketch(&self, window: &FlowSketchWindow) {
        self.sketch.retire(window);
    }

    /// Ages the sketch by one decay step — called next to
    /// [`Self::decay_bucket_loads`] on a judged-but-declined turn.
    pub fn decay_sketch(&self, alpha: f64) {
        self.sketch.decay(alpha);
    }

    /// The inner behaviours, for post-run inspection.
    pub fn shards(&self) -> &[Box<dyn NodeBehaviour>] {
        &self.shards
    }

    /// Mutable access to the inner behaviours (e.g. to reconfigure a
    /// per-shard pipeline between runs).
    pub fn shards_mut(&mut self) -> &mut [Box<dyn NodeBehaviour>] {
        &mut self.shards
    }
}

impl NodeBehaviour for ShardedBehaviour {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkt: Packet) {
        if self.shards.len() > 1 {
            self.load.record_packet(&pkt);
            self.sketch.record_packet(&pkt);
        }
        let shard = self.map.shard_of_packet(&pkt);
        self.shards[shard].on_packet(ctx, ingress, pkt);
    }

    /// Coalesced bursts are steered once with the index-based split
    /// ([`PacketBatch::shard_split_with`], the identical table-driven
    /// pass the threaded dispatcher runs), shared
    /// ([`ShardSplit::into_shared`] — the same refcounted shard-range
    /// protocol the threaded dispatcher publishes to its rings), and
    /// each shard's range is gathered and run in shard index order —
    /// the deterministic serialisation of what the worker pool does in
    /// parallel, exercising the identical shared-parent lifecycle.
    ///
    /// [`ShardSplit::into_shared`]: netkit_packet::batch::ShardSplit::into_shared
    fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, ingress: u16, pkts: Vec<Packet>) {
        if self.shards.len() == 1 {
            // 0/1-shard equivalence: no steering work at all.
            self.shards[0].on_batch(ctx, ingress, pkts);
            return;
        }
        let batch = PacketBatch::from_packets(pkts);
        self.load.record_batch(&batch);
        self.sketch.record_batch(&batch);
        let shared = batch.shard_split_with(&self.map).into_shared();
        for shard in 0..self.shards.len() {
            if shared.shard_len(shard) == 0 {
                continue;
            }
            let mut part = PacketBatch::new();
            shared.range(shard).take_into(&mut part);
            self.shards[shard].on_batch(ctx, ingress, part.into_packets());
        }
    }

    /// Timers route to shard `token % workers` — encode the owning
    /// shard in the token when setting per-shard timers.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let shard = (token % self.shards.len() as u64) as usize;
        self.shards[shard].on_timer(ctx, token);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for ShardedBehaviour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedBehaviour(`{}`, {} shards)",
            self.name,
            self.shards.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, SinkBehaviour};
    use netkit_kernel::time::SimTime;
    use netkit_packet::flow::FlowKey;
    use netkit_packet::packet::PacketBuilder;

    fn run_batch(b: &mut dyn NodeBehaviour, pkts: Vec<Packet>) {
        let (mut em, mut ti, mut de, mut dr) = (Vec::new(), Vec::new(), Vec::new(), 0u64);
        let mut ctx = NodeCtx {
            node: NodeId(0),
            now: SimTime::from_nanos(0),
            emissions: &mut em,
            timers: &mut ti,
            deliveries: &mut de,
            drops: &mut dr,
        };
        b.on_batch(&mut ctx, 0, pkts);
    }

    #[test]
    fn batches_split_by_flow_and_nothing_is_lost() {
        let counters = std::cell::RefCell::new(Vec::new());
        let mut sharded = ShardedBehaviour::new("rss", ShardSpec::new(4), |_| {
            let (sink, c) = SinkBehaviour::new();
            counters.borrow_mut().push(c);
            Box::new(sink)
        });
        assert_eq!(sharded.workers(), 4);

        let pkts: Vec<Packet> = (0..32u16)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80).build())
            .collect();
        let expect: Vec<u64> = (0..4u64)
            .map(|s| {
                pkts.iter()
                    .filter(|p| FlowKey::from_packet(p).unwrap().shard_for(4) == s as usize)
                    .count() as u64
            })
            .collect();
        run_batch(&mut sharded, pkts);

        let counters = counters.borrow();
        let got: Vec<u64> = counters.iter().map(|c| c.received()).collect();
        assert_eq!(got, expect, "each shard saw exactly its flows");
        assert_eq!(got.iter().sum::<u64>(), 32);
    }

    #[test]
    fn zero_worker_spec_behaves_as_one_shard() {
        let counters = std::cell::RefCell::new(Vec::new());
        let raw = ShardSpec {
            workers: 0,
            ring_capacity: 0,
        };
        let mut sharded = ShardedBehaviour::new("rss", raw, |_| {
            let (sink, c) = SinkBehaviour::new();
            counters.borrow_mut().push(c);
            Box::new(sink)
        });
        assert_eq!(sharded.workers(), 1);
        let pkts: Vec<Packet> = (0..4u16)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80).build())
            .collect();
        run_batch(&mut sharded, pkts);
        assert_eq!(counters.borrow()[0].received(), 4);
    }

    #[test]
    fn installed_table_redirects_the_demux() {
        let counters = std::cell::RefCell::new(Vec::new());
        let mut sharded = ShardedBehaviour::new("rss", ShardSpec::new(4), |_| {
            let (sink, c) = SinkBehaviour::new();
            counters.borrow_mut().push(c);
            Box::new(sink)
        });
        assert!(sharded.map().is_identity());
        let pkts: Vec<Packet> = (0..16u16)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80).build())
            .collect();
        // Migrate every occupied bucket to shard 3 — the same table the
        // threaded pipeline would install under its quiesce.
        let mut map = sharded.map().clone();
        for p in &pkts {
            map.set(FlowKey::from_packet(p).unwrap().bucket(), 3);
        }
        sharded.set_map(map);
        run_batch(&mut sharded, pkts);
        let counters = counters.borrow();
        let got: Vec<u64> = counters.iter().map(|c| c.received()).collect();
        assert_eq!(got, vec![0, 0, 0, 16], "demux follows the table");
    }

    #[test]
    fn demux_meters_share_the_window_discipline() {
        let mut sharded = ShardedBehaviour::new("metered", ShardSpec::new(4), |_| {
            Box::new(SinkBehaviour::new().0)
        });
        let pkts: Vec<Packet> = (0..16u16)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80).build())
            .collect();
        run_batch(&mut sharded, pkts.clone());
        assert_eq!(sharded.bucket_loads().iter().sum::<u64>(), 16);
        // Peek-then-commit: retire exactly the judged window...
        let judged = sharded.bucket_loads();
        run_batch(&mut sharded, pkts[..4].to_vec());
        sharded.retire_bucket_loads(&judged);
        assert_eq!(
            sharded.bucket_loads().iter().sum::<u64>(),
            4,
            "post-snapshot arrivals survive the retire"
        );
        // ...and decay ages what a declined decision leaves behind.
        sharded.decay_bucket_loads(0.0);
        assert_eq!(sharded.bucket_loads().iter().sum::<u64>(), 0);

        // A single-shard behaviour has nothing to rebalance: no meter.
        let mut single = ShardedBehaviour::new("solo", ShardSpec::new(1), |_| {
            Box::new(SinkBehaviour::new().0)
        });
        run_batch(&mut single, pkts[..4].to_vec());
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 4242, 80).build();
        let (mut em, mut ti, mut de, mut dr) = (Vec::new(), Vec::new(), Vec::new(), 0u64);
        let mut ctx = NodeCtx {
            node: NodeId(0),
            now: SimTime::from_nanos(0),
            emissions: &mut em,
            timers: &mut ti,
            deliveries: &mut de,
            drops: &mut dr,
        };
        single.on_packet(&mut ctx, 0, pkt);
        assert_eq!(single.bucket_loads().iter().sum::<u64>(), 0);
    }

    #[test]
    fn demux_sketch_is_deterministic_and_windowed() {
        let build = || {
            ShardedBehaviour::new("sketched", ShardSpec::new(4), |_| {
                Box::new(SinkBehaviour::new().0)
            })
        };
        let traffic = || -> Vec<Packet> {
            // One byte elephant among mice, identical on every run.
            (0..16u16)
                .map(|i| {
                    PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7000 + i, 80)
                        .payload_len(if i == 3 { 1400 } else { 0 })
                        .build()
                })
                .collect()
        };
        let mut a = build();
        let mut b = build();
        run_batch(&mut a, traffic());
        run_batch(&mut b, traffic());
        let top_a = a.heavy_hitters();
        assert_eq!(top_a, b.heavy_hitters(), "bit-for-bit reproducible");
        assert!(!top_a.is_empty());
        let elephant = FlowKey::from_packet(&traffic()[3]).unwrap().rss_hash();
        assert_eq!(top_a[0].hash, elephant, "the elephant ranks first");

        // Same peek-then-commit discipline as the packet meter.
        let judged = a.sketch_window();
        run_batch(&mut a, traffic()[..2].to_vec());
        a.retire_sketch(&judged);
        let residual = a.flow_sketch().total_bytes();
        let late: u64 = traffic()[..2].iter().map(|p| p.len() as u64).sum();
        assert_eq!(residual, late, "post-snapshot arrivals survive");
        a.decay_sketch(0.0);
        assert_eq!(a.flow_sketch().total_bytes(), 0);

        // Single-shard behaviours feed no sketch (nothing to rebalance).
        let mut solo = ShardedBehaviour::new("solo", ShardSpec::new(1), |_| {
            Box::new(SinkBehaviour::new().0)
        });
        run_batch(&mut solo, traffic());
        assert!(solo.heavy_hitters().is_empty());
        assert_eq!(solo.flow_sketch().total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "bucket map targets")]
    fn set_map_rejects_mismatched_shard_count() {
        let mut sharded = ShardedBehaviour::new("rss", ShardSpec::new(2), |_| {
            Box::new(SinkBehaviour::new().0)
        });
        sharded.set_map(BucketMap::identity(4));
    }

    #[test]
    fn scalar_path_agrees_with_batch_path() {
        let counters = std::cell::RefCell::new(Vec::new());
        let mut sharded = ShardedBehaviour::new("rss", ShardSpec::new(2), |_| {
            let (sink, c) = SinkBehaviour::new();
            counters.borrow_mut().push(c);
            Box::new(sink)
        });
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 4242, 80).build();
        let shard = FlowKey::from_packet(&pkt).unwrap().shard_for(2);
        let (mut em, mut ti, mut de, mut dr) = (Vec::new(), Vec::new(), Vec::new(), 0u64);
        let mut ctx = NodeCtx {
            node: NodeId(0),
            now: SimTime::from_nanos(0),
            emissions: &mut em,
            timers: &mut ti,
            deliveries: &mut de,
            drops: &mut dr,
        };
        sharded.on_packet(&mut ctx, 0, pkt);
        assert_eq!(counters.borrow()[shard].received(), 1);
        assert_eq!(counters.borrow()[1 - shard].received(), 0);
    }
}
