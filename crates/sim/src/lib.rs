//! # netkit-sim — a deterministic discrete-event network simulator
//!
//! Substrate for the multi-node experiments of the NETKIT reproduction
//! (signaling latency, spawning time, end-to-end forwarding under load).
//! The paper's testbed was real PC routers on a LAN; per DESIGN.md §2 we
//! substitute a seeded, single-threaded discrete-event simulation — the
//! experiments compare software-architecture overheads, not wire rates,
//! so determinism and reproducibility matter more than realism.
//!
//! * [`node`] — nodes and [`NodeBehaviour`]s (router
//!   pipelines adapt behind this trait).
//! * [`shard`] — deterministic RSS demux: one inner behaviour per
//!   worker of a `ShardSpec`, fed flow-affinely, modelling the
//!   multi-queue dataplane without sacrificing reproducibility.
//! * [`fault`] — a [`FaultPlan`](netkit_kernel::fault::FaultPlan)-driven
//!   behaviour decorator: seeded wire loss / corruption / duplication
//!   plus a modelled crash-and-revive, replayable bit-for-bit.
//! * [`link`] — full-duplex links with latency, serialisation, and
//!   bounded drop-tail transmit queues.
//! * [`traffic`] — CBR / Poisson / bursty generators, all seeded.
//! * [`topology`] — line, star, dumbbell, and random-connected builders
//!   plus all-pairs next-hop computation.
//! * [`stats`] — run counters and latency percentiles.
//!
//! ## Example: two hosts through a forwarder
//!
//! ```
//! use netkit_sim::link::LinkSpec;
//! use netkit_sim::node::{SinkBehaviour, StaticForwarder};
//! use netkit_sim::traffic::{udp_flow, CbrGen};
//! use netkit_sim::Simulator;
//!
//! let mut sim = Simulator::new(7);
//! let (sink, counters) = SinkBehaviour::new();
//! let src = sim.add_node(Box::new(StaticForwarder::new("10.0.0.1".parse().unwrap())));
//! let dst = sim.add_node(Box::new(sink));
//!
//! let link = sim.connect(src, dst, LinkSpec::lan());
//! let (src_end, _) = sim.link_ports(link);
//! sim.node_behaviour_mut::<StaticForwarder>(src)
//!     .expect("forwarder")
//!     .route("10.0.0.2".parse().unwrap(), src_end.1);
//!
//! sim.attach_source(src, Box::new(CbrGen::new(
//!     10_000, 100, udp_flow("10.0.0.1", "10.0.0.2", 5_000, 5_001, 256))));
//! let stats = sim.run_to_idle().clone();
//! assert_eq!(stats.delivered, 100);
//! assert_eq!(counters.received(), 100);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod node;
pub mod pipeline;
pub mod scenario;
pub mod shard;
pub mod stats;
pub mod topology;
pub mod traffic;

use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use netkit_kernel::time::SimTime;
use netkit_packet::packet::Packet;

use link::{LinkId, LinkSpec, LinkState, TxOutcome};
use node::{NodeBehaviour, NodeCtx, NodeId, LOCAL_PORT};
use stats::SimStats;
use traffic::TrafficGen;

enum EventKind {
    Arrival { node: usize, port: u16, pkt: Packet },
    Timer { node: usize, token: u64 },
    Inject { source: usize, pkt: Packet },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-first. Sequence
        // numbers break time ties deterministically (FIFO).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeSlot {
    behaviour: Box<dyn NodeBehaviour>,
    ports: Vec<LinkId>,
}

struct SourceSlot {
    node: usize,
    gen: Box<dyn TrafficGen>,
}

/// The discrete-event engine. See the crate docs for an example.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event>,
    nodes: Vec<NodeSlot>,
    links: Vec<LinkState>,
    sources: Vec<SourceSlot>,
    stats: SimStats,
    rng: SmallRng,
    processed: u64,
}

impl Simulator {
    /// Creates an empty simulation; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            now: SimTime::from_nanos(0),
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            sources: Vec::new(),
            stats: SimStats::new(),
            rng: SmallRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Run counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a node; ports are allocated as links are connected.
    pub fn add_node(&mut self, behaviour: Box<dyn NodeBehaviour>) -> NodeId {
        self.nodes.push(NodeSlot {
            behaviour,
            ports: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Typed access to a node's behaviour (for route-table setup etc.).
    /// Returns `None` if the node id is stale or the type does not match.
    pub fn node_behaviour_mut<B: NodeBehaviour + 'static>(
        &mut self,
        node: NodeId,
    ) -> Option<&mut B> {
        let slot = self.nodes.get_mut(node.0)?;
        (slot.behaviour.as_mut() as &mut dyn Any).downcast_mut::<B>()
    }

    /// Connects two nodes with a fresh full-duplex link, allocating the
    /// next free port index on each.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range node ids or self-loops.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "unknown node"
        );
        assert_ne!(a, b, "self-loops are not supported");
        let id = LinkId(self.links.len());
        let port_a = self.nodes[a.0].ports.len() as u16;
        let port_b = self.nodes[b.0].ports.len() as u16;
        self.nodes[a.0].ports.push(id);
        self.nodes[b.0].ports.push(id);
        self.links
            .push(LinkState::new(spec, (a.0, port_a), (b.0, port_b)));
        id
    }

    /// The two `(node, port)` endpoints of `link`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown link id.
    pub fn link_ports(&self, link: LinkId) -> ((NodeId, u16), (NodeId, u16)) {
        let l = &self.links[link.0];
        (
            (NodeId(l.ends[0].0), l.ends[0].1),
            (NodeId(l.ends[1].0), l.ends[1].1),
        )
    }

    /// Link state (for drop counters and spec inspection).
    ///
    /// # Panics
    ///
    /// Panics on an unknown link id.
    pub fn link(&self, link: LinkId) -> &LinkState {
        &self.links[link.0]
    }

    /// Per-node adjacency: `(local port, peer node)` pairs in port order.
    pub fn adjacency(&self) -> Vec<Vec<(u16, NodeId)>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(n, slot)| {
                slot.ports
                    .iter()
                    .enumerate()
                    .map(|(p, link_id)| {
                        let link = &self.links[link_id.0];
                        let dir = link.direction_from(n).expect("node is an endpoint");
                        (p as u16, NodeId(link.far_end(dir).0))
                    })
                    .collect()
            })
            .collect()
    }

    /// Attaches a traffic source to `node`; its packets enter the node's
    /// behaviour on [`LOCAL_PORT`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node id.
    pub fn attach_source(&mut self, node: NodeId, gen: Box<dyn TrafficGen>) {
        assert!(node.0 < self.nodes.len(), "unknown node");
        self.sources.push(SourceSlot { node: node.0, gen });
        let source = self.sources.len() - 1;
        self.schedule_next_injection(source);
    }

    /// Schedules a one-shot injection of `pkt` into `node` after
    /// `delay_ns`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node id.
    pub fn inject_after(&mut self, node: NodeId, delay_ns: u64, pkt: Packet) {
        assert!(node.0 < self.nodes.len(), "unknown node");
        self.sources.push(SourceSlot {
            node: node.0,
            gen: Box::new(Exhausted),
        });
        let source = self.sources.len() - 1;
        let at = SimTime::from_nanos(self.now.as_nanos() + delay_ns);
        self.push_event(at, EventKind::Inject { source, pkt });
    }

    fn schedule_next_injection(&mut self, source: usize) {
        if let Some((gap, pkt)) = self.sources[source].gen.next(&mut self.rng) {
            let at = SimTime::from_nanos(self.now.as_nanos() + gap);
            self.push_event(at, EventKind::Inject { source, pkt });
        }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Runs until the event queue drains.
    pub fn run_to_idle(&mut self) -> &SimStats {
        while let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            self.handle(ev.kind);
            self.processed += 1;
        }
        &self.stats
    }

    /// Runs events with `at <= deadline`; time stops at the deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> &SimStats {
        while self.queue.peek().is_some_and(|ev| ev.at <= deadline) {
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.at;
            self.handle(ev.kind);
            self.processed += 1;
        }
        if deadline > self.now {
            self.now = deadline;
        }
        &self.stats
    }

    /// Runs for `duration_ns` beyond the current time.
    pub fn run_for(&mut self, duration_ns: u64) -> &SimStats {
        self.run_until(SimTime::from_nanos(self.now.as_nanos() + duration_ns))
    }

    /// Pops every queued arrival that shares `at`/`node`/`port` with the
    /// arrival just popped, preserving order. This is the driver-loop
    /// batching point: a burst that lands on one port in the same
    /// instant is handed to the node as one `on_batch` call.
    fn coalesce_arrivals(
        &mut self,
        at: SimTime,
        node: usize,
        port: u16,
        first: Packet,
    ) -> Vec<Packet> {
        let mut batch = vec![first];
        while let Some(next) = self.queue.peek() {
            let same = next.at == at
                && matches!(
                    &next.kind,
                    EventKind::Arrival { node: n, port: p, .. } if *n == node && *p == port
                );
            if !same {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.processed += 1;
            match ev.kind {
                EventKind::Arrival { pkt, .. } => batch.push(pkt),
                _ => unreachable!("matched arrival above"),
            }
        }
        batch
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::Arrival { node, port, pkt } => {
                let batch = self.coalesce_arrivals(self.now, node, port, pkt);
                if batch.len() == 1 {
                    let pkt = batch.into_iter().next().expect("one packet");
                    self.dispatch(node, port, pkt);
                } else {
                    self.dispatch_batch(node, port, batch);
                }
            }
            EventKind::Timer { node, token } => {
                self.dispatch_timer(node, token);
            }
            EventKind::Inject { source, pkt } => {
                let node = self.sources[source].node;
                self.stats.injected += 1;
                let mut pkt = pkt;
                pkt.meta.timestamp_ns = self.now.as_nanos();
                self.dispatch(node, LOCAL_PORT, pkt);
                self.schedule_next_injection(source);
            }
        }
    }

    fn dispatch(&mut self, node: usize, ingress: u16, pkt: Packet) {
        let mut emissions = Vec::new();
        let mut timers = Vec::new();
        let mut deliveries = Vec::new();
        let mut drops = 0u64;
        {
            let mut ctx = NodeCtx {
                node: NodeId(node),
                now: self.now,
                emissions: &mut emissions,
                timers: &mut timers,
                deliveries: &mut deliveries,
                drops: &mut drops,
            };
            self.nodes[node].behaviour.on_packet(&mut ctx, ingress, pkt);
        }
        self.absorb(node, emissions, timers, deliveries, drops);
    }

    fn dispatch_batch(&mut self, node: usize, ingress: u16, pkts: Vec<Packet>) {
        let mut emissions = Vec::new();
        let mut timers = Vec::new();
        let mut deliveries = Vec::new();
        let mut drops = 0u64;
        {
            let mut ctx = NodeCtx {
                node: NodeId(node),
                now: self.now,
                emissions: &mut emissions,
                timers: &mut timers,
                deliveries: &mut deliveries,
                drops: &mut drops,
            };
            self.nodes[node].behaviour.on_batch(&mut ctx, ingress, pkts);
        }
        self.absorb(node, emissions, timers, deliveries, drops);
    }

    fn dispatch_timer(&mut self, node: usize, token: u64) {
        let mut emissions = Vec::new();
        let mut timers = Vec::new();
        let mut deliveries = Vec::new();
        let mut drops = 0u64;
        {
            let mut ctx = NodeCtx {
                node: NodeId(node),
                now: self.now,
                emissions: &mut emissions,
                timers: &mut timers,
                deliveries: &mut deliveries,
                drops: &mut drops,
            };
            self.nodes[node].behaviour.on_timer(&mut ctx, token);
        }
        self.absorb(node, emissions, timers, deliveries, drops);
    }

    fn absorb(
        &mut self,
        node: usize,
        emissions: Vec<(u16, Packet)>,
        timers: Vec<(u64, u64)>,
        deliveries: Vec<Packet>,
        drops: u64,
    ) {
        self.stats.node_drops += drops;
        for pkt in deliveries {
            let latency = self.now.as_nanos().saturating_sub(pkt.meta.timestamp_ns);
            self.stats.record_delivery(latency);
        }
        for (delay, token) in timers {
            let at = SimTime::from_nanos(self.now.as_nanos() + delay);
            self.push_event(at, EventKind::Timer { node, token });
        }
        for (port, pkt) in emissions {
            let Some(link_id) = self.nodes[node].ports.get(port as usize).copied() else {
                self.stats.node_drops += 1;
                continue;
            };
            let now = self.now;
            let bytes = pkt.len();
            let link = &mut self.links[link_id.0];
            let dir = link
                .direction_from(node)
                .expect("emitting node is an endpoint");
            match link.offer(dir, now, bytes) {
                TxOutcome::Arrives(at) => {
                    let (far_node, far_port) = link.far_end(dir);
                    self.stats.forwarded += 1;
                    self.push_event(
                        at,
                        EventKind::Arrival {
                            node: far_node,
                            port: far_port,
                            pkt,
                        },
                    );
                }
                TxOutcome::Dropped => {
                    self.stats.link_drops += 1;
                }
            }
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Simulator({} nodes, {} links, {} queued events, t={}ns)",
            self.nodes.len(),
            self.links.len(),
            self.queue.len(),
            self.now.as_nanos()
        )
    }
}

/// A generator that never produces packets (used by one-shot injections).
struct Exhausted;

impl TrafficGen for Exhausted {
    fn next(&mut self, _rng: &mut SmallRng) -> Option<(u64, Packet)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netkit_packet::packet::PacketBuilder;
    use node::{FnBehaviour, SinkBehaviour, StaticForwarder};
    use traffic::{udp_flow, CbrGen, PoissonGen};

    fn forwarder(addr: &str) -> Box<StaticForwarder> {
        Box::new(StaticForwarder::new(addr.parse().unwrap()))
    }

    #[test]
    fn two_node_delivery_and_latency() {
        let mut sim = Simulator::new(1);
        let (sink, _) = SinkBehaviour::new();
        let a = sim.add_node(forwarder("10.0.0.1"));
        let b = sim.add_node(Box::new(sink));
        let link = sim.connect(
            a,
            b,
            LinkSpec {
                latency_ns: 1000,
                bandwidth_bps: 8_000_000_000,
                queue_pkts: 8,
            },
        );
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        sim.attach_source(
            a,
            Box::new(CbrGen::new(
                10_000,
                10,
                udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 100),
            )),
        );
        let stats = sim.run_to_idle();
        assert_eq!(stats.injected, 10);
        assert_eq!(stats.delivered, 10);
        // Latency >= propagation delay.
        assert!(stats.latency_samples().iter().all(|&l| l >= 1000));
    }

    #[test]
    fn three_hop_line_forwards_end_to_end() {
        let mut sim = Simulator::new(1);
        let (sink, counters) = SinkBehaviour::new();
        let a = sim.add_node(forwarder("10.0.0.1"));
        let r = sim.add_node(forwarder("10.0.0.254"));
        let b = sim.add_node(Box::new(sink));
        let l1 = sim.connect(a, r, LinkSpec::lan());
        let l2 = sim.connect(r, b, LinkSpec::lan());
        let (a_end, _) = sim.link_ports(l1);
        let (r_end, _) = sim.link_ports(l2);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), a_end.1);
        sim.node_behaviour_mut::<StaticForwarder>(r)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), r_end.1);
        sim.attach_source(
            a,
            Box::new(CbrGen::new(
                5_000,
                50,
                udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 64),
            )),
        );
        let stats = sim.run_to_idle();
        assert_eq!(stats.delivered, 50);
        assert_eq!(counters.received(), 50);
        assert_eq!(stats.forwarded, 100, "two link traversals per packet");
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let run = |seed| {
            let mut sim = Simulator::new(seed);
            let (sink, _) = SinkBehaviour::new();
            let a = sim.add_node(forwarder("10.0.0.1"));
            let b = sim.add_node(Box::new(sink));
            let link = sim.connect(
                a,
                b,
                LinkSpec {
                    latency_ns: 100,
                    bandwidth_bps: 1_000_000,
                    queue_pkts: 2,
                },
            );
            let (ea, _) = sim.link_ports(link);
            sim.node_behaviour_mut::<StaticForwarder>(a)
                .unwrap()
                .route("10.0.0.2".parse().unwrap(), ea.1);
            sim.attach_source(
                a,
                Box::new(PoissonGen::new(
                    2_000,
                    500,
                    udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 200),
                )),
            );
            let s = sim.run_to_idle();
            (s.delivered, s.link_drops, s.latency_percentile_ns(99.0))
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn congested_link_drops_and_conserves_packets() {
        let mut sim = Simulator::new(3);
        let (sink, _) = SinkBehaviour::new();
        let a = sim.add_node(forwarder("10.0.0.1"));
        let b = sim.add_node(Box::new(sink));
        // Slow link, tiny queue; CBR offered faster than the wire drains.
        let link = sim.connect(
            a,
            b,
            LinkSpec {
                latency_ns: 0,
                bandwidth_bps: 1_000_000,
                queue_pkts: 4,
            },
        );
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        sim.attach_source(
            a,
            Box::new(CbrGen::new(
                100_000,
                200,
                udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 1000),
            )),
        );
        let stats = sim.run_to_idle().clone();
        assert!(stats.link_drops > 0, "offered load exceeds the wire");
        assert_eq!(stats.injected, 200);
        assert_eq!(stats.delivered + stats.link_drops + stats.node_drops, 200);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulator::new(1);
        let fired = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let fired2 = std::sync::Arc::clone(&fired);
        let n = sim.add_node(Box::new(FnBehaviour::with_timer(
            "timers",
            |ctx: &mut NodeCtx<'_>, _, _pkt| {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            },
            move |_ctx: &mut NodeCtx<'_>, token| fired2.lock().push(token),
        )));
        sim.inject_after(
            n,
            0,
            PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build(),
        );
        sim.run_to_idle();
        assert_eq!(*fired.lock(), [1, 2, 3]);
    }

    #[test]
    fn same_instant_arrivals_coalesce_into_one_batch() {
        use std::sync::Arc;

        struct BatchSink {
            sizes: Arc<parking_lot::Mutex<Vec<usize>>>,
        }
        impl NodeBehaviour for BatchSink {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _ingress: u16, pkt: Packet) {
                self.sizes.lock().push(1);
                ctx.deliver_local(pkt);
            }
            fn on_batch(&mut self, ctx: &mut NodeCtx<'_>, _ingress: u16, pkts: Vec<Packet>) {
                self.sizes.lock().push(pkts.len());
                for pkt in pkts {
                    ctx.deliver_local(pkt);
                }
            }
        }

        let mut sim = Simulator::new(1);
        let burst = sim.add_node(Box::new(FnBehaviour::new(
            "burst",
            |ctx: &mut NodeCtx<'_>, _, pkt: Packet| {
                for _ in 0..3 {
                    ctx.emit(0, pkt.clone());
                }
            },
        )));
        let sizes = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = sim.add_node(Box::new(BatchSink {
            sizes: Arc::clone(&sizes),
        }));
        // Effectively infinite bandwidth: zero serialisation delay, so
        // the three copies arrive in the same instant and coalesce.
        sim.connect(
            burst,
            sink,
            LinkSpec {
                latency_ns: 50,
                bandwidth_bps: u64::MAX,
                queue_pkts: 16,
            },
        );
        sim.inject_after(
            burst,
            0,
            PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build(),
        );
        let stats = sim.run_to_idle();
        assert_eq!(stats.delivered, 3);
        assert_eq!(*sizes.lock(), [3], "burst handed over as one batch");
    }

    #[test]
    fn emission_on_unconnected_port_counts_as_drop() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(FnBehaviour::new(
            "blind",
            |ctx: &mut NodeCtx<'_>, _, pkt| {
                ctx.emit(9, pkt);
            },
        )));
        sim.inject_after(
            n,
            0,
            PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build(),
        );
        let stats = sim.run_to_idle();
        assert_eq!(stats.node_drops, 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(1);
        let (sink, _) = SinkBehaviour::new();
        let a = sim.add_node(forwarder("10.0.0.1"));
        let b = sim.add_node(Box::new(sink));
        let link = sim.connect(a, b, LinkSpec::lan());
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        sim.attach_source(
            a,
            Box::new(CbrGen::new(
                1_000_000,
                100,
                udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 64),
            )),
        );
        sim.run_until(SimTime::from_nanos(10_000_000));
        let mid = sim.stats().injected;
        assert!(mid > 0 && mid < 100, "partial progress, got {mid}");
        assert_eq!(sim.now().as_nanos(), 10_000_000);
        sim.run_to_idle();
        assert_eq!(sim.stats().injected, 100);
    }
}
