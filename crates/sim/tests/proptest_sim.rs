//! Property-based tests for the discrete-event engine: packet
//! conservation, latency lower bounds, per-link FIFO ordering, and
//! seed-determinism over random topologies.

use proptest::prelude::*;

use netkit_sim::link::LinkSpec;
use netkit_sim::node::{FnBehaviour, NodeCtx, SinkBehaviour, StaticForwarder};
use netkit_sim::topology::{hop_counts, next_hops, random_connected};
use netkit_sim::traffic::{udp_flow, CbrGen, PoissonGen};
use netkit_sim::Simulator;

fn link_strategy() -> impl Strategy<Value = LinkSpec> {
    (1u64..1_000_000, 1u64..=1_000_000_000, 1usize..32).prop_map(
        |(latency_ns, bandwidth_bps, queue_pkts)| LinkSpec {
            latency_ns,
            bandwidth_bps,
            queue_pkts,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_node_flow_conserves_packets(
        spec in link_strategy(),
        count in 1u64..200,
        interval in 1u64..100_000,
        payload in 0usize..1200,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulator::new(seed);
        let (sink, counters) = SinkBehaviour::new();
        let a = sim.add_node(Box::new(StaticForwarder::new("10.0.0.1".parse().unwrap())));
        let b = sim.add_node(Box::new(sink));
        let link = sim.connect(a, b, spec);
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        sim.attach_source(
            a,
            Box::new(CbrGen::new(interval, count, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, payload))),
        );
        let stats = sim.run_to_idle().clone();
        prop_assert_eq!(stats.injected, count);
        prop_assert_eq!(
            stats.delivered + stats.link_drops + stats.node_drops,
            count,
            "every packet is accounted for"
        );
        prop_assert_eq!(counters.received(), stats.delivered);
    }

    #[test]
    fn latency_never_beats_physics(
        spec in link_strategy(),
        count in 1u64..64,
        seed in any::<u64>(),
    ) {
        let mut sim = Simulator::new(seed);
        let (sink, _) = SinkBehaviour::new();
        let a = sim.add_node(Box::new(StaticForwarder::new("10.0.0.1".parse().unwrap())));
        let b = sim.add_node(Box::new(sink));
        let link = sim.connect(a, b, spec);
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        sim.attach_source(
            a,
            Box::new(PoissonGen::new(50_000, count, udp_flow("10.0.0.1", "10.0.0.2", 1, 2, 64))),
        );
        let stats = sim.run_to_idle().clone();
        // Every delivery took at least propagation + one serialisation.
        let floor = spec.latency_ns + spec.ser_nanos(64);
        for &sample in stats.latency_samples() {
            prop_assert!(sample >= floor, "latency {sample} < physical floor {floor}");
        }
    }

    #[test]
    fn links_deliver_fifo_per_direction(
        spec in link_strategy(),
        count in 2u64..64,
        seed in any::<u64>(),
    ) {
        // Sequence numbers ride in the UDP source port; the sink verifies
        // monotonic arrival.
        let mut sim = Simulator::new(seed);
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<u16>::new()));
        let seen2 = std::sync::Arc::clone(&seen);
        let checker = FnBehaviour::new("fifo-check", move |ctx: &mut NodeCtx<'_>, _, pkt| {
            if let Ok(udp) = pkt.udp_v4() {
                seen2.lock().push(udp.src_port);
            }
            ctx.deliver_local(pkt);
        });
        let a = sim.add_node(Box::new(StaticForwarder::new("10.0.0.1".parse().unwrap())));
        let b = sim.add_node(Box::new(checker));
        let link = sim.connect(a, b, spec);
        let (ea, _) = sim.link_ports(link);
        sim.node_behaviour_mut::<StaticForwarder>(a)
            .unwrap()
            .route("10.0.0.2".parse().unwrap(), ea.1);
        let mut seq = 0u16;
        sim.attach_source(
            a,
            Box::new(CbrGen::new(
                1_000,
                count,
                Box::new(move |_| {
                    seq += 1;
                    netkit_packet::packet::PacketBuilder::udp_v4(
                        "10.0.0.1", "10.0.0.2", seq, 2,
                    )
                    .build()
                }),
            )),
        );
        sim.run_to_idle();
        let arrived = seen.lock().clone();
        let mut sorted = arrived.clone();
        sorted.sort_unstable();
        prop_assert_eq!(arrived, sorted, "link reordered packets");
    }

    #[test]
    fn random_topologies_are_connected_and_deterministic(
        n in 2usize..24,
        extra_p in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let build = || {
            let mut sim = Simulator::new(seed);
            let topo = random_connected(&mut sim, n, extra_p, seed, LinkSpec::lan(), &mut |_| {
                let (sink, _) = SinkBehaviour::new();
                Box::new(sink)
            });
            let dists = hop_counts(&sim);
            let hops = next_hops(&sim);
            (topo.links.len(), dists, hops)
        };
        let (links_a, dists, hops) = build();
        let (links_b, dists_b, _) = build();
        prop_assert_eq!(links_a, links_b, "same seed, same topology");
        prop_assert_eq!(&dists, &dists_b);
        // Connectivity: everything reachable from node 0.
        for (i, d) in dists[0].iter().enumerate() {
            prop_assert!(d.is_some(), "node {i} unreachable");
        }
        // next_hops consistency: a defined hop exists exactly when the
        // destination is reachable and distinct.
        for src in 0..n {
            for dst in 0..n {
                prop_assert_eq!(
                    hops[src][dst].is_some(),
                    src != dst && dists[src][dst].is_some()
                );
            }
        }
    }
}
