//! Property tests over the city scenario engine: **any** seeded
//! topology × traffic mix must close its books exactly, deliver every
//! packet at most once, and replay bit-for-bit under the same seed.
//!
//! Each case builds a random city — node count, topology density,
//! source stride, traffic volumes, and phase geometry all drawn from
//! the case seed — and runs the full stateful dataplane (conntrack →
//! heavy-hitter guard → media filter) on every node with autonomous
//! per-node rebalance controllers. The properties are the scenario
//! engine's whole contract:
//!
//! 1. **Conservation**: injected = delivered + link drops + node
//!    drops, globally, and each node's drop book splits exactly into
//!    guard and graph causes.
//! 2. **No duplication**: the delivery log (node, packet id) holds no
//!    repeated entry, and its length is the delivered count.
//! 3. **Determinism**: the same config re-run produces the same
//!    fingerprint — a fold over every counter, drop book, migration
//!    count, and steering table in the city.

use proptest::prelude::*;

use netkit_sim::scenario::{run_city, CityConfig};

/// A bounded random city: small enough that a case runs in tens of
/// milliseconds, varied enough to cover degenerate topologies (two
/// nodes, dense meshes, sparse chains) and mixes (flashless, all-mice,
/// elephant-heavy).
fn config(
    seed: u64,
    nodes: usize,
    shards: usize,
    stride: usize,
    link_p: u16,
    packets: u64,
    spike: u64,
) -> CityConfig {
    let mut cfg = CityConfig::small(seed);
    cfg.nodes = nodes;
    cfg.shards_per_node = shards;
    cfg.source_stride = stride;
    cfg.extra_link_p = f64::from(link_p) / 100.0;
    cfg.mice_fan = 16;
    cfg.flash_flows = 6;
    cfg.diurnal_packets = packets;
    cfg.flash_packets = packets * 2;
    cfg.elephant_packets = packets;
    cfg.flash_spike = spike;
    cfg.collect_delivery_log = true;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_city_conserves_and_never_duplicates(
        seed in any::<u64>(),
        nodes in 2usize..=10,
        shards in 1usize..=3,
        stride in 1usize..=4,
        link_p in 0u16..=60,
        packets in 20u64..=120,
        spike in 1u64..=12,
    ) {
        let cfg = config(seed, nodes, shards, stride, link_p, packets, spike);
        let report = run_city(&cfg);

        // Conservation: the global identity and the per-node cause
        // split both close exactly.
        prop_assert!(report.conserved(), "books must close: {report:?}");
        prop_assert_eq!(
            report.injected,
            report.delivered + report.link_drops + report.node_drops
        );
        prop_assert!(report.injected > 0, "a city with sources injects");

        // No duplication: every delivered (node, id) pair is unique.
        let log = report.delivery_log.as_ref().expect("log enabled");
        prop_assert_eq!(log.len() as u64, report.delivered);
        let mut seen = std::collections::HashSet::with_capacity(log.len());
        for entry in log {
            prop_assert!(seen.insert(*entry), "duplicate delivery {:?}", entry);
        }
    }

    #[test]
    fn any_city_replays_bit_for_bit(
        seed in any::<u64>(),
        nodes in 2usize..=8,
        shards in 1usize..=3,
        stride in 1usize..=3,
        link_p in 0u16..=50,
        packets in 20u64..=80,
        spike in 1u64..=10,
    ) {
        let cfg = config(seed, nodes, shards, stride, link_p, packets, spike);
        let a = run_city(&cfg);
        let b = run_city(&cfg);
        prop_assert_eq!(a.fingerprint, b.fingerprint, "same seed, same city");
        prop_assert_eq!(a.injected, b.injected);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.link_drops, b.link_drops);
        prop_assert_eq!(a.node_drops, b.node_drops);
        prop_assert_eq!(a.delivery_log, b.delivery_log, "replay is bit-for-bit");
    }
}
