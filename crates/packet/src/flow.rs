//! Flow identification and per-flow state tables.
//!
//! Stratum 3 operates on "pre-selected packet flows in application-
//! specific ways" (paper §3). [`FlowKey`] is the classic 5-tuple;
//! [`FlowTable`] holds per-flow state with TTL-based soft expiry and
//! bounded capacity.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::net::IpAddr;

use parking_lot::Mutex;

use crate::headers::{proto, EtherType};
use crate::packet::Packet;

/// Legacy annotation key for the RSS flow hash.
///
/// Superseded by the dedicated
/// [`PacketMeta::rss_hash`](crate::packet::PacketMeta::rss_hash) field:
/// `annotate(RSS_ANNOTATION, h)` and `annotation(RSS_ANNOTATION)` are
/// shimmed onto that field, so old callers keep working, but new code
/// should read and write the field directly (no string compare, no
/// table walk).
#[deprecated(note = "use PacketMeta::rss_hash directly")]
pub const RSS_ANNOTATION: &str = "rss";

/// The shard a packet steers to under `shards` receive queues with the
/// **identity** bucket table: the driver-stamped
/// [`PacketMeta::rss_hash`](crate::packet::PacketMeta::rss_hash) when
/// present, else the parsed flow's [`FlowKey::rss_hash`] (computed and
/// **stamped back is the caller's job** — use [`stamp_rss`] at
/// materialisation time so this function never re-parses), reduced to a
/// bucket ([`crate::steer::bucket_of`]) and then to `bucket % shards`.
/// Packets with no flow identity (ARP, malformed frames)
/// deterministically land on bucket 0, hence shard 0 here.
///
/// Table-driven steering (the rebalancer's non-identity maps) goes
/// through [`crate::steer::BucketMap::shard_of_packet`]; this function
/// is exactly that lookup for `BucketMap::identity(shards)`, and
/// because every power-of-two shard count divides
/// [`crate::steer::RSS_BUCKETS`], it agrees bit-for-bit with the
/// historical `hash % shards` rule for those counts.
///
/// Shard-count edge case: `shards == 0` and `shards == 1` are
/// equivalent — both mean "no spreading", every packet lands on shard 0
/// (mirroring [`FlowKey::shard_for`], `ShardSpec`'s ≥ 1 clamp, and the
/// NIC's single-queue fallback).
pub fn shard_of(pkt: &Packet, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let hash = pkt
        .meta
        .rss_hash
        .or_else(|| FlowKey::from_packet(pkt).map(|k| k.rss_hash()));
    match hash {
        Some(h) => crate::steer::bucket_of(h) % shards,
        None => 0,
    }
}

/// Stamps [`PacketMeta::rss_hash`](crate::packet::PacketMeta::rss_hash)
/// from the packet's parsed flow tuple, if not already stamped — the
/// software analogue of the hash a multi-queue NIC computes in hardware
/// on rx. Returns the stamp. Call once at materialisation (NIC rx /
/// batch construction); every later [`shard_of`] is then a modulo, not
/// a parse.
pub fn stamp_rss(pkt: &mut Packet) -> Option<u64> {
    if pkt.meta.rss_hash.is_none() {
        pkt.meta.rss_hash = FlowKey::from_packet(pkt).map(|k| k.rss_hash());
    }
    pkt.meta.rss_hash
}

/// Which direction of a bidirectional connection a packet belongs to,
/// relative to the flow's [canonical](FlowKey::canonical) orientation.
///
/// Returned by [`FlowKey::canonical_with_direction`] so stateful
/// elements (conntrack, NAT) can keep one table entry per connection
/// and still attribute packets and bytes per direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FlowDirection {
    /// The packet's tuple already was in canonical orientation — by
    /// convention the connection's *initiator→responder* direction when
    /// the initiator's endpoint sorts first.
    Forward,
    /// The packet's tuple is the canonical key with endpoints swapped.
    Reverse,
}

impl FlowDirection {
    /// True for [`FlowDirection::Forward`].
    pub fn is_forward(self) -> bool {
        matches!(self, FlowDirection::Forward)
    }

    /// The opposite direction.
    pub fn flipped(self) -> FlowDirection {
        match self {
            FlowDirection::Forward => FlowDirection::Reverse,
            FlowDirection::Reverse => FlowDirection::Forward,
        }
    }
}

/// The classic 5-tuple flow identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// IP protocol number.
    pub protocol: u8,
    /// Source transport port (0 when the protocol has no ports).
    pub src_port: u16,
    /// Destination transport port (0 when the protocol has no ports).
    pub dst_port: u16,
}

impl FlowKey {
    /// Extracts the 5-tuple from a frame, if it is IPv4/IPv6 carrying
    /// UDP or TCP (other traffic yields ports of zero).
    pub fn from_packet(pkt: &Packet) -> Option<FlowKey> {
        Self::from_frame(pkt.data())
    }

    /// Extracts the 5-tuple from raw frame bytes (Ethernet header
    /// first) — the parse a NIC's RSS engine performs on the wire side,
    /// before any [`Packet`] exists.
    pub fn from_frame(frame: &[u8]) -> Option<FlowKey> {
        use crate::headers::{EthernetHeader, Ipv4Header, Ipv6Header, TcpHeader, UdpHeader};
        let eth = EthernetHeader::parse(frame).ok()?;
        let l3 = frame.get(EthernetHeader::LEN..)?;
        match eth.ethertype {
            EtherType::Ipv4 => {
                let ip = Ipv4Header::parse(l3).ok()?;
                let l4 = l3.get(ip.header_len..)?;
                let (src_port, dst_port) = match ip.protocol {
                    proto::UDP => {
                        let udp = UdpHeader::parse(l4).ok()?;
                        (udp.src_port, udp.dst_port)
                    }
                    proto::TCP => {
                        let tcp = TcpHeader::parse(l4).ok()?;
                        (tcp.src_port, tcp.dst_port)
                    }
                    _ => (0, 0),
                };
                Some(FlowKey {
                    src: IpAddr::V4(ip.src),
                    dst: IpAddr::V4(ip.dst),
                    protocol: ip.protocol,
                    src_port,
                    dst_port,
                })
            }
            EtherType::Ipv6 => {
                let ip = Ipv6Header::parse(l3).ok()?;
                Some(FlowKey {
                    src: IpAddr::V6(ip.src),
                    dst: IpAddr::V6(ip.dst),
                    protocol: ip.next_header,
                    src_port: 0,
                    dst_port: 0,
                })
            }
            _ => None,
        }
    }

    /// A stable 64-bit hash of the tuple (for RSS-style spreading).
    pub fn hash64(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish()
    }

    /// The direction-normalized key: the endpoint pair is sorted so
    /// both directions of a connection produce the *same* key —
    /// `canonical(a→b) == canonical(b→a)`. Address and port swap
    /// together (they name one endpoint); the protocol is unchanged.
    ///
    /// Stateful elements key their per-flow tables by this, so a
    /// connection occupies one entry no matter which side sent the
    /// packet in hand. [`Self::rss_hash`] hashes the canonical
    /// orientation for the same reason: both directions must steer to
    /// the same shard or single-writer per-shard flow tables would see
    /// half a connection each.
    pub fn canonical(&self) -> FlowKey {
        if (self.dst, self.dst_port) < (self.src, self.src_port) {
            FlowKey {
                src: self.dst,
                dst: self.src,
                protocol: self.protocol,
                src_port: self.dst_port,
                dst_port: self.src_port,
            }
        } else {
            *self
        }
    }

    /// [`Self::canonical`] plus which direction this tuple was:
    /// [`FlowDirection::Forward`] if it already was canonical,
    /// [`FlowDirection::Reverse`] if the endpoints were swapped.
    pub fn canonical_with_direction(&self) -> (FlowKey, FlowDirection) {
        if (self.dst, self.dst_port) < (self.src, self.src_port) {
            (
                FlowKey {
                    src: self.dst,
                    dst: self.src,
                    protocol: self.protocol,
                    src_port: self.dst_port,
                    dst_port: self.src_port,
                },
                FlowDirection::Reverse,
            )
        } else {
            (*self, FlowDirection::Forward)
        }
    }

    /// The RSS steering hash: FNV-1a over the **canonical** tuple
    /// encoding (sorted endpoints, see [`Self::canonical`]), finished
    /// with a murmur3-style avalanche so the *low* bits — the ones
    /// `% shards` keeps — disperse even when tuples differ only in
    /// their trailing bytes (plain FNV-1a leaves the low bits badly
    /// clustered for e.g. dst-port-only variation).
    ///
    /// Hashing the canonical orientation makes the hash — and therefore
    /// bucket and shard placement — *direction-symmetric*: request and
    /// reply of one connection always steer to the same worker, the
    /// invariant the per-shard single-writer flow tables rely on.
    ///
    /// Unlike [`Self::hash64`] (tied to the std hasher implementation)
    /// this is stable across runs, processes, and platforms, so
    /// flow→queue placement decisions are reproducible — the property
    /// the sharded dataplane's differential tests rely on.
    pub fn rss_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let c = self.canonical();
        let mut h = OFFSET;
        h = match c.src {
            IpAddr::V4(a) => eat(h, &a.octets()),
            IpAddr::V6(a) => eat(h, &a.octets()),
        };
        h = match c.dst {
            IpAddr::V4(a) => eat(h, &a.octets()),
            IpAddr::V6(a) => eat(h, &a.octets()),
        };
        h = eat(h, &[c.protocol]);
        h = eat(h, &c.src_port.to_be_bytes());
        h = eat(h, &c.dst_port.to_be_bytes());
        // fmix64 finaliser (murmur3): full avalanche into the low bits.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    /// The RSS bucket this flow hashes to (see
    /// [`crate::steer::bucket_of`]) — the granularity at which the
    /// rebalancer migrates load: moving a bucket moves every flow in
    /// it, and never splits a flow.
    pub fn bucket(&self) -> usize {
        crate::steer::bucket_of(self.rss_hash())
    }

    /// The shard (worker receive queue) this flow maps to under
    /// `shards` shards and the identity bucket table:
    /// `bucket() % shards`. Stable for a fixed shard count — every
    /// packet of a flow lands on the same worker, which is what
    /// preserves intra-flow ordering across the parallel dataplane.
    /// (A rebalanced dataplane steers by
    /// [`crate::steer::BucketMap`] instead; the flow → bucket half of
    /// the mapping is shared.)
    pub fn shard_for(&self, shards: usize) -> usize {
        if shards <= 1 {
            0
        } else {
            self.bucket() % shards
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src, self.src_port, self.dst, self.dst_port, self.protocol
        )
    }
}

struct FlowEntry<T> {
    value: T,
    last_seen_ns: u64,
}

/// A bounded, soft-state table of per-flow values.
///
/// Entries expire `ttl_ns` after their last touch; when full, the
/// least-recently-seen entry is evicted.
///
/// # Examples
///
/// ```
/// use netkit_packet::flow::{FlowKey, FlowTable};
/// use std::net::IpAddr;
///
/// let table: FlowTable<u32> = FlowTable::new(2, 1_000);
/// let key = FlowKey {
///     src: "10.0.0.1".parse::<IpAddr>().unwrap(),
///     dst: "10.0.0.2".parse::<IpAddr>().unwrap(),
///     protocol: 17, src_port: 1, dst_port: 2,
/// };
/// table.insert(key, 7, 0);
/// assert_eq!(table.get(&key, 500), Some(7));
/// assert_eq!(table.get(&key, 5_000), None); // expired
/// ```
pub struct FlowTable<T> {
    entries: Mutex<HashMap<FlowKey, FlowEntry<T>>>,
    max_entries: usize,
    ttl_ns: u64,
}

impl<T: Clone> FlowTable<T> {
    /// Creates a table bounded to `max_entries` with soft TTL `ttl_ns`.
    pub fn new(max_entries: usize, ttl_ns: u64) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            max_entries,
            ttl_ns,
        }
    }

    /// Inserts or refreshes an entry at time `now_ns`, evicting the
    /// least-recently-seen entry if the table is full.
    pub fn insert(&self, key: FlowKey, value: T, now_ns: u64) {
        let mut entries = self.entries.lock();
        if entries.len() >= self.max_entries && !entries.contains_key(&key) {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_seen_ns)
                .map(|(k, _)| *k)
            {
                entries.remove(&oldest);
            }
        }
        entries.insert(
            key,
            FlowEntry {
                value,
                last_seen_ns: now_ns,
            },
        );
    }

    /// Fetches the entry and refreshes its timestamp, honouring the TTL.
    pub fn get(&self, key: &FlowKey, now_ns: u64) -> Option<T> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(key)?;
        if now_ns.saturating_sub(entry.last_seen_ns) > self.ttl_ns {
            entries.remove(key);
            return None;
        }
        entry.last_seen_ns = now_ns;
        Some(entry.value.clone())
    }

    /// Fetches or creates the entry, returning the value.
    pub fn get_or_insert_with(&self, key: FlowKey, now_ns: u64, make: impl FnOnce() -> T) -> T {
        if let Some(v) = self.get(&key, now_ns) {
            return v;
        }
        let v = make();
        self.insert(key, v.clone(), now_ns);
        v
    }

    /// Drops every entry older than the TTL; returns how many were
    /// removed.
    pub fn expire(&self, now_ns: u64) -> usize {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, e| now_ns.saturating_sub(e.last_seen_ns) <= self.ttl_ns);
        before - entries.len()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for FlowTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlowTable({} entries, max {}, ttl {}ns)",
            self.entries.lock().len(),
            self.max_entries,
            self.ttl_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src: format!("10.0.0.{n}").parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            protocol: proto::UDP,
            src_port: 1000 + n as u16,
            dst_port: 53,
        }
    }

    #[test]
    fn extract_udp_v4_tuple() {
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let k = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(k.src.to_string(), "10.0.0.1");
        assert_eq!(k.dst.to_string(), "10.0.0.2");
        assert_eq!((k.src_port, k.dst_port, k.protocol), (1234, 80, proto::UDP));
    }

    #[test]
    fn extract_v6_tuple_without_ports() {
        let pkt = PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2).build();
        let k = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(k.protocol, proto::UDP);
        assert_eq!((k.src_port, k.dst_port), (0, 0));
    }

    #[test]
    fn hash_is_stable_per_key() {
        let a = key(1);
        assert_eq!(a.hash64(), key(1).hash64());
        assert_ne!(a.hash64(), key(2).hash64());
    }

    #[test]
    fn rss_hash_is_reproducible_and_spreads() {
        let k = key(1);
        assert_eq!(k.rss_hash(), key(1).rss_hash());
        let shards: std::collections::HashSet<usize> =
            (0..32u8).map(|n| key(n).shard_for(4)).collect();
        assert!(shards.len() > 1, "32 flows must spread over 4 shards");
        for n in 0..8u8 {
            assert!(key(n).shard_for(4) < 4);
            assert_eq!(key(n).shard_for(1), 0);
            assert_eq!(key(n).shard_for(0), 0);
        }
    }

    #[test]
    fn rss_low_bits_disperse_for_trailing_byte_variation() {
        // Regression guard for the un-finalised FNV-1a weakness: flows
        // differing only in dst_port (the LAST bytes hashed) must still
        // spread near-evenly — `% shards` keeps only the low bits.
        let flow = |dport: u16| FlowKey {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.0.9.9".parse().unwrap(),
            protocol: proto::UDP,
            src_port: 6000,
            dst_port: dport,
        };
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0usize; shards];
            for dport in 5000..5128u16 {
                counts[flow(dport).shard_for(shards)] += 1;
            }
            let expect = 128 / shards;
            for (shard, &n) in counts.iter().enumerate() {
                assert!(
                    n >= expect / 2 && n <= expect * 2,
                    "shard {shard}/{shards} got {n} of 128 (expect ~{expect}): {counts:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_is_direction_invariant() {
        let ab = FlowKey {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.9.9.9".parse().unwrap(),
            protocol: proto::TCP,
            src_port: 49152,
            dst_port: 443,
        };
        let ba = FlowKey {
            src: ab.dst,
            dst: ab.src,
            protocol: ab.protocol,
            src_port: ab.dst_port,
            dst_port: ab.src_port,
        };
        assert_eq!(ab.canonical(), ba.canonical());
        // Canonicalising twice is a no-op.
        assert_eq!(ab.canonical().canonical(), ab.canonical());
        // The two orientations report opposite directions…
        let (ck_ab, dir_ab) = ab.canonical_with_direction();
        let (ck_ba, dir_ba) = ba.canonical_with_direction();
        assert_eq!(ck_ab, ck_ba);
        assert_eq!(dir_ab, dir_ba.flipped());
        assert_ne!(dir_ab.is_forward(), dir_ba.is_forward());
        // …and address/port swap together: the canonical key is one of
        // the two original tuples, never a cross-pairing.
        assert!(ck_ab == ab || ck_ab == ba);
    }

    #[test]
    fn canonical_breaks_address_ties_by_port() {
        // Same address both sides (hairpin): the port pair decides.
        let lo = FlowKey {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.0.0.1".parse().unwrap(),
            protocol: proto::UDP,
            src_port: 9000,
            dst_port: 80,
        };
        let hi = FlowKey {
            src: lo.dst,
            dst: lo.src,
            protocol: lo.protocol,
            src_port: lo.dst_port,
            dst_port: lo.src_port,
        };
        assert_eq!(lo.canonical(), hi.canonical());
        assert_eq!(lo.canonical().src_port, 80);
    }

    #[test]
    fn rss_affinity_holds_for_both_directions() {
        // The load-bearing invariant for per-shard stateful services:
        // request and reply steer to the same bucket, hence the same
        // shard, under every shard count.
        for n in 0..64u8 {
            let fwd = key(n);
            let rev = FlowKey {
                src: fwd.dst,
                dst: fwd.src,
                protocol: fwd.protocol,
                src_port: fwd.dst_port,
                dst_port: fwd.src_port,
            };
            assert_eq!(fwd.rss_hash(), rev.rss_hash(), "flow {n}");
            assert_eq!(fwd.bucket(), rev.bucket(), "flow {n}");
            for shards in [1usize, 2, 3, 4, 8] {
                assert_eq!(fwd.shard_for(shards), rev.shard_for(shards), "flow {n}");
            }
        }
    }

    #[test]
    fn reply_frames_steer_to_the_request_shard() {
        // End to end through the frame parser: a reply built by
        // swapping endpoints lands on the same shard as the request.
        let req = PacketBuilder::udp_v4("10.0.0.7", "10.9.9.9", 5353, 53).build();
        let rsp = PacketBuilder::udp_v4("10.9.9.9", "10.0.0.7", 53, 5353).build();
        assert_eq!(shard_of(&req, 4), shard_of(&rsp, 4));
        let kq = FlowKey::from_packet(&req).unwrap();
        let kr = FlowKey::from_packet(&rsp).unwrap();
        assert_eq!(kq.canonical(), kr.canonical());
        assert_eq!(kq.rss_hash(), kr.rss_hash());
    }

    #[test]
    fn shard_of_prefers_driver_stamp() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(shard_of(&pkt, 4), key.shard_for(4));
        pkt.meta.rss_hash = Some(key.rss_hash() + 1);
        assert_eq!(shard_of(&pkt, 4), ((key.rss_hash() + 1) % 4) as usize);
        // Non-flow traffic parks on shard 0.
        let arp = Packet::from_slice(&[0u8; 14]);
        assert_eq!(shard_of(&arp, 4), 0);
        // shards == 0 behaves exactly like shards == 1.
        assert_eq!(shard_of(&pkt, 0), shard_of(&pkt, 1));
        assert_eq!(shard_of(&pkt, 0), 0);
    }

    #[test]
    fn stamp_rss_writes_once_and_matches_flow_hash() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(stamp_rss(&mut pkt), Some(key.rss_hash()));
        // A pre-existing stamp (e.g. written by the NIC) is preserved.
        pkt.meta.rss_hash = Some(7);
        assert_eq!(stamp_rss(&mut pkt), Some(7));
        // Non-flow frames stay unstamped.
        let mut arp = Packet::from_slice(&[0u8; 14]);
        assert_eq!(stamp_rss(&mut arp), None);
        assert_eq!(arp.meta.rss_hash, None);
    }

    #[test]
    fn legacy_rss_annotation_shims_onto_the_field() {
        #[allow(deprecated)]
        const KEY: &str = RSS_ANNOTATION;
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        // Old-style writers land on the new field…
        pkt.meta.annotate("rss", 42);
        assert_eq!(pkt.meta.rss_hash, Some(42));
        // …and old-style readers see field writes.
        pkt.meta.rss_hash = Some(43);
        assert_eq!(pkt.meta.annotation(KEY), Some(43));
        // The shimmed key never occupies a table slot.
        assert!(pkt.meta.annotations().is_empty());
    }

    #[test]
    fn from_frame_agrees_with_from_packet() {
        let pkt = PacketBuilder::udp_v4("10.1.2.3", "10.4.5.6", 1111, 2222).build();
        assert_eq!(FlowKey::from_frame(pkt.data()), FlowKey::from_packet(&pkt));
        let v6 = PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1, 2).build();
        assert_eq!(FlowKey::from_frame(v6.data()), FlowKey::from_packet(&v6));
        assert_eq!(FlowKey::from_frame(&[0u8; 14]), None);
        assert_eq!(FlowKey::from_frame(&[]), None);
    }

    #[test]
    fn lru_eviction_when_full() {
        let table: FlowTable<u32> = FlowTable::new(2, u64::MAX);
        table.insert(key(1), 1, 100);
        table.insert(key(2), 2, 200);
        table.insert(key(3), 3, 300); // evicts key(1)
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(&key(1), 300), None);
        assert_eq!(table.get(&key(2), 300), Some(2));
        assert_eq!(table.get(&key(3), 300), Some(3));
    }

    #[test]
    fn get_refreshes_recency() {
        let table: FlowTable<u32> = FlowTable::new(2, u64::MAX);
        table.insert(key(1), 1, 100);
        table.insert(key(2), 2, 200);
        table.get(&key(1), 500); // key(1) is now the most recent
        table.insert(key(3), 3, 600); // evicts key(2)
        assert!(table.get(&key(1), 600).is_some());
        assert!(table.get(&key(2), 600).is_none());
    }

    #[test]
    fn soft_ttl_expiry() {
        let table: FlowTable<u32> = FlowTable::new(8, 1_000);
        table.insert(key(1), 1, 0);
        table.insert(key(2), 2, 900);
        assert_eq!(table.expire(1_500), 1, "key(1) aged out");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let table: FlowTable<u32> = FlowTable::new(8, u64::MAX);
        let mut made = 0;
        let v1 = table.get_or_insert_with(key(1), 0, || {
            made += 1;
            42
        });
        let v2 = table.get_or_insert_with(key(1), 10, || {
            made += 1;
            7
        });
        assert_eq!((v1, v2, made), (42, 42, 1));
    }
}
