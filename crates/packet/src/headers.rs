//! Protocol headers: Ethernet, IPv4, IPv6, UDP, TCP.
//!
//! Parsers take byte slices and return typed headers; writers emit wire
//! form. The in-band fast path additionally gets in-place mutators
//! (TTL decrement, DSCP rewrite) that use the RFC 1624 incremental
//! checksum so per-packet work stays minimal.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::checksum::{incremental_update, internet_checksum, verify};
use crate::error::{ParseError, ParseResult};

/// IP protocol numbers used across the workspace.
pub mod proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values the router understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86dd).
    Ipv6,
    /// ARP (0x0806).
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// Raw wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes a raw wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86dd => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header (14 bytes, no VLAN).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Wire length of the header.
    pub const LEN: usize = 14;

    /// Parses the header from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails with [`ParseError::Truncated`] when `buf` is too short.
    pub fn parse(buf: &[u8]) -> ParseResult<Self> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated {
                header: "ethernet",
                needed: Self::LEN,
                available: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(Self {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
        })
    }

    /// Appends the wire form to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }
}

/// An IPv4 header (options preserved as opaque length).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits).
    pub dscp: u8,
    /// Explicit congestion notification (2 bits).
    pub ecn: u8,
    /// Total datagram length including header.
    pub total_len: u16,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (see [`proto`]).
    pub protocol: u8,
    /// Header checksum as found on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header length in bytes (IHL × 4).
    pub header_len: usize,
}

impl Ipv4Header {
    /// Minimum (option-less) header length.
    pub const MIN_LEN: usize = 20;

    /// Parses and validates the header at the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails on truncation, wrong version, inconsistent lengths, or a bad
    /// checksum.
    pub fn parse(buf: &[u8]) -> ParseResult<Self> {
        if buf.len() < Self::MIN_LEN {
            return Err(ParseError::Truncated {
                header: "ipv4",
                needed: Self::MIN_LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion {
                header: "ipv4",
                found: version,
            });
        }
        let header_len = ((buf[0] & 0x0f) as usize) * 4;
        if header_len < Self::MIN_LEN {
            return Err(ParseError::BadLength {
                header: "ipv4",
                detail: "ihl below 5",
            });
        }
        if buf.len() < header_len {
            return Err(ParseError::Truncated {
                header: "ipv4",
                needed: header_len,
                available: buf.len(),
            });
        }
        if !verify(&buf[..header_len]) {
            return Err(ParseError::BadChecksum { header: "ipv4" });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < header_len {
            return Err(ParseError::BadLength {
                header: "ipv4",
                detail: "total_len below ihl",
            });
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok(Self {
            dscp: buf[1] >> 2,
            ecn: buf[1] & 0x03,
            total_len,
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: buf[9],
            checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            header_len,
        })
    }

    /// Appends an option-less wire form with a freshly computed checksum.
    pub fn write(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45);
        out.push((self.dscp << 2) | (self.ecn & 0x03));
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = internet_checksum(&out[start..start + Self::MIN_LEN]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decrements the TTL directly in a wire buffer, updating the
    /// checksum incrementally (RFC 1624). Returns the new TTL.
    ///
    /// # Errors
    ///
    /// Fails with [`ParseError::Truncated`] on short buffers and
    /// [`ParseError::BadLength`] when the TTL is already zero.
    pub fn decrement_ttl_in_place(buf: &mut [u8]) -> ParseResult<u8> {
        if buf.len() < Self::MIN_LEN {
            return Err(ParseError::Truncated {
                header: "ipv4",
                needed: Self::MIN_LEN,
                available: buf.len(),
            });
        }
        let ttl = buf[8];
        if ttl == 0 {
            return Err(ParseError::BadLength {
                header: "ipv4",
                detail: "ttl already zero",
            });
        }
        let old_word = u16::from_be_bytes([buf[8], buf[9]]);
        let new_ttl = ttl - 1;
        let new_word = u16::from_be_bytes([new_ttl, buf[9]]);
        let old_ck = u16::from_be_bytes([buf[10], buf[11]]);
        let new_ck = incremental_update(old_ck, old_word, new_word);
        buf[8] = new_ttl;
        buf[10..12].copy_from_slice(&new_ck.to_be_bytes());
        Ok(new_ttl)
    }

    /// Rewrites the DSCP directly in a wire buffer with an incremental
    /// checksum update (diffserv marking).
    ///
    /// # Errors
    ///
    /// Fails with [`ParseError::Truncated`] on short buffers.
    pub fn set_dscp_in_place(buf: &mut [u8], dscp: u8) -> ParseResult<()> {
        if buf.len() < Self::MIN_LEN {
            return Err(ParseError::Truncated {
                header: "ipv4",
                needed: Self::MIN_LEN,
                available: buf.len(),
            });
        }
        let old_word = u16::from_be_bytes([buf[0], buf[1]]);
        let new_tos = (dscp << 2) | (buf[1] & 0x03);
        let new_word = u16::from_be_bytes([buf[0], new_tos]);
        let old_ck = u16::from_be_bytes([buf[10], buf[11]]);
        let new_ck = incremental_update(old_ck, old_word, new_word);
        buf[1] = new_tos;
        buf[10..12].copy_from_slice(&new_ck.to_be_bytes());
        Ok(())
    }
}

/// An IPv6 fixed header (40 bytes; extension headers are treated as
/// payload).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv6Header {
    /// Traffic class (DSCP << 2 | ECN).
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length (excludes the fixed header).
    pub payload_len: u16,
    /// Next header (see [`proto`]).
    pub next_header: u8,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Wire length of the fixed header.
    pub const LEN: usize = 40;

    /// Parses the fixed header at the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a non-6 version nibble.
    pub fn parse(buf: &[u8]) -> ParseResult<Self> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated {
                header: "ipv6",
                needed: Self::LEN,
                available: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(ParseError::BadVersion {
                header: "ipv6",
                found: version,
            });
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Ok(Self {
            traffic_class: (buf[0] << 4) | (buf[1] >> 4),
            flow_label: (((buf[1] & 0x0f) as u32) << 16) | ((buf[2] as u32) << 8) | buf[3] as u32,
            payload_len: u16::from_be_bytes([buf[4], buf[5]]),
            next_header: buf[6],
            hop_limit: buf[7],
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }

    /// Appends the wire form to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(0x60 | (self.traffic_class >> 4));
        out.push((self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0f));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        out.push(self.next_header);
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }

    /// Decrements the hop limit in a wire buffer (IPv6 has no header
    /// checksum, so this is a single byte write). Returns the new value.
    ///
    /// # Errors
    ///
    /// Fails with [`ParseError::Truncated`] on short buffers and
    /// [`ParseError::BadLength`] when the hop limit is already zero.
    pub fn decrement_hop_limit_in_place(buf: &mut [u8]) -> ParseResult<u8> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated {
                header: "ipv6",
                needed: Self::LEN,
                available: buf.len(),
            });
        }
        if buf[7] == 0 {
            return Err(ParseError::BadLength {
                header: "ipv6",
                detail: "hop limit zero",
            });
        }
        buf[7] -= 1;
        Ok(buf[7])
    }
}

/// A UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
    /// Checksum (0 = absent, legal over IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Wire length of the header.
    pub const LEN: usize = 8;

    /// Parses the header at the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails with [`ParseError::Truncated`] when `buf` is too short.
    pub fn parse(buf: &[u8]) -> ParseResult<Self> {
        if buf.len() < Self::LEN {
            return Err(ParseError::Truncated {
                header: "udp",
                needed: Self::LEN,
                available: buf.len(),
            });
        }
        Ok(Self {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }

    /// Appends the wire form to `out` (checksum written as-is).
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }
}

/// TCP flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// The FIN bit.
    pub const FIN: Self = Self(0x01);
    /// The SYN bit.
    pub const SYN: Self = Self(0x02);
    /// The RST bit.
    pub const RST: Self = Self(0x04);
    /// The ACK bit.
    pub const ACK: Self = Self(0x10);

    /// SYN bit set?
    pub fn syn(&self) -> bool {
        self.0 & 0x02 != 0
    }
    /// ACK bit set?
    pub fn ack(&self) -> bool {
        self.0 & 0x10 != 0
    }
    /// FIN bit set?
    pub fn fin(&self) -> bool {
        self.0 & 0x01 != 0
    }
    /// RST bit set?
    pub fn rst(&self) -> bool {
        self.0 & 0x04 != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        Self(self.0 | rhs.0)
    }
}

/// A TCP header (options treated as opaque).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Header length in bytes (data offset × 4).
    pub header_len: usize,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Minimum (option-less) header length.
    pub const MIN_LEN: usize = 20;

    /// Parses the header at the front of `buf`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a data offset below 5.
    pub fn parse(buf: &[u8]) -> ParseResult<Self> {
        if buf.len() < Self::MIN_LEN {
            return Err(ParseError::Truncated {
                header: "tcp",
                needed: Self::MIN_LEN,
                available: buf.len(),
            });
        }
        let header_len = ((buf[12] >> 4) as usize) * 4;
        if header_len < Self::MIN_LEN {
            return Err(ParseError::BadLength {
                header: "tcp",
                detail: "data offset below 5",
            });
        }
        Ok(Self {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            header_len,
            flags: TcpFlags(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
        })
    }

    /// Appends the wire form to `out` (option-less: the data offset is
    /// written as `header_len / 4`; checksum and urgent pointer as
    /// zero).
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((self.header_len / 4) as u8) << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum
        out.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ipv4() -> Vec<u8> {
        let mut out = Vec::new();
        Ipv4Header {
            dscp: 46,
            ecn: 0,
            total_len: 28,
            identification: 0x1234,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol: proto::UDP,
            checksum: 0,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 200),
            header_len: 20,
        }
        .write(&mut out);
        out
    }

    #[test]
    fn ipv4_roundtrip() {
        let wire = sample_ipv4();
        let h = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(h.dscp, 46);
        assert_eq!(h.ttl, 64);
        assert_eq!(h.protocol, proto::UDP);
        assert_eq!(h.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(h.dst, Ipv4Addr::new(192, 168, 1, 200));
        assert!(h.dont_fragment);
        assert_eq!(h.header_len, 20);
    }

    #[test]
    fn ipv4_rejects_corruption() {
        let mut wire = sample_ipv4();
        wire[9] ^= 0xff; // flip protocol without fixing checksum
        assert_eq!(
            Ipv4Header::parse(&wire),
            Err(ParseError::BadChecksum { header: "ipv4" })
        );
        let short = &sample_ipv4()[..10];
        assert!(matches!(
            Ipv4Header::parse(short),
            Err(ParseError::Truncated { .. })
        ));
        let mut bad_version = sample_ipv4();
        bad_version[0] = 0x65;
        assert!(matches!(
            Ipv4Header::parse(&bad_version),
            Err(ParseError::BadVersion { found: 6, .. })
        ));
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut wire = sample_ipv4();
        for expect in (0..64u8).rev() {
            let new_ttl = Ipv4Header::decrement_ttl_in_place(&mut wire).unwrap();
            assert_eq!(new_ttl, expect);
            let h = Ipv4Header::parse(&wire).expect("checksum must stay valid");
            assert_eq!(h.ttl, expect);
        }
        assert!(Ipv4Header::decrement_ttl_in_place(&mut wire).is_err());
    }

    #[test]
    fn dscp_rewrite_keeps_checksum_valid() {
        let mut wire = sample_ipv4();
        Ipv4Header::set_dscp_in_place(&mut wire, 10).unwrap();
        let h = Ipv4Header::parse(&wire).expect("checksum must stay valid");
        assert_eq!(h.dscp, 10);
        assert_eq!(h.ecn, 0);
    }

    #[test]
    fn ethernet_roundtrip() {
        let hdr = EthernetHeader {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        };
        let mut out = Vec::new();
        hdr.write(&mut out);
        assert_eq!(out.len(), EthernetHeader::LEN);
        assert_eq!(EthernetHeader::parse(&out).unwrap(), hdr);
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from_u16(0x1234), EtherType::Other(0x1234));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }

    #[test]
    fn ipv6_roundtrip_and_hop_limit() {
        let hdr = Ipv6Header {
            traffic_class: 0xb8,
            flow_label: 0xabcde,
            payload_len: 16,
            next_header: proto::UDP,
            hop_limit: 3,
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
        };
        let mut out = Vec::new();
        hdr.write(&mut out);
        assert_eq!(out.len(), Ipv6Header::LEN);
        let parsed = Ipv6Header::parse(&out).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(
            Ipv6Header::decrement_hop_limit_in_place(&mut out).unwrap(),
            2
        );
        assert_eq!(Ipv6Header::parse(&out).unwrap().hop_limit, 2);
    }

    #[test]
    fn udp_roundtrip() {
        let hdr = UdpHeader {
            src_port: 5004,
            dst_port: 53,
            length: 24,
            checksum: 0,
        };
        let mut out = Vec::new();
        hdr.write(&mut out);
        assert_eq!(UdpHeader::parse(&out).unwrap(), hdr);
        assert!(UdpHeader::parse(&out[..4]).is_err());
    }

    #[test]
    fn tcp_parse_flags() {
        let mut wire = vec![0u8; 20];
        wire[0..2].copy_from_slice(&443u16.to_be_bytes());
        wire[2..4].copy_from_slice(&80u16.to_be_bytes());
        wire[12] = 0x50; // data offset 5
        wire[13] = 0x12; // SYN|ACK
        let h = TcpHeader::parse(&wire).unwrap();
        assert_eq!(h.src_port, 443);
        assert!(h.flags.syn() && h.flags.ack());
        assert!(!h.flags.fin() && !h.flags.rst());
        let mut bad = wire.clone();
        bad[12] = 0x40; // offset 4 < 5
        assert!(TcpHeader::parse(&bad).is_err());
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0, 1]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
