//! Sketch-based traffic summaries: count-min and Space-Saving.
//!
//! [`crate::steer::BucketLoad`] counts *packets per RSS bucket* — 256
//! uniform cells that cannot tell one elephant flow from a thousand
//! mice sharing its bucket. The sketches here summarise *per-flow
//! byte weight* in bounded memory: [`CountMinSketch`] answers point
//! queries ("how many bytes did flow `h` carry this window?") with a
//! one-sided (ε, δ) error bound, and [`SpaceSaving`] maintains the
//! top-k heavy hitters with a deterministic containment guarantee.
//! [`FlowSketch`] combines both behind the same
//! record / peek ([`FlowSketch::snapshot`]) / [`FlowSketch::decay`] /
//! [`FlowSketch::retire`] window discipline `BucketLoad` uses, so the
//! control plane can treat byte evidence and packet evidence
//! identically: peek a window, judge it, then either retire exactly
//! what was judged (decision applied) or decay (decision declined).
//!
//! Concurrency contract (mirrors `BucketLoad`): the `record_*`
//! methods are safe from any thread at any time; the window-closing
//! operations (`decay`, `retire`) assume a single consumer — the
//! control plane — and only ever subtract amounts they observed, so
//! concurrent recording survives them without loss.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::packet::Packet;

/// murmur3's 64-bit finaliser: a full-avalanche bijection, the same
/// mix [`crate::flow::FlowKey::rss_hash`] finishes with.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Fixed per-row seeds: `fmix64` of odd constants, so every row hashes
/// the same key to an independent-looking column. Deterministic across
/// runs and platforms — sketch placement is reproducible, like RSS.
fn row_seed(row: usize) -> u64 {
    fmix64(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(2 * row as u64 + 1))
}

/// A count-min sketch over 64-bit flow hashes.
///
/// `depth` rows of `width` counters; recording adds the weight to one
/// counter per row, estimating takes the minimum over rows. The
/// classic guarantee: with `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`
/// (see [`Self::with_error`]), a point query never under-counts and
/// over-counts by more than `ε · N` with probability at least `1 − δ`,
/// where `N` is the total recorded weight.
///
/// Counters are relaxed atomics; see the
/// [module docs](self) for the record/peek/decay/retire contract.
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    /// Row-major `depth × width` counter matrix.
    cells: Vec<AtomicU64>,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions (both clamped to ≥ 1).
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(1);
        let depth = depth.max(1);
        let mut cells = Vec::with_capacity(width * depth);
        cells.resize_with(width * depth, || AtomicU64::new(0));
        Self {
            width,
            depth,
            cells,
        }
    }

    /// Creates a sketch sized for the (ε, δ) guarantee:
    /// `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        let epsilon = epsilon.clamp(1e-9, 1.0);
        let delta = delta.clamp(1e-9, 1.0 - 1e-9);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(width, depth)
    }

    /// Number of counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The ε this geometry guarantees (`e / width`).
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// The δ this geometry guarantees (`e^-depth`).
    pub fn delta(&self) -> f64 {
        (-(self.depth as f64)).exp()
    }

    fn column(&self, row: usize, hash: u64) -> usize {
        let mixed = fmix64(hash ^ row_seed(row));
        // The default geometries use power-of-two widths; masking
        // replaces the 64-bit division on the per-packet record and
        // admission-check paths.
        if self.width.is_power_of_two() {
            (mixed as usize) & (self.width - 1)
        } else {
            (mixed % self.width as u64) as usize
        }
    }

    /// Adds `weight` to the key's counter in every row. Any thread.
    pub fn record(&self, hash: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        for row in 0..self.depth {
            let col = self.column(row, hash);
            self.cells[row * self.width + col].fetch_add(weight, Ordering::Relaxed);
        }
    }

    /// Point query: the minimum over rows — never an under-count.
    pub fn estimate(&self, hash: u64) -> u64 {
        (0..self.depth)
            .map(|row| {
                let col = self.column(row, hash);
                self.cells[row * self.width + col].load(Ordering::Relaxed)
            })
            .min()
            .unwrap_or(0)
    }

    /// Whether the key's weight is provably below `threshold` — i.e.
    /// `estimate(hash) < threshold` — exiting at the first row that
    /// proves it. The estimate is the minimum over rows, so one row
    /// below the threshold settles the question; for the common case
    /// (a light key, every row small) this is a single counter read
    /// instead of `depth`.
    pub fn below(&self, hash: u64, threshold: u64) -> bool {
        (0..self.depth).any(|row| {
            let col = self.column(row, hash);
            self.cells[row * self.width + col].load(Ordering::Relaxed) < threshold
        })
    }

    /// Total recorded weight: the minimum row sum (rows agree exactly
    /// in quiescence; under concurrent recording the minimum is the
    /// conservative choice).
    pub fn total(&self) -> u64 {
        (0..self.depth)
            .map(|row| {
                self.cells[row * self.width..(row + 1) * self.width]
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .min()
            .unwrap_or(0)
    }

    /// Copies the current counter matrix (row-major) — the peek half
    /// of peek-then-commit.
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Adds a previously [`Self::snapshot`]-ed matrix from a sketch of
    /// the **same geometry** into this one — how per-shard sketches
    /// merge into a global view (count-min is mergeable cell-wise).
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not hold `depth × width` entries.
    pub fn absorb(&self, cells: &[u64]) {
        assert_eq!(
            cells.len(),
            self.cells.len(),
            "one cell per counter (same geometry)"
        );
        for (c, &w) in self.cells.iter().zip(cells) {
            if w > 0 {
                c.fetch_add(w, Ordering::Relaxed);
            }
        }
    }

    /// One exponential decay step: every counter keeps an `alpha`
    /// fraction (clamped to `[0, 1]`), rounding down. Only the
    /// *observed* amount is shed, so weight recorded concurrently
    /// survives in full. Single-consumer.
    pub fn decay(&self, alpha: f64) {
        let alpha = alpha.clamp(0.0, 1.0);
        for c in &self.cells {
            let cur = c.load(Ordering::Relaxed);
            let shed = cur - (cur as f64 * alpha) as u64;
            if shed > 0 {
                // Subtract-what-was-seen keeps concurrent increments.
                c.fetch_sub(shed, Ordering::Relaxed);
            }
        }
    }

    /// Subtracts a previously [`Self::snapshot`]-ed matrix (saturating
    /// per cell) — the commit half of peek-then-commit: an applied
    /// decision retires exactly the evidence it was planned on.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not hold `depth × width` entries.
    pub fn retire(&self, cells: &[u64]) {
        assert_eq!(
            cells.len(),
            self.cells.len(),
            "one cell per counter (same geometry)"
        );
        for (c, &judged) in self.cells.iter().zip(cells) {
            if judged == 0 {
                continue;
            }
            let mut cur = c.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(judged);
                match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Fixed memory footprint of the counter matrix in bytes.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cells.len() * std::mem::size_of::<AtomicU64>()
    }
}

impl fmt::Debug for CountMinSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CountMinSketch({}x{}, {} total, eps {:.4}, delta {:.4})",
            self.depth,
            self.width,
            self.total(),
            self.epsilon(),
            self.delta()
        )
    }
}

/// One reported heavy hitter: a flow hash with its estimated weight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeavyHitter {
    /// The flow's RSS hash ([`crate::flow::FlowKey::rss_hash`]) —
    /// direction-symmetric, and reducible to the flow's steering
    /// bucket via [`crate::steer::bucket_of`].
    pub hash: u64,
    /// Maximum possible over-count baked into `weight` (the evicted
    /// counter's value at takeover, per Space-Saving).
    pub error: u64,
    /// Estimated weight (bytes, under [`FlowSketch`]'s discipline).
    /// Never an under-count: `true ≤ weight ≤ true + error`.
    pub weight: u64,
}

/// A Space-Saving counter: estimated weight plus over-count bound.
#[derive(Clone, Copy, Debug, Default)]
struct SsCounter {
    weight: u64,
    error: u64,
}

/// The Space-Saving top-k heavy-hitter summary (Metwally et al.).
///
/// At most `capacity` monitored flows. Recording a monitored flow adds
/// to its counter; an unmonitored flow takes over the minimum counter,
/// inheriting its weight as the new entry's error bound. Deterministic
/// guarantees, for total recorded weight `N`:
///
/// * every flow with true weight `> N / capacity` is monitored, and
/// * every reported weight satisfies `true ≤ weight ≤ true + N/capacity`.
///
/// The inner state sits behind a mutex, but the intended deployment is
/// **uncontended by construction**: one instance per shard, recorded
/// into only by that shard's worker (RSS affinity — the same
/// single-writer argument as the per-shard flow tables), peeked by the
/// single control-plane consumer.
pub struct SpaceSaving {
    capacity: usize,
    total: AtomicU64,
    inner: Mutex<std::collections::HashMap<u64, SsCounter>>,
}

impl SpaceSaving {
    /// Creates a summary monitoring at most `capacity` flows (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            total: AtomicU64::new(0),
            inner: Mutex::new(std::collections::HashMap::with_capacity(capacity)),
        }
    }

    /// Maximum number of monitored flows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total recorded weight across all flows (monitored or not).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The containment threshold: any flow whose true weight exceeds
    /// `total() / capacity()` is guaranteed to be monitored.
    pub fn threshold(&self) -> u64 {
        self.total() / self.capacity as u64
    }

    /// Records `weight` for `hash`. Any thread (serialised internally;
    /// uncontended in the per-shard single-writer deployment).
    pub fn record(&self, hash: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total.fetch_add(weight, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(c) = inner.get_mut(&hash) {
            c.weight += weight;
            return;
        }
        if inner.len() < self.capacity {
            inner.insert(hash, SsCounter { weight, error: 0 });
            return;
        }
        // Take over the minimum counter (ties broken by smaller hash
        // for determinism); its weight becomes the new entry's error.
        let (&victim, &min) = inner
            .iter()
            .min_by_key(|(k, c)| (c.weight, **k))
            .expect("capacity >= 1");
        inner.remove(&victim);
        inner.insert(
            hash,
            SsCounter {
                weight: min.weight + weight,
                error: min.weight,
            },
        );
    }

    /// The monitored flows, heaviest first (ties by smaller hash, so
    /// the order is deterministic). This is the peek half of
    /// peek-then-commit for the top-k side.
    pub fn top(&self) -> Vec<HeavyHitter> {
        let inner = self.inner.lock();
        let mut out: Vec<HeavyHitter> = inner
            .iter()
            .map(|(&hash, c)| HeavyHitter {
                hash,
                weight: c.weight,
                error: c.error,
            })
            .collect();
        out.sort_by_key(|h| (std::cmp::Reverse(h.weight), h.hash));
        out
    }

    /// Merges per-shard [`Self::top`] lists into one deterministic
    /// global top list: weights and error bounds add per hash (each
    /// shard observed a disjoint share of the flow), sorted heaviest
    /// first and truncated to `capacity`.
    pub fn merge(capacity: usize, lists: &[Vec<HeavyHitter>]) -> Vec<HeavyHitter> {
        let mut combined: std::collections::HashMap<u64, SsCounter> =
            std::collections::HashMap::new();
        for list in lists {
            for h in list {
                let c = combined.entry(h.hash).or_default();
                c.weight += h.weight;
                c.error += h.error;
            }
        }
        let mut out: Vec<HeavyHitter> = combined
            .into_iter()
            .map(|(hash, c)| HeavyHitter {
                hash,
                weight: c.weight,
                error: c.error,
            })
            .collect();
        out.sort_by_key(|h| (std::cmp::Reverse(h.weight), h.hash));
        out.truncate(capacity.max(1));
        out
    }

    /// One exponential decay step: weights, error bounds, and the
    /// running total all keep an `alpha` fraction (rounding down);
    /// flows decayed to zero weight are dropped. Single-consumer.
    pub fn decay(&self, alpha: f64) {
        let alpha = alpha.clamp(0.0, 1.0);
        let mut inner = self.inner.lock();
        inner.retain(|_, c| {
            c.weight = (c.weight as f64 * alpha) as u64;
            c.error = (c.error as f64 * alpha) as u64;
            c.weight > 0
        });
        let cur = self.total.load(Ordering::Relaxed);
        let shed = cur - (cur as f64 * alpha) as u64;
        if shed > 0 {
            self.total.fetch_sub(shed, Ordering::Relaxed);
        }
    }

    /// Subtracts a previously [`Self::top`]-ed window (saturating per
    /// flow; flows hitting zero are dropped) — the commit half of
    /// peek-then-commit. Weight recorded after the peek survives.
    pub fn retire(&self, window: &[HeavyHitter]) {
        let mut inner = self.inner.lock();
        let mut retired: u64 = 0;
        for judged in window {
            if let Some(c) = inner.get_mut(&judged.hash) {
                let sub = judged.weight.min(c.weight);
                retired += sub;
                c.weight -= sub;
                c.error = c.error.saturating_sub(judged.error);
                if c.weight == 0 {
                    inner.remove(&judged.hash);
                }
            }
        }
        drop(inner);
        if retired > 0 {
            let mut cur = self.total.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(retired);
                match self.total.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Fixed memory footprint in bytes (the monitored-set map at
    /// capacity).
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.capacity * (std::mem::size_of::<u64>() + std::mem::size_of::<SsCounter>())
    }
}

impl fmt::Debug for SpaceSaving {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SpaceSaving({} of {} monitored, {} total)",
            self.inner.lock().len(),
            self.capacity,
            self.total()
        )
    }
}

/// Geometry for a [`FlowSketch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchConfig {
    /// Count-min counters per row.
    pub width: usize,
    /// Count-min rows.
    pub depth: usize,
    /// Space-Saving monitored-flow capacity.
    pub top_capacity: usize,
}

impl Default for SketchConfig {
    /// 4 × 1024 counters (ε ≈ 0.27%, δ ≈ 1.8%) plus a top-32 summary —
    /// ≈ 34 KiB per shard, fixed.
    fn default() -> Self {
        Self {
            width: 1024,
            depth: 4,
            top_capacity: 32,
        }
    }
}

/// A closed observation window peeked from a [`FlowSketch`]: the
/// count-min matrix and the top-k list as of the peek. Pass it back to
/// [`FlowSketch::retire`] once the decision planned on it is applied.
#[derive(Clone, Debug)]
pub struct FlowSketchWindow {
    /// Row-major count-min cells ([`CountMinSketch::snapshot`]).
    pub cells: Vec<u64>,
    /// Heavy hitters as of the peek ([`SpaceSaving::top`]).
    pub top: Vec<HeavyHitter>,
}

impl FlowSketchWindow {
    /// Total byte weight in the window (minimum count-min row sum is
    /// not recoverable from the flat cells without the geometry, so
    /// this sums the top-k weights — the evidence the planner uses).
    pub fn top_total(&self) -> u64 {
        self.top.iter().map(|h| h.weight).sum()
    }
}

/// Per-shard flow-level byte accounting: a [`CountMinSketch`] for
/// point queries plus a [`SpaceSaving`] top-k, recorded together.
///
/// The recorded key is the packet's stamped RSS hash
/// ([`crate::packet::PacketMeta::rss_hash`], falling back to a parse —
/// the same preference order as [`crate::steer::bucket_of_packet`]),
/// and the recorded weight is the frame length in bytes. Byte weight
/// is what distinguishes an elephant from the mice sharing its bucket:
/// packet counts (what [`crate::steer::BucketLoad`] sees) can be
/// perfectly uniform while bytes are wildly skewed.
///
/// Window discipline and threading contract are exactly
/// `BucketLoad`'s; see the [module docs](self).
pub struct FlowSketch {
    cms: CountMinSketch,
    top: SpaceSaving,
}

impl FlowSketch {
    /// Creates a sketch with the given geometry.
    pub fn new(config: SketchConfig) -> Self {
        Self {
            cms: CountMinSketch::new(config.width, config.depth),
            top: SpaceSaving::new(config.top_capacity),
        }
    }

    /// Records `weight` bytes for flow `hash`. Any thread.
    pub fn record(&self, hash: u64, weight: u64) {
        self.cms.record(hash, weight);
        self.top.record(hash, weight);
    }

    /// Records one packet: key = stamped RSS hash (or a parse when
    /// unstamped), weight = frame length. Non-flow frames (no hash)
    /// are not recorded.
    pub fn record_packet(&self, pkt: &Packet) {
        let hash = pkt
            .meta
            .rss_hash
            .or_else(|| crate::flow::FlowKey::from_packet(pkt).map(|k| k.rss_hash()));
        if let Some(h) = hash {
            self.record(h, pkt.len() as u64);
        }
    }

    /// Records every packet of a batch.
    pub fn record_batch(&self, batch: &crate::batch::PacketBatch) {
        for pkt in batch {
            self.record_packet(pkt);
        }
    }

    /// Point query for a flow's byte weight this window (never an
    /// under-count).
    pub fn estimate(&self, hash: u64) -> u64 {
        self.cms.estimate(hash)
    }

    /// Whether the flow's byte weight is provably below `threshold`
    /// (`estimate < threshold`), with the early-exit read of
    /// [`CountMinSketch::below`] — the per-packet admission check of
    /// an inline guard, priced at one counter read for light flows.
    pub fn below(&self, hash: u64, threshold: u64) -> bool {
        self.cms.below(hash, threshold)
    }

    /// The monitored heavy hitters, heaviest first.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        self.top.top()
    }

    /// Total recorded byte weight.
    pub fn total_bytes(&self) -> u64 {
        self.top.total()
    }

    /// Peeks the current window (count-min matrix + top-k list).
    pub fn snapshot(&self) -> FlowSketchWindow {
        FlowSketchWindow {
            cells: self.cms.snapshot(),
            top: self.top.top(),
        }
    }

    /// One exponential decay step over both structures (declined
    /// decision). Single-consumer.
    pub fn decay(&self, alpha: f64) {
        self.cms.decay(alpha);
        self.top.decay(alpha);
    }

    /// Retires a previously peeked window from both structures
    /// (applied decision). Single-consumer.
    ///
    /// # Panics
    ///
    /// Panics if `window.cells` came from a different geometry.
    pub fn retire(&self, window: &FlowSketchWindow) {
        self.cms.retire(&window.cells);
        self.top.retire(&window.top);
    }

    /// The count-min half (for geometry and (ε, δ) introspection).
    pub fn count_min(&self) -> &CountMinSketch {
        &self.cms
    }

    /// The Space-Saving half (for capacity/threshold introspection).
    pub fn top_k(&self) -> &SpaceSaving {
        &self.top
    }

    /// Fixed memory footprint in bytes — does not grow with the number
    /// of distinct flows recorded.
    pub fn footprint_bytes(&self) -> usize {
        self.cms.footprint_bytes() + self.top.footprint_bytes()
    }
}

impl Default for FlowSketch {
    fn default() -> Self {
        Self::new(SketchConfig::default())
    }
}

impl fmt::Debug for FlowSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlowSketch({:?}, {:?})", self.cms, self.top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    #[test]
    fn cms_never_undercounts() {
        let cms = CountMinSketch::new(64, 4);
        for i in 0..100u64 {
            cms.record(fmix64(i), 1 + i % 7);
        }
        for i in 0..100u64 {
            assert!(cms.estimate(fmix64(i)) > i % 7);
        }
        // An absent key can over-count (collisions) but never exceeds
        // the total recorded weight.
        assert!(cms.estimate(fmix64(10_000)) <= cms.total());
    }

    #[test]
    fn cms_exact_when_sparse() {
        let cms = CountMinSketch::new(1024, 4);
        cms.record(1, 100);
        cms.record(2, 250);
        assert_eq!(cms.estimate(1), 100);
        assert_eq!(cms.estimate(2), 250);
        assert_eq!(cms.total(), 350);
    }

    #[test]
    fn cms_below_agrees_with_estimate() {
        let cms = CountMinSketch::new(64, 4);
        for i in 0..200u64 {
            cms.record(fmix64(i), 1 + i * 13 % 977);
        }
        for i in 0..220u64 {
            let hash = fmix64(i);
            for threshold in [0, 1, 100, 500, 10_000] {
                assert_eq!(
                    cms.below(hash, threshold),
                    cms.estimate(hash) < threshold,
                    "key {i}, threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn cms_with_error_geometry() {
        let cms = CountMinSketch::with_error(0.01, 0.01);
        assert!(cms.width() >= 272);
        assert!(cms.depth() >= 5);
        assert!(cms.epsilon() <= 0.01);
        assert!(cms.delta() <= 0.01);
    }

    #[test]
    fn cms_decay_and_retire_window_discipline() {
        let cms = CountMinSketch::new(64, 2);
        cms.record(7, 1000);
        let window = cms.snapshot();
        // Weight recorded after the peek survives a retire…
        cms.record(7, 11);
        cms.retire(&window);
        assert_eq!(cms.estimate(7), 11);
        // …and decay keeps the configured fraction, rounding down.
        cms.decay(0.5);
        assert_eq!(cms.estimate(7), 5);
        cms.decay(0.0);
        assert_eq!(cms.estimate(7), 0);
    }

    #[test]
    fn cms_absorb_merges_cellwise() {
        let a = CountMinSketch::new(64, 2);
        let b = CountMinSketch::new(64, 2);
        a.record(1, 10);
        b.record(1, 5);
        b.record(2, 3);
        a.absorb(&b.snapshot());
        assert_eq!(a.estimate(1), 15);
        assert_eq!(a.estimate(2), 3);
    }

    #[test]
    #[should_panic(expected = "same geometry")]
    fn cms_retire_rejects_wrong_geometry() {
        CountMinSketch::new(64, 2).retire(&[0u64; 3]);
    }

    #[test]
    fn space_saving_tracks_exact_below_capacity() {
        let ss = SpaceSaving::new(8);
        for (h, w) in [(1u64, 100u64), (2, 50), (3, 10)] {
            ss.record(h, w);
        }
        let top = ss.top();
        assert_eq!(top.len(), 3);
        assert_eq!((top[0].hash, top[0].weight, top[0].error), (1, 100, 0));
        assert_eq!(top[1].hash, 2);
        assert_eq!(ss.total(), 160);
    }

    #[test]
    fn space_saving_keeps_the_elephant_under_churn() {
        let ss = SpaceSaving::new(4);
        // One elephant plus many one-shot mice cycling through.
        for round in 0..64u64 {
            ss.record(999, 100);
            ss.record(10_000 + round, 1);
        }
        let top = ss.top();
        assert_eq!(top[0].hash, 999);
        assert!(top[0].weight >= 6400, "never under-counts");
        // The guaranteed containment threshold holds.
        assert!(6400 > ss.threshold());
    }

    #[test]
    fn space_saving_merge_is_deterministic() {
        let a = vec![
            HeavyHitter {
                hash: 1,
                weight: 10,
                error: 0,
            },
            HeavyHitter {
                hash: 2,
                weight: 5,
                error: 1,
            },
        ];
        let b = vec![
            HeavyHitter {
                hash: 2,
                weight: 7,
                error: 0,
            },
            HeavyHitter {
                hash: 3,
                weight: 12,
                error: 2,
            },
        ];
        let merged = SpaceSaving::merge(8, &[a, b]);
        assert_eq!(
            merged[0],
            HeavyHitter {
                hash: 2,
                weight: 12,
                error: 1
            }
        );
        assert_eq!(
            merged[1],
            HeavyHitter {
                hash: 3,
                weight: 12,
                error: 2
            }
        );
        assert_eq!(
            merged[2],
            HeavyHitter {
                hash: 1,
                weight: 10,
                error: 0
            }
        );
        // Truncation respects the requested capacity.
        assert_eq!(
            SpaceSaving::merge(1, std::slice::from_ref(&merged)).len(),
            1
        );
    }

    #[test]
    fn space_saving_decay_and_retire() {
        let ss = SpaceSaving::new(4);
        ss.record(1, 1000);
        ss.record(2, 10);
        let window = ss.top();
        ss.record(1, 7);
        ss.retire(&window);
        // Post-peek weight survives; fully retired flows drop out.
        let top = ss.top();
        assert_eq!(top.len(), 1);
        assert_eq!((top[0].hash, top[0].weight), (1, 7));
        assert_eq!(ss.total(), 7);
        ss.decay(0.5);
        assert_eq!(ss.top()[0].weight, 3);
        ss.decay(0.0);
        assert!(ss.top().is_empty());
        assert_eq!(ss.total(), 0);
    }

    #[test]
    fn flow_sketch_records_bytes_by_stamped_hash() {
        let sketch = FlowSketch::default();
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let len = pkt.len() as u64;
        crate::flow::stamp_rss(&mut pkt);
        let hash = pkt.meta.rss_hash.unwrap();
        sketch.record_packet(&pkt);
        sketch.record_packet(&pkt);
        assert_eq!(sketch.estimate(hash), 2 * len);
        assert_eq!(sketch.total_bytes(), 2 * len);
        assert_eq!(sketch.heavy_hitters()[0].hash, hash);
        // Non-flow frames are not recorded.
        sketch.record_packet(&crate::packet::Packet::from_slice(&[0u8; 14]));
        assert_eq!(sketch.total_bytes(), 2 * len);
    }

    #[test]
    fn flow_sketch_window_roundtrip() {
        let sketch = FlowSketch::new(SketchConfig {
            width: 64,
            depth: 2,
            top_capacity: 4,
        });
        sketch.record(42, 500);
        let window = sketch.snapshot();
        assert_eq!(window.top_total(), 500);
        sketch.record(42, 20);
        sketch.retire(&window);
        assert_eq!(sketch.estimate(42), 20);
        assert_eq!(sketch.total_bytes(), 20);
        sketch.decay(0.5);
        assert_eq!(sketch.estimate(42), 10);
        // Footprint is geometry-fixed, independent of flows recorded.
        let before = sketch.footprint_bytes();
        for i in 0..10_000u64 {
            sketch.record(i, 1);
        }
        assert_eq!(sketch.footprint_bytes(), before);
    }
}
