//! Bucketized RSS steering: the indirection table between flow hashes
//! and shards.
//!
//! Hardware multi-queue NICs do not map `hash % queues` directly —
//! they reduce the RSS hash to a small **bucket** index and look the
//! bucket up in a reprogrammable *indirection table* (128–512 entries
//! on real silicon). That one level of indirection is what makes
//! load-aware steering possible at run time: moving a bucket's table
//! entry re-homes every flow in the bucket **without touching per-flow
//! state and without breaking flow affinity** — all packets of a flow
//! still hash to the same bucket, and the bucket still maps to exactly
//! one shard.
//!
//! This module is that table in software, shared by every steering
//! layer of the stack:
//!
//! * [`crate::flow::shard_of`] / [`crate::flow::FlowKey::shard_for`]
//!   reduce `rss_hash → bucket → bucket % shards` (the *identity* map);
//! * [`crate::batch::PacketBatch::shard_split_with`] steers a whole
//!   batch by an explicit [`BucketMap`];
//! * `netkit_kernel::nic::Nic` steers injected frames by its installed
//!   indirection table;
//! * `netkit_router::shard::ShardedPipeline` dispatches by the same
//!   table and its `rebalance` subsystem rewrites it under an epoch
//!   quiesce when [`BucketLoad`] meters report skew.
//!
//! The bucket count is fixed at [`RSS_BUCKETS`] = 256. Because every
//! practical shard count here (1, 2, 4, 8, …) divides 256, the identity
//! map is indistinguishable from the historical `hash % shards`
//! steering for power-of-two shard counts, and remains a pure function
//! of the tuple for all others.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::packet::Packet;

/// Number of RSS hash buckets — the granularity of rebalancing. Fixed
/// so the table fits in cache and maps/meters can be plain arrays.
pub const RSS_BUCKETS: usize = 256;

/// Reduces an RSS hash to its bucket index (`hash % RSS_BUCKETS`).
/// The finalised hash (see `FlowKey::rss_hash`) disperses its low bits,
/// so the reduction spreads flows evenly over the buckets.
pub fn bucket_of(hash: u64) -> usize {
    (hash % RSS_BUCKETS as u64) as usize
}

/// The bucket a packet steers by: its stamped
/// [`rss_hash`](crate::packet::PacketMeta::rss_hash) when present, else
/// one header parse (not stamped back — callers on the hot path stamp
/// at materialisation, see [`crate::flow::stamp_rss`]). Packets with no
/// flow identity (ARP, malformed frames) deterministically use
/// bucket 0, so non-flow traffic migrates with bucket 0's assignment.
pub fn bucket_of_packet(pkt: &Packet) -> usize {
    let hash = pkt
        .meta
        .rss_hash
        .or_else(|| crate::flow::FlowKey::from_packet(pkt).map(|k| k.rss_hash()));
    match hash {
        Some(h) => bucket_of(h),
        None => 0,
    }
}

/// A bucket → shard indirection table over [`RSS_BUCKETS`] buckets.
///
/// The table *is* the steering policy: every layer that spreads flows
/// (batch split, NIC queues, pipeline dispatch, sim demux) consults one
/// of these, so installing a new map at all layers inside one quiesce
/// epoch changes placement atomically. The **identity** map
/// (`bucket % shards`) reproduces static RSS steering; a rebalancer
/// produces non-identity maps to migrate load.
///
/// # Examples
///
/// ```
/// use netkit_packet::steer::{bucket_of, BucketMap, RSS_BUCKETS};
///
/// let mut map = BucketMap::identity(4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.shard_of_bucket(6), 6 % 4);
/// assert!(map.is_identity());
///
/// // Migrate one bucket to shard 3.
/// map.set(6, 3);
/// assert_eq!(map.shard_of_bucket(6), 3);
/// assert_eq!(map.moved_buckets(&BucketMap::identity(4)), vec![6]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BucketMap {
    shards: usize,
    map: Vec<u16>,
}

impl BucketMap {
    /// The static-RSS map for `shards` shards: bucket `b` → `b % shards`.
    /// `shards` is clamped to ≥ 1 (0 shards ≡ 1 shard, as everywhere in
    /// the stack).
    pub fn identity(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards,
            map: (0..RSS_BUCKETS).map(|b| (b % shards) as u16).collect(),
        }
    }

    /// Number of shards the table targets.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard assigned to `bucket` (indices reduce mod
    /// [`RSS_BUCKETS`]).
    pub fn shard_of_bucket(&self, bucket: usize) -> usize {
        self.map[bucket % RSS_BUCKETS] as usize
    }

    /// The shard an RSS hash steers to: `bucket_of(hash)` looked up in
    /// the table.
    pub fn shard_of_hash(&self, hash: u64) -> usize {
        self.shard_of_bucket(bucket_of(hash))
    }

    /// The shard a packet steers to (see [`bucket_of_packet`] for the
    /// bucket rule, including the non-flow → bucket 0 case).
    pub fn shard_of_packet(&self, pkt: &Packet) -> usize {
        self.shard_of_bucket(bucket_of_packet(pkt))
    }

    /// Reassigns `bucket` to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()` — a table must never steer to
    /// a worker that does not exist.
    pub fn set(&mut self, bucket: usize, shard: usize) {
        assert!(
            shard < self.shards,
            "shard {shard} out of range for {} shards",
            self.shards
        );
        self.map[bucket % RSS_BUCKETS] = shard as u16;
    }

    /// Applies sparse bucket → shard pins (builder-style) — the
    /// lowering of a pipeline description's steering section onto a
    /// base table.
    ///
    /// # Panics
    ///
    /// Panics if a pin names a shard `>= self.shards()` (see
    /// [`Self::set`]).
    pub fn with_pins(mut self, pins: &[(usize, usize)]) -> Self {
        for &(bucket, shard) in pins {
            self.set(bucket, shard);
        }
        self
    }

    /// True when the table equals [`Self::identity`] for its shard
    /// count.
    pub fn is_identity(&self) -> bool {
        self.map
            .iter()
            .enumerate()
            .all(|(b, &s)| s as usize == b % self.shards)
    }

    /// Buckets whose assignment differs from `other`, in bucket order —
    /// the migration set of a table swap.
    pub fn moved_buckets(&self, other: &BucketMap) -> Vec<usize> {
        self.map
            .iter()
            .zip(&other.map)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(bucket, _)| bucket)
            .collect()
    }

    /// Folds per-bucket loads into per-shard loads under this table —
    /// the projection a rebalance policy optimises.
    ///
    /// # Panics
    ///
    /// Panics if `per_bucket` does not hold [`RSS_BUCKETS`] entries.
    pub fn per_shard_load(&self, per_bucket: &[u64]) -> Vec<u64> {
        assert_eq!(per_bucket.len(), RSS_BUCKETS, "one load per bucket");
        let mut out = vec![0u64; self.shards];
        for (bucket, &load) in per_bucket.iter().enumerate() {
            out[self.map[bucket] as usize] += load;
        }
        out
    }
}

impl fmt::Debug for BucketMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BucketMap({} buckets -> {} shards{})",
            RSS_BUCKETS,
            self.shards,
            if self.is_identity() { ", identity" } else { "" }
        )
    }
}

/// Per-bucket packet counters — the load meter a rebalance policy reads.
///
/// One relaxed atomic per bucket; recording is wait-free and safe from
/// any worker thread. Two windowing disciplines are offered:
///
/// * **Drain-based** ([`Self::drain`]) snapshots *and zeroes* the
///   counters — one destructive observation window per call. Use it
///   only when every window is unconditionally consumed.
/// * **Decay-based** ([`Self::snapshot`] to peek, [`Self::decay`] to
///   age, [`Self::retire`] to subtract a judged snapshot) — the
///   discipline the autonomous control loop uses. Evidence a policy
///   *declines* to act on is never discarded, only exponentially
///   faded, so a persistent skew keeps accumulating across polls.
///
/// The window-closing operations (`drain`, `decay`, `retire`) are
/// **single-consumer**: exactly one control-plane thread may call them
/// (concurrent [`Self::record_hash`]-side traffic is always safe —
/// increments landing mid-operation are preserved in full).
///
/// # Examples
///
/// ```
/// use netkit_packet::steer::{bucket_of, BucketLoad};
///
/// let load = BucketLoad::new();
/// load.record_hash(7);
/// load.record_hash(7);
/// assert_eq!(load.snapshot()[bucket_of(7)], 2);
/// assert_eq!(load.total(), 2);
/// let window = load.drain();
/// assert_eq!(window[bucket_of(7)], 2);
/// assert_eq!(load.total(), 0, "drain resets the window");
///
/// // Decay-based sampling: peek, judge, age — nothing is discarded.
/// load.record_hash(7);
/// load.record_hash(7);
/// let peeked = load.snapshot();
/// load.decay(0.5); // a declined decision fades the evidence...
/// assert_eq!(load.total(), 1);
/// load.retire(&peeked); // ...an applied one subtracts what it judged
/// assert_eq!(load.total(), 0);
/// ```
pub struct BucketLoad {
    counts: Vec<AtomicU64>,
}

impl BucketLoad {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self {
            counts: (0..RSS_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Counts one packet in `hash`'s bucket.
    pub fn record_hash(&self, hash: u64) {
        self.counts[bucket_of(hash)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one packet in its bucket (stamped hash preferred; see
    /// [`bucket_of_packet`]).
    pub fn record_packet(&self, pkt: &Packet) {
        self.counts[bucket_of_packet(pkt)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts every packet of a batch.
    pub fn record_batch(&self, batch: &crate::batch::PacketBatch) {
        for pkt in batch {
            self.record_packet(pkt);
        }
    }

    /// Copies the current per-bucket counts.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Takes the current window: returns the per-bucket counts and
    /// resets them to zero.
    pub fn drain(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.swap(0, Ordering::Relaxed))
            .collect()
    }

    /// Applies one exponential decay step: every bucket keeps an
    /// `alpha` fraction (clamped to `[0, 1]`) of its current count,
    /// rounding down — so with `alpha < 1` untouched evidence fades to
    /// zero over successive steps instead of being destroyed at once.
    ///
    /// Only the *observed* amount is shed: packets recorded by workers
    /// while the decay pass runs survive in full. Single-consumer (see
    /// the type docs); call it from the control plane after each
    /// judged-but-declined decision.
    pub fn decay(&self, alpha: f64) {
        let alpha = alpha.clamp(0.0, 1.0);
        for c in &self.counts {
            let cur = c.load(Ordering::Relaxed);
            let shed = cur - (cur as f64 * alpha) as u64;
            if shed > 0 {
                // Subtract-what-was-seen keeps concurrent increments.
                c.fetch_sub(shed, Ordering::Relaxed);
            }
        }
    }

    /// Subtracts a previously [`Self::snapshot`]-ed window from the
    /// meter (saturating per bucket) — the commit half of
    /// peek-then-commit: an applied migration retires exactly the
    /// evidence it was planned on, while packets recorded after the
    /// snapshot stay for the next decision.
    ///
    /// # Panics
    ///
    /// Panics if `window` does not hold [`RSS_BUCKETS`] entries.
    pub fn retire(&self, window: &[u64]) {
        assert_eq!(window.len(), RSS_BUCKETS, "one load per bucket");
        for (c, &judged) in self.counts.iter().zip(window) {
            if judged == 0 {
                continue;
            }
            let mut cur = c.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(judged);
                match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl Default for BucketLoad {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for BucketLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        let busy = snap.iter().filter(|&&n| n > 0).count();
        write!(
            f,
            "BucketLoad({} of {} buckets active, {} packets)",
            busy,
            RSS_BUCKETS,
            snap.iter().sum::<u64>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::packet::PacketBuilder;

    #[test]
    fn identity_map_matches_static_modulo_for_divisors_of_256() {
        for shards in [1usize, 2, 4, 8, 16] {
            let map = BucketMap::identity(shards);
            for hash in [0u64, 1, 255, 256, 1_000_003, u64::MAX] {
                assert_eq!(map.shard_of_hash(hash), (hash % shards as u64) as usize);
            }
        }
    }

    #[test]
    fn identity_clamps_zero_shards() {
        let map = BucketMap::identity(0);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.shard_of_hash(12345), 0);
        assert!(map.is_identity());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range_shard() {
        BucketMap::identity(2).set(0, 2);
    }

    #[test]
    fn moved_buckets_diff_is_exact() {
        let base = BucketMap::identity(4);
        let mut map = base.clone();
        map.set(10, 3);
        map.set(200, 1);
        assert_eq!(map.moved_buckets(&base), vec![10, 200]);
        assert!(!map.is_identity());
        assert_eq!(base.moved_buckets(&base), Vec::<usize>::new());
    }

    #[test]
    fn per_shard_load_folds_by_assignment() {
        let mut map = BucketMap::identity(2);
        map.set(1, 0); // bucket 1 would be shard 1 under identity
        let mut loads = vec![0u64; RSS_BUCKETS];
        loads[0] = 5;
        loads[1] = 7;
        loads[3] = 2; // identity: shard 1
        assert_eq!(map.per_shard_load(&loads), vec![12, 2]);
    }

    #[test]
    fn packet_bucket_prefers_stamp_and_parks_non_flow_on_zero() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 9, 9).build();
        let key = FlowKey::from_packet(&pkt).unwrap();
        assert_eq!(bucket_of_packet(&pkt), bucket_of(key.rss_hash()));
        pkt.meta.rss_hash = Some(300);
        assert_eq!(bucket_of_packet(&pkt), 300 % RSS_BUCKETS);
        let arp = Packet::from_slice(&[0u8; 14]);
        assert_eq!(bucket_of_packet(&arp), 0);
        assert_eq!(BucketMap::identity(4).shard_of_packet(&arp), 0);
    }

    #[test]
    fn decay_fades_evidence_without_destroying_it() {
        let load = BucketLoad::new();
        for _ in 0..8 {
            load.record_hash(3);
        }
        load.record_hash(9);
        load.decay(0.5);
        assert_eq!(load.snapshot()[bucket_of(3)], 4, "half kept");
        assert_eq!(load.snapshot()[bucket_of(9)], 0, "floor: 1 -> 0");
        // Repeated decay converges to zero rather than lingering.
        load.decay(0.5);
        load.decay(0.5);
        load.decay(0.5);
        assert_eq!(load.total(), 0);
        // Degenerate alphas clamp.
        load.record_hash(3);
        load.decay(2.0); // keep everything
        assert_eq!(load.total(), 1);
        load.decay(-1.0); // shed everything
        assert_eq!(load.total(), 0);
    }

    #[test]
    fn retire_subtracts_the_judged_snapshot_only() {
        let load = BucketLoad::new();
        for _ in 0..6 {
            load.record_hash(5);
        }
        let judged = load.snapshot();
        // Traffic that lands after the snapshot...
        for _ in 0..4 {
            load.record_hash(5);
        }
        load.record_hash(11);
        // ...survives the retire of the judged window.
        load.retire(&judged);
        assert_eq!(load.snapshot()[bucket_of(5)], 4);
        assert_eq!(load.snapshot()[bucket_of(11)], 1);
        // Retiring more than is present saturates at zero.
        load.retire(&load.snapshot());
        load.retire(&judged);
        assert_eq!(load.total(), 0);
    }

    #[test]
    #[should_panic(expected = "one load per bucket")]
    fn retire_rejects_short_windows() {
        BucketLoad::new().retire(&[0u64; 4]);
    }

    #[test]
    fn load_meter_records_batches_and_drains() {
        let load = BucketLoad::new();
        let batch: crate::batch::PacketBatch = (0..8u16)
            .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1000 + i, 80).build())
            .collect();
        load.record_batch(&batch);
        assert_eq!(load.total(), 8);
        let window = load.drain();
        assert_eq!(window.iter().sum::<u64>(), 8);
        assert_eq!(load.total(), 0);
        assert!(format!("{load:?}").contains("0 packets"));
    }
}
