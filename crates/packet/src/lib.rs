//! # netkit-packet — packets, headers, buffers, flows
//!
//! The data-plane vocabulary shared by every NETKIT stratum:
//!
//! * [`packet`] — the [`Packet`] type (frame bytes +
//!   out-of-band metadata) and a workload-oriented builder.
//! * [`batch`] — [`PacketBatch`], the bulk-transfer unit of the
//!   batch-first dataplane API (ordered packets + interned per-packet
//!   output labels for split-without-reallocation).
//! * [`headers`] — Ethernet/IPv4/IPv6/UDP/TCP parse + emit, with in-place
//!   fast-path mutators (TTL decrement, DSCP rewrite).
//! * [`checksum`] — RFC 1071 Internet checksum and RFC 1624 incremental
//!   update.
//! * [`pool`] — the buffer-management CF engine (fixed-slab pools with
//!   recycling and resources-meta-model accounting).
//! * [`flow`] — 5-tuple flow keys and bounded soft-state flow tables.
//! * [`steer`] — the bucketized RSS steering layer: the 256-entry
//!   bucket → shard indirection table ([`steer::BucketMap`]) every
//!   steering surface shares, and the per-bucket load meters
//!   ([`steer::BucketLoad`]) that feed the reflective rebalancer.
//! * [`sketch`] — bounded-memory traffic summaries (count-min,
//!   Space-Saving top-k) recording per-flow *byte* weight; the
//!   heavy-hitter evidence that lets the rebalancer see an elephant
//!   inside an otherwise uniform bucket.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod checksum;
pub mod error;
pub mod flow;
pub mod headers;
pub mod packet;
pub mod pool;
pub mod sketch;
pub mod steer;

pub use batch::{LabelGroup, PacketBatch};
pub use error::{ParseError, ParseResult};
pub use packet::{Packet, PacketBuilder, PacketMeta};
