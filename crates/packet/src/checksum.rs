//! The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! The in-band functions stratum is "a highly performance-critical area
//! in which machine instructions must be counted with care" (paper §3);
//! the incremental update lets the TTL-decrement component avoid
//! recomputing the full header checksum per packet.

/// Computes the one's-complement Internet checksum over `data`.
///
/// # Examples
///
/// ```
/// use netkit_packet::checksum::internet_checksum;
/// // A buffer whose checksum field is zero sums to the checksum value.
/// let sum = internet_checksum(&[0x45, 0x00, 0x00, 0x14]);
/// assert_ne!(sum, 0);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Sums 16-bit big-endian words without folding (for composing sums over
/// multiple regions, e.g. pseudo-headers).
pub fn sum_words(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    sum
}

/// Folds a 32-bit running sum into 16 bits.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verifies a buffer that *includes* its checksum field; valid data sums
/// to `0xffff` before complementing.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

/// RFC 1624 incremental update: given the old checksum (as stored in the
/// header), the old 16-bit field value, and the new value, returns the
/// new checksum. Used for TTL decrement and DSCP rewrite.
///
/// # Examples
///
/// ```
/// use netkit_packet::checksum::{incremental_update, internet_checksum};
/// let mut header = [0x45u8, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00,
///                   0x40, 0x01, 0x00, 0x00, 10, 0, 0, 1, 10, 0, 0, 2];
/// let full = internet_checksum(&header);
/// header[10..12].copy_from_slice(&full.to_be_bytes());
/// // Decrement TTL (byte 8): word at offset 8 changes 0x4001 -> 0x3f01.
/// let updated = incremental_update(full, 0x4001, 0x3f01);
/// header[8] = 0x3f;
/// header[10..12].copy_from_slice(&[0, 0]);
/// assert_eq!(internet_checksum(&header), updated);
/// ```
pub fn incremental_update(old_checksum: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let mut sum = (!old_checksum) as u32;
    sum += (!old_word) as u32;
    sum += new_word as u32;
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RFC 1071 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(sum_words(&data)), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(sum_words(&[0xab]), 0xab00);
        assert_eq!(sum_words(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11];
        data.extend_from_slice(&[0, 0]); // checksum placeholder
        data.extend_from_slice(&[192, 168, 0, 1, 192, 168, 0, 2]);
        let ck = internet_checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0xff;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_matches_full_recompute_for_ttl_sweep() {
        // For every TTL value, check RFC1624 equals full recomputation.
        for ttl in 1..=255u8 {
            let mut hdr = [
                0x45u8, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, ttl, 0x06, 0x00, 0x00, 10, 1, 2,
                3, 10, 4, 5, 6,
            ];
            let full = internet_checksum(&hdr);
            hdr[10..12].copy_from_slice(&full.to_be_bytes());
            let old_word = u16::from_be_bytes([hdr[8], hdr[9]]);
            let new_ttl = ttl - 1;
            let new_word = u16::from_be_bytes([new_ttl, hdr[9]]);
            let inc = incremental_update(full, old_word, new_word);
            hdr[8] = new_ttl;
            hdr[10] = 0;
            hdr[11] = 0;
            let recomputed = internet_checksum(&hdr);
            assert_eq!(inc, recomputed, "ttl {ttl}");
        }
    }
}
