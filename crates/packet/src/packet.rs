//! The packet type flowing through every stratum.
//!
//! A [`Packet`] couples a mutable byte buffer (the frame, starting at the
//! Ethernet header) with out-of-band [`PacketMeta`] annotations that
//! in-band components use to communicate (classification results, meter
//! colours, chosen egress). Annotations are how the paper's components
//! perform "layer-violating" information sharing without rewriting wire
//! bytes.

use std::fmt;
use std::net::IpAddr;

use bytes::BytesMut;

use crate::error::ParseResult;
use crate::headers::{
    proto, EtherType, EthernetHeader, Ipv4Header, Ipv6Header, MacAddr, TcpFlags, TcpHeader,
    UdpHeader,
};
use crate::pool::PooledBuf;

/// Metering colour (srTCM-style).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Color {
    /// Conforming traffic.
    Green,
    /// Excess within burst tolerance.
    Yellow,
    /// Out-of-profile traffic.
    Red,
}

/// Out-of-band metadata carried alongside a frame.
#[derive(Clone, Debug, Default)]
pub struct PacketMeta {
    /// Port the frame arrived on.
    pub ingress: Option<u16>,
    /// Arrival timestamp in simulated nanoseconds.
    pub timestamp_ns: u64,
    /// Cached DSCP (written by classifiers so queues need not re-parse).
    pub dscp: Option<u8>,
    /// Chosen egress port (written by route lookup).
    pub egress: Option<u16>,
    /// Chosen next hop (written by route lookup).
    pub next_hop: Option<IpAddr>,
    /// Meter colour (written by meters, read by droppers).
    pub color: Option<Color>,
    /// The RSS steering hash, stamped once when the frame is
    /// materialised (NIC rx or batch construction) so
    /// [`crate::flow::shard_of`] never re-parses headers. `None` means
    /// "not stamped yet", not "no flow".
    pub rss_hash: Option<u64>,
    /// Free-form numeric annotations, keyed by static names and kept
    /// sorted by key. Private so [`Self::annotate`]'s sorted invariant
    /// (binary-search lookups depend on it) cannot be bypassed; read
    /// through [`Self::annotation`] / [`Self::annotations`].
    annotations: Vec<(&'static str, u64)>,
}

impl PacketMeta {
    /// Sets (or overwrites) an annotation. The table stays sorted by
    /// key, so repeated writes cost one binary search each instead of a
    /// linear scan per call.
    ///
    /// The legacy `"rss"` key (see [`crate::flow::RSS_ANNOTATION`]) is
    /// forwarded to the dedicated [`Self::rss_hash`] field.
    pub fn annotate(&mut self, key: &'static str, value: u64) {
        if key == "rss" {
            self.rss_hash = Some(value);
            return;
        }
        match self.annotations.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(pos) => self.annotations[pos].1 = value,
            Err(pos) => self.annotations.insert(pos, (key, value)),
        }
    }

    /// Reads an annotation (the legacy `"rss"` key reads
    /// [`Self::rss_hash`]).
    pub fn annotation(&self, key: &str) -> Option<u64> {
        if key == "rss" {
            return self.rss_hash;
        }
        self.annotations
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|pos| self.annotations[pos].1)
    }

    /// All annotations, sorted by key. (The shimmed `"rss"` key lives
    /// in [`Self::rss_hash`], not here.)
    pub fn annotations(&self) -> &[(&'static str, u64)] {
        &self.annotations
    }
}

/// The frame storage behind a [`Packet`]: either a plain heap buffer or
/// a slab leased from a [`crate::pool::BufferPool`] (returned to the
/// pool when the packet drops — the zero-copy rx path).
enum PacketBuf {
    Heap(BytesMut),
    Pooled(PooledBuf),
}

impl PacketBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            PacketBuf::Heap(b) => b,
            PacketBuf::Pooled(b) => b,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        match self {
            PacketBuf::Heap(b) => b,
            PacketBuf::Pooled(b) => b,
        }
    }
}

/// A network packet: frame bytes plus metadata.
///
/// The buffer always begins at the Ethernet header. Parsing helpers give
/// typed views without copying; `data_mut` allows in-place mutation
/// (TTL decrement and similar fast-path edits). The frame storage may be
/// a pool-leased slab ([`Packet::from_pooled`]): dropping the packet
/// then recycles the buffer instead of freeing it, which is what makes
/// the NIC→worker fast path allocation-free in steady state.
pub struct Packet {
    data: PacketBuf,
    /// Out-of-band metadata.
    pub meta: PacketMeta,
}

impl Default for Packet {
    fn default() -> Self {
        Self::new(BytesMut::new())
    }
}

impl Clone for Packet {
    /// Deep copy. A pooled buffer clones into a plain heap buffer: the
    /// pool lease is not shareable, and clones are off the fast path by
    /// definition.
    fn clone(&self) -> Self {
        Self {
            data: match &self.data {
                PacketBuf::Heap(b) => PacketBuf::Heap(b.clone()),
                PacketBuf::Pooled(b) => PacketBuf::Heap(BytesMut::from(&b[..])),
            },
            meta: self.meta.clone(),
        }
    }
}

impl Packet {
    /// Wraps an existing frame buffer.
    pub fn new(data: BytesMut) -> Self {
        Self {
            data: PacketBuf::Heap(data),
            meta: PacketMeta::default(),
        }
    }

    /// Wraps a pool-leased frame buffer without copying; the slab
    /// returns to its pool when the packet is dropped.
    pub fn from_pooled(buf: PooledBuf) -> Self {
        Self {
            data: PacketBuf::Pooled(buf),
            meta: PacketMeta::default(),
        }
    }

    /// Copies a byte slice into a new packet.
    pub fn from_slice(bytes: &[u8]) -> Self {
        Self::new(BytesMut::from(bytes))
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.as_slice().len()
    }

    /// True if the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.data.as_slice().is_empty()
    }

    /// Read access to the frame bytes.
    pub fn data(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// Write access to the frame bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.data.as_mut_slice()
    }

    /// Consumes the packet, returning the buffer. A pooled buffer is
    /// detached from its pool (it will not be recycled).
    pub fn into_data(self) -> BytesMut {
        match self.data {
            PacketBuf::Heap(b) => b,
            PacketBuf::Pooled(b) => b.into_bytes(),
        }
    }

    /// Consumes the packet, returning its pool-leased slab **with the
    /// lease intact** when the storage came from a
    /// [`crate::pool::BufferPool`] (the zero-copy tx hand-off: the slab
    /// keeps recycling when the consumer drops it). Heap-backed packets
    /// are given back unchanged.
    ///
    /// # Errors
    ///
    /// Returns the packet itself when its storage is a plain heap
    /// buffer.
    pub fn try_into_pooled(self) -> Result<PooledBuf, Packet> {
        match self.data {
            PacketBuf::Pooled(b) => Ok(b),
            data @ PacketBuf::Heap(_) => Err(Packet {
                data,
                meta: self.meta,
            }),
        }
    }

    // ---- typed views ------------------------------------------------------

    /// Parses the Ethernet header.
    ///
    /// # Errors
    ///
    /// Propagates truncation errors.
    pub fn ethernet(&self) -> ParseResult<EthernetHeader> {
        EthernetHeader::parse(self.data())
    }

    /// Byte offset of the L3 header.
    pub const fn l3_offset(&self) -> usize {
        EthernetHeader::LEN
    }

    /// The L3 bytes (IP header onward).
    pub fn l3(&self) -> &[u8] {
        let data = self.data();
        &data[EthernetHeader::LEN.min(data.len())..]
    }

    /// Mutable L3 bytes.
    pub fn l3_mut(&mut self) -> &mut [u8] {
        let off = EthernetHeader::LEN.min(self.len());
        &mut self.data_mut()[off..]
    }

    /// Parses the IPv4 header (validating its checksum).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::ParseError`] from header validation.
    pub fn ipv4(&self) -> ParseResult<Ipv4Header> {
        Ipv4Header::parse(self.l3())
    }

    /// Parses the IPv6 fixed header.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::error::ParseError`] from header validation.
    pub fn ipv6(&self) -> ParseResult<Ipv6Header> {
        Ipv6Header::parse(self.l3())
    }

    /// Parses the UDP header of an IPv4 datagram.
    ///
    /// # Errors
    ///
    /// Propagates header parse failures at either layer.
    pub fn udp_v4(&self) -> ParseResult<UdpHeader> {
        let ip = self.ipv4()?;
        UdpHeader::parse(&self.l3()[ip.header_len..])
    }

    /// Parses the TCP header of an IPv4 datagram.
    ///
    /// # Errors
    ///
    /// Propagates header parse failures at either layer.
    pub fn tcp_v4(&self) -> ParseResult<TcpHeader> {
        let ip = self.ipv4()?;
        TcpHeader::parse(&self.l3()[ip.header_len..])
    }

    /// The L4 payload bytes of an IPv4/UDP datagram.
    ///
    /// # Errors
    ///
    /// Propagates header parse failures.
    pub fn udp_payload_v4(&self) -> ParseResult<&[u8]> {
        let ip = self.ipv4()?;
        let l4 = &self.l3()[ip.header_len..];
        UdpHeader::parse(l4)?;
        Ok(&l4[UdpHeader::LEN..])
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({} bytes", self.len())?;
        if let Ok(eth) = self.ethernet() {
            write!(f, ", {:?}", eth.ethertype)?;
        }
        if let Some(dscp) = self.meta.dscp {
            write!(f, ", dscp={dscp}")?;
        }
        write!(f, ")")
    }
}

/// Builds well-formed test/workload packets.
///
/// # Examples
///
/// ```
/// use netkit_packet::packet::PacketBuilder;
/// let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 5000, 53)
///     .dscp(46)
///     .ttl(64)
///     .payload(&[1, 2, 3])
///     .build();
/// assert_eq!(pkt.ipv4().unwrap().dscp, 46);
/// assert_eq!(pkt.udp_payload_v4().unwrap(), &[1, 2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    protocol: u8,
    dscp: u8,
    ttl: u8,
    tcp_flags: TcpFlags,
    payload: Vec<u8>,
    src_mac: MacAddr,
    dst_mac: MacAddr,
}

impl PacketBuilder {
    /// Starts a UDP-over-IPv4 packet. Addresses must parse.
    ///
    /// # Panics
    ///
    /// Panics if the address literals are malformed (builder is intended
    /// for tests and workload generators).
    pub fn udp_v4(src: &str, dst: &str, src_port: u16, dst_port: u16) -> Self {
        Self {
            src: src.parse().expect("valid IPv4 source"),
            dst: dst.parse().expect("valid IPv4 destination"),
            src_port,
            dst_port,
            protocol: proto::UDP,
            dscp: 0,
            ttl: 64,
            tcp_flags: TcpFlags::default(),
            payload: Vec::new(),
            src_mac: MacAddr([2, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr([2, 0, 0, 0, 0, 2]),
        }
    }

    /// Starts a TCP-over-IPv4 packet (flags default to ACK — a
    /// mid-connection segment; see [`Self::tcp_flags`]).
    ///
    /// # Panics
    ///
    /// Panics if the address literals are malformed.
    pub fn tcp_v4(src: &str, dst: &str, src_port: u16, dst_port: u16) -> Self {
        let mut b = Self::udp_v4(src, dst, src_port, dst_port);
        b.protocol = proto::TCP;
        b.tcp_flags = TcpFlags::ACK;
        b
    }

    /// Sets the TCP flag bits (builder-style; only meaningful after
    /// [`Self::tcp_v4`]). Combine with `|`:
    /// `TcpFlags::SYN | TcpFlags::ACK`.
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Starts a UDP-over-IPv6 packet.
    ///
    /// # Panics
    ///
    /// Panics if the address literals are malformed.
    pub fn udp_v6(src: &str, dst: &str, src_port: u16, dst_port: u16) -> Self {
        let mut b = Self::udp_v4("0.0.0.0", "0.0.0.0", src_port, dst_port);
        b.src = src.parse().expect("valid IPv6 source");
        b.dst = dst.parse().expect("valid IPv6 destination");
        b
    }

    /// Sets the DSCP (builder-style).
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp & 0x3f;
        self
    }

    /// Sets the TTL / hop limit (builder-style).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the UDP payload (builder-style).
    pub fn payload(mut self, payload: &[u8]) -> Self {
        self.payload = payload.to_vec();
        self
    }

    /// Sets the payload to `len` zero bytes (builder-style).
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload = vec![0; len];
        self
    }

    /// Writes the L4 header (UDP or TCP by `self.protocol`).
    fn write_l4(&self, out: &mut Vec<u8>) {
        if self.protocol == proto::TCP {
            TcpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                seq: 0,
                ack: 0,
                header_len: TcpHeader::MIN_LEN,
                flags: self.tcp_flags,
                window: u16::MAX,
            }
            .write(out);
        } else {
            UdpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                length: (UdpHeader::LEN + self.payload.len()) as u16,
                checksum: 0,
            }
            .write(out);
        }
    }

    /// Assembles the frame.
    pub fn build(self) -> Packet {
        let mut out = Vec::with_capacity(64 + self.payload.len());
        let l4_header_len = if self.protocol == proto::TCP {
            TcpHeader::MIN_LEN
        } else {
            UdpHeader::LEN
        };
        let l4_len = (l4_header_len + self.payload.len()) as u16;
        match (self.src, self.dst) {
            (IpAddr::V4(src), IpAddr::V4(dst)) => {
                EthernetHeader {
                    dst: self.dst_mac,
                    src: self.src_mac,
                    ethertype: EtherType::Ipv4,
                }
                .write(&mut out);
                Ipv4Header {
                    dscp: self.dscp,
                    ecn: 0,
                    total_len: Ipv4Header::MIN_LEN as u16 + l4_len,
                    identification: 0,
                    dont_fragment: true,
                    more_fragments: false,
                    fragment_offset: 0,
                    ttl: self.ttl,
                    protocol: self.protocol,
                    checksum: 0,
                    src,
                    dst,
                    header_len: Ipv4Header::MIN_LEN,
                }
                .write(&mut out);
                self.write_l4(&mut out);
            }
            (IpAddr::V6(src), IpAddr::V6(dst)) => {
                EthernetHeader {
                    dst: self.dst_mac,
                    src: self.src_mac,
                    ethertype: EtherType::Ipv6,
                }
                .write(&mut out);
                Ipv6Header {
                    traffic_class: self.dscp << 2,
                    flow_label: 0,
                    payload_len: l4_len,
                    next_header: self.protocol,
                    hop_limit: self.ttl,
                    src,
                    dst,
                }
                .write(&mut out);
                self.write_l4(&mut out);
            }
            _ => unreachable!("builder never mixes address families"),
        }
        out.extend_from_slice(&self.payload);
        Packet::from_slice(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_parseable_ipv4_udp() {
        let pkt = PacketBuilder::udp_v4("10.1.0.1", "10.2.0.2", 1000, 2000)
            .dscp(34)
            .ttl(10)
            .payload(b"hello")
            .build();
        let eth = pkt.ethernet().unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        let ip = pkt.ipv4().unwrap();
        assert_eq!(ip.dscp, 34);
        assert_eq!(ip.ttl, 10);
        assert_eq!(ip.protocol, proto::UDP);
        let udp = pkt.udp_v4().unwrap();
        assert_eq!((udp.src_port, udp.dst_port), (1000, 2000));
        assert_eq!(pkt.udp_payload_v4().unwrap(), b"hello");
        assert_eq!(
            pkt.len(),
            EthernetHeader::LEN + Ipv4Header::MIN_LEN + UdpHeader::LEN + 5
        );
    }

    #[test]
    fn builder_produces_parseable_ipv6_udp() {
        let pkt = PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 7, 8)
            .dscp(46)
            .payload_len(32)
            .build();
        let eth = pkt.ethernet().unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv6);
        let ip6 = pkt.ipv6().unwrap();
        assert_eq!(ip6.traffic_class >> 2, 46);
        assert_eq!(ip6.payload_len as usize, UdpHeader::LEN + 32);
    }

    #[test]
    fn annotations_overwrite_and_read_back() {
        let mut meta = PacketMeta::default();
        meta.annotate("queue", 3);
        meta.annotate("queue", 5);
        meta.annotate("hops", 2);
        assert_eq!(meta.annotation("queue"), Some(5));
        assert_eq!(meta.annotation("hops"), Some(2));
        assert_eq!(meta.annotation("missing"), None);
        assert_eq!(meta.annotations().len(), 2);
    }

    #[test]
    fn in_place_mutation_via_l3_mut() {
        let mut pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2)
            .ttl(5)
            .build();
        Ipv4Header::decrement_ttl_in_place(pkt.l3_mut()).unwrap();
        assert_eq!(pkt.ipv4().unwrap().ttl, 4);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        let b = a.clone();
        a.data_mut()[0] = 0xff;
        assert_ne!(a.data()[0], b.data()[0]);
    }

    #[test]
    fn debug_output_mentions_size() {
        let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build();
        assert!(format!("{pkt:?}").contains("bytes"));
    }
}
