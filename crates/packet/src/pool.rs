//! Buffer-management component framework.
//!
//! Paper §5: "Components can also take advantage of our existing buffer
//! management CF." This module is that CF's engine: fixed-slab buffer
//! pools with recycling, statistics, and optional per-task quota policing
//! through the resources meta-model.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use bytes::BytesMut;
use opencom::error::Result;
use opencom::ident::TaskId;
use opencom::meta::resources::{classes, ResourceManager};
use parking_lot::Mutex;

/// Pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served from the free list.
    pub reused: u64,
    /// Buffers freshly allocated because the free list was empty.
    pub allocated: u64,
    /// Buffers returned to the free list on drop.
    pub recycled: u64,
    /// Buffers discarded on drop (free list full or buffer resized).
    pub discarded: u64,
}

struct PoolInner {
    slab_size: usize,
    max_free: usize,
    free: Mutex<Vec<BytesMut>>,
    reused: AtomicU64,
    allocated: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

/// A fixed-slab buffer pool.
///
/// # Examples
///
/// ```
/// use netkit_packet::pool::BufferPool;
///
/// let pool = BufferPool::new(2048, 0, 8);
/// let buf = pool.take();
/// assert!(buf.capacity() >= 2048);
/// drop(buf); // recycled
/// let _again = pool.take();
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Creates a pool of `slab_size`-byte buffers, preallocating
    /// `prealloc` and keeping at most `max_free` on the free list.
    pub fn new(slab_size: usize, prealloc: usize, max_free: usize) -> Self {
        let free = (0..prealloc)
            .map(|_| BytesMut::with_capacity(slab_size))
            .collect();
        Self {
            inner: Arc::new(PoolInner {
                slab_size,
                max_free,
                free: Mutex::new(free),
                reused: AtomicU64::new(0),
                allocated: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// The slab size in bytes.
    pub fn slab_size(&self) -> usize {
        self.inner.slab_size
    }

    /// Takes a cleared buffer from the pool (allocating when empty).
    pub fn take(&self) -> PooledBuf {
        let recycled = self.inner.free.lock().pop();
        let buf = match recycled {
            Some(mut b) => {
                b.clear();
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                BytesMut::with_capacity(self.inner.slab_size)
            }
        };
        PooledBuf {
            buf: Some(buf),
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// Takes a buffer, charging `slab_size` bytes of the task's memory
    /// grant in the resources meta-model first.
    ///
    /// # Errors
    ///
    /// Fails with [`opencom::error::Error::UnknownTask`] for unknown
    /// tasks. (Exhausting the grant is reported by `consume` semantics:
    /// the returned headroom reaches zero but the take still succeeds —
    /// policing is the caller's decision, matching the meta-model.)
    pub fn take_accounted(&self, rm: &ResourceManager, task: TaskId) -> Result<(PooledBuf, u64)> {
        let headroom = rm.consume(task, classes::MEMORY, self.inner.slab_size as u64)?;
        Ok((self.take(), headroom))
    }

    /// Buffers currently on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Snapshot of pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.inner.reused.load(Ordering::Relaxed),
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
        }
    }

    /// Approximate resident bytes (free list only; outstanding buffers
    /// are owned by their takers).
    pub fn footprint_bytes(&self) -> usize {
        self.free_count() * self.inner.slab_size + std::mem::size_of::<PoolInner>()
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BufferPool(slab {} bytes, {} free, stats {:?})",
            self.inner.slab_size,
            self.free_count(),
            self.stats()
        )
    }
}

/// A pooled buffer that returns to its pool on drop.
pub struct PooledBuf {
    buf: Option<BytesMut>,
    pool: Weak<PoolInner>,
}

impl PooledBuf {
    /// Detaches the buffer from the pool (it will not be recycled).
    pub fn into_bytes(mut self) -> BytesMut {
        self.buf.take().expect("buffer present until drop")
    }
}

impl Deref for PooledBuf {
    type Target = BytesMut;
    fn deref(&self) -> &BytesMut {
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut BytesMut {
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let Some(buf) = self.buf.take() else { return };
        let Some(pool) = self.pool.upgrade() else {
            return;
        };
        let mut free = pool.free.lock();
        // Only recycle buffers that kept their slab capacity; grown or
        // split buffers would poison the pool's size invariant.
        if free.len() < pool.max_free && buf.capacity() >= pool.slab_size {
            free.push(buf);
            pool.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            pool.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.buf {
            Some(b) => write!(f, "PooledBuf({} bytes of {})", b.len(), b.capacity()),
            None => write!(f, "PooledBuf(detached)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycle_roundtrip() {
        let pool = BufferPool::new(1500, 0, 4);
        {
            let mut b = pool.take();
            b.extend_from_slice(b"payload");
            assert_eq!(b.len(), 7);
        }
        let s = pool.stats();
        assert_eq!((s.allocated, s.recycled), (1, 1));
        let b2 = pool.take();
        assert!(b2.is_empty(), "recycled buffer is cleared");
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new(64, 0, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.free_count(), 2);
        let s = pool.stats();
        assert_eq!((s.recycled, s.discarded), (2, 3));
    }

    #[test]
    fn detached_buffers_are_not_recycled() {
        let pool = BufferPool::new(64, 0, 4);
        let b = pool.take();
        let bytes = b.into_bytes();
        drop(bytes);
        assert_eq!(pool.free_count(), 0);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn preallocated_buffers_serve_first() {
        let pool = BufferPool::new(128, 3, 8);
        assert_eq!(pool.free_count(), 3);
        let _b = pool.take();
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().allocated, 0);
    }

    #[test]
    fn accounted_take_charges_task() {
        let rm = ResourceManager::new();
        rm.define_class(classes::MEMORY, 10_000);
        let task = rm.create_task("buffers").unwrap();
        rm.grant(task, classes::MEMORY, 4096).unwrap();
        let pool = BufferPool::new(2048, 0, 4);
        let (_b1, headroom1) = pool.take_accounted(&rm, task).unwrap();
        assert_eq!(headroom1, 2048);
        let (_b2, headroom2) = pool.take_accounted(&rm, task).unwrap();
        assert_eq!(headroom2, 0);
        let info = rm.task_info(task).unwrap();
        assert_eq!(info.usage[classes::MEMORY], 4096);
    }

    #[test]
    fn pool_survives_while_buffers_outstanding() {
        let pool = BufferPool::new(64, 0, 4);
        let b = pool.take();
        drop(pool);
        drop(b); // pool inner gone; drop must not panic
    }
}
