//! Packet batches — the unit of bulk transfer on the dataplane.
//!
//! Moving packets one at a time through component bindings puts a
//! dynamic-dispatch + interception + (for isolated components) IPC
//! round-trip cost on *every packet*. A [`PacketBatch`] amortizes all of
//! that: one binding traversal, one interceptor-chain pass, and one
//! marshalled IPC call move up to a whole burst of packets.
//!
//! A batch is an **ordered** sequence of packets plus an optional
//! per-packet *output label*. Labels are how splitting components
//! (classifiers, route lookups, protocol demultiplexers) tag each packet
//! with its destination output in a single pass and then carve the batch
//! into per-output sub-batches without re-inspecting — and without
//! allocating a `String` per packet: labels are interned once per batch
//! in a small side table and referenced by index.
//!
//! Ordering contract: [`PacketBatch::into_label_groups`] preserves the
//! relative order of packets within each label group, and group order
//! follows first occurrence — so a downstream observer on any single
//! output sees exactly the sequence the scalar path would have produced.

use std::fmt;
use std::sync::Arc;

use crate::packet::Packet;

/// Index of an interned output label within one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(u16);

/// A batch of packets with optional per-packet output labels.
///
/// # Examples
///
/// ```
/// use netkit_packet::batch::PacketBatch;
/// use netkit_packet::packet::PacketBuilder;
///
/// let mut batch = PacketBatch::with_capacity(2);
/// batch.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build());
/// batch.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.3", 3, 4).build());
/// let voice = batch.intern("voice");
/// batch.set_label(0, voice);
/// let groups = batch.into_label_groups();
/// assert_eq!(groups.len(), 2); // "voice" and unlabelled
/// ```
#[derive(Default)]
pub struct PacketBatch {
    packets: Vec<Packet>,
    /// Parallel to `packets`; `u16::MAX` = unlabelled. Kept empty (and
    /// allocation-free) until the first label is assigned.
    labels: Vec<u16>,
    table: Vec<Arc<str>>,
}

const UNLABELLED: u16 = u16::MAX;

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `capacity` packets.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            packets: Vec::with_capacity(capacity),
            labels: Vec::new(),
            table: Vec::new(),
        }
    }

    /// Wraps an existing packet vector (all unlabelled).
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        Self {
            packets,
            labels: Vec::new(),
            table: Vec::new(),
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Appends a packet (unlabelled).
    pub fn push(&mut self, pkt: Packet) {
        self.packets.push(pkt);
        if !self.labels.is_empty() {
            self.labels.push(UNLABELLED);
        }
    }

    /// Interns `label`, returning its id for [`Self::set_label`].
    /// Interning the same string twice yields the same id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX - 1` distinct labels are interned
    /// in one batch (far beyond any real output fan-out).
    pub fn intern(&mut self, label: &str) -> LabelId {
        if let Some(idx) = self.table.iter().position(|l| &**l == label) {
            return LabelId(idx as u16);
        }
        assert!(
            self.table.len() < UNLABELLED as usize,
            "label table overflow"
        );
        self.table.push(Arc::from(label));
        LabelId((self.table.len() - 1) as u16)
    }

    /// Tags the packet at `idx` with an interned label.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_label(&mut self, idx: usize, label: LabelId) {
        assert!(idx < self.packets.len(), "label index out of range");
        if self.labels.is_empty() {
            self.labels.resize(self.packets.len(), UNLABELLED);
        }
        self.labels[idx] = label.0;
    }

    /// The label of the packet at `idx`, if one was assigned.
    pub fn label_of(&self, idx: usize) -> Option<&str> {
        let raw = *self.labels.get(idx)?;
        self.table.get(raw as usize).map(|l| &**l)
    }

    /// Read access to the packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Mutable access to the packets, in order.
    pub fn packets_mut(&mut self) -> &mut [Packet] {
        &mut self.packets
    }

    /// Iterates over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Consumes the batch, returning the packets (labels discarded).
    pub fn into_packets(self) -> Vec<Packet> {
        self.packets
    }

    /// Removes all packets and labels, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.labels.clear();
        self.table.clear();
    }

    /// Splits the batch into `shards` sub-batches by RSS flow affinity
    /// — the software analogue of a multi-queue NIC spreading flows
    /// over receive queues.
    ///
    /// Steering follows [`crate::flow::shard_of`]: the driver-stamped
    /// RSS annotation when present, else the parsed flow's
    /// [`crate::flow::FlowKey::rss_hash`], with non-flow packets
    /// (ARP, malformed frames) parked on shard 0. The result always
    /// holds exactly `max(shards, 1)` batches (some possibly empty), no
    /// packet is lost or duplicated, relative order *within each shard*
    /// — and therefore within each flow, since a flow maps to exactly
    /// one shard — matches the input batch, and per-packet labels
    /// survive (re-interned into their sub-batch).
    pub fn partition_by_shard(self, shards: usize) -> Vec<PacketBatch> {
        let shards = shards.max(1);
        if shards == 1 {
            return vec![self];
        }
        let Self {
            packets,
            labels,
            table,
        } = self;
        let mut out: Vec<PacketBatch> = (0..shards).map(|_| PacketBatch::new()).collect();
        for (idx, pkt) in packets.into_iter().enumerate() {
            let shard = crate::flow::shard_of(&pkt, shards);
            let raw = labels.get(idx).copied().unwrap_or(UNLABELLED);
            let target = &mut out[shard];
            target.push(pkt);
            if raw != UNLABELLED {
                let id = target.intern(&table[raw as usize]);
                target.set_label(target.len() - 1, id);
            }
        }
        out
    }

    /// Splits the batch into per-label groups.
    ///
    /// Each group carries its label (`None` for unlabelled packets), the
    /// packets in their original relative order, and the packets'
    /// original indices in the parent batch — so callers can map
    /// per-group verdicts back to per-batch verdicts. Groups appear in
    /// first-occurrence order. Packets are *moved*, not cloned.
    pub fn into_label_groups(self) -> Vec<LabelGroup> {
        let Self {
            packets,
            labels,
            table,
        } = self;
        if labels.is_empty() {
            // Fast path: nothing was ever labelled.
            let indices = (0..packets.len()).collect();
            return vec![LabelGroup {
                label: None,
                batch: PacketBatch::from_packets(packets),
                indices,
            }];
        }
        let mut groups: Vec<LabelGroup> = Vec::new();
        // Map from raw label idx (or UNLABELLED) to position in `groups`.
        let mut slot_of: Vec<Option<usize>> = vec![None; table.len() + 1];
        for (idx, (pkt, raw)) in packets.into_iter().zip(labels).enumerate() {
            let key = if raw == UNLABELLED {
                table.len()
            } else {
                raw as usize
            };
            let slot = match slot_of[key] {
                Some(s) => s,
                None => {
                    let label = if raw == UNLABELLED {
                        None
                    } else {
                        Some(Arc::clone(&table[raw as usize]))
                    };
                    groups.push(LabelGroup {
                        label,
                        batch: PacketBatch::new(),
                        indices: Vec::new(),
                    });
                    slot_of[key] = Some(groups.len() - 1);
                    groups.len() - 1
                }
            };
            groups[slot].batch.push(pkt);
            groups[slot].indices.push(idx);
        }
        groups
    }
}

impl From<Vec<Packet>> for PacketBatch {
    fn from(packets: Vec<Packet>) -> Self {
        Self::from_packets(packets)
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<T: IntoIterator<Item = Packet>>(iter: T) -> Self {
        Self::from_packets(iter.into_iter().collect())
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a PacketBatch {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl fmt::Debug for PacketBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PacketBatch({} packets, {} labels)",
            self.packets.len(),
            self.table.len()
        )
    }
}

/// One per-label slice of a batch (see
/// [`PacketBatch::into_label_groups`]).
#[derive(Debug)]
pub struct LabelGroup {
    /// The shared output label, or `None` for unlabelled packets.
    pub label: Option<Arc<str>>,
    /// The group's packets, original relative order preserved.
    pub batch: PacketBatch,
    /// Original index in the parent batch of each packet in `batch`.
    pub indices: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn pkt(sport: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", sport, 9).build()
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut b = PacketBatch::with_capacity(4);
        for p in [1u16, 2, 3] {
            b.push(pkt(p));
        }
        assert_eq!(b.len(), 3);
        let ports: Vec<u16> = b
            .into_packets()
            .iter()
            .map(|p| p.udp_v4().unwrap().src_port)
            .collect();
        assert_eq!(ports, [1, 2, 3]);
    }

    #[test]
    fn interning_deduplicates() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        let a = b.intern("voice");
        let c = b.intern("voice");
        assert_eq!(a, c);
        let d = b.intern("bulk");
        assert_ne!(a, d);
    }

    #[test]
    fn label_groups_split_without_reordering() {
        let mut b = PacketBatch::new();
        for p in 1u16..=6 {
            b.push(pkt(p));
        }
        let voice = b.intern("voice");
        let bulk = b.intern("bulk");
        for (i, l) in [(0, voice), (2, voice), (3, bulk), (5, voice)] {
            b.set_label(i, l);
        }
        let groups = b.into_label_groups();
        assert_eq!(groups.len(), 3);
        let by_label = |name: Option<&str>| {
            groups
                .iter()
                .find(|g| g.label.as_deref() == name)
                .expect("group present")
        };
        let ports = |g: &LabelGroup| -> Vec<u16> {
            g.batch
                .iter()
                .map(|p| p.udp_v4().unwrap().src_port)
                .collect()
        };
        assert_eq!(ports(by_label(Some("voice"))), [1, 3, 6]);
        assert_eq!(by_label(Some("voice")).indices, [0, 2, 5]);
        assert_eq!(ports(by_label(Some("bulk"))), [4]);
        assert_eq!(ports(by_label(None)), [2, 5]);
        assert_eq!(by_label(None).indices, [1, 4]);
    }

    #[test]
    fn unlabelled_batch_takes_fast_path() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let groups = b.into_label_groups();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].label.is_none());
        assert_eq!(groups[0].indices, [0, 1]);
    }

    #[test]
    fn empty_batch_groups_to_one_empty_group() {
        let groups = PacketBatch::new().into_label_groups();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].batch.is_empty());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = PacketBatch::with_capacity(8);
        b.push(pkt(1));
        let cap = b.packets.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.packets.capacity(), cap);
    }

    #[test]
    fn partition_by_shard_preserves_order_and_labels() {
        use crate::flow::FlowKey;
        let mut b = PacketBatch::new();
        for p in 1u16..=8 {
            b.push(pkt(p));
        }
        let marked = b.intern("marked");
        b.set_label(2, marked);
        b.set_label(5, marked);
        let keys: Vec<FlowKey> = b.iter().map(|p| FlowKey::from_packet(p).unwrap()).collect();
        let parts = b.partition_by_shard(3);
        assert_eq!(parts.len(), 3);
        let mut seen = 0usize;
        for (shard, part) in parts.iter().enumerate() {
            let mut last_pos = 0usize;
            for p in part.iter() {
                let key = FlowKey::from_packet(p).unwrap();
                assert_eq!(key.shard_for(3), shard, "flow on its RSS shard");
                // Order within the shard matches the input batch order.
                let pos = keys.iter().position(|k| *k == key).unwrap();
                assert!(pos >= last_pos);
                last_pos = pos;
                seen += 1;
            }
        }
        assert_eq!(seen, 8, "no packet lost or duplicated");
        // Labels survived partitioning: exactly two "marked" packets.
        let marked_count: usize = parts
            .iter()
            .map(|p| {
                (0..p.len())
                    .filter(|i| p.label_of(*i) == Some("marked"))
                    .count()
            })
            .sum();
        assert_eq!(marked_count, 2);
    }

    #[test]
    fn partition_single_shard_is_identity() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let l = b.intern("x");
        b.set_label(0, l);
        let mut parts = b.partition_by_shard(1);
        assert_eq!(parts.len(), 1);
        let only = parts.pop().unwrap();
        assert_eq!(only.len(), 2);
        assert_eq!(only.label_of(0), Some("x"));
        assert_eq!(PacketBatch::new().partition_by_shard(0).len(), 1);
    }

    #[test]
    fn labels_readable_back() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let l = b.intern("x");
        b.set_label(1, l);
        assert_eq!(b.label_of(0), None);
        assert_eq!(b.label_of(1), Some("x"));
    }
}
