//! Packet batches — the unit of bulk transfer on the dataplane.
//!
//! Moving packets one at a time through component bindings puts a
//! dynamic-dispatch + interception + (for isolated components) IPC
//! round-trip cost on *every packet*. A [`PacketBatch`] amortizes all of
//! that: one binding traversal, one interceptor-chain pass, and one
//! marshalled IPC call move up to a whole burst of packets.
//!
//! A batch is an **ordered** sequence of packets plus an optional
//! per-packet *output label*. Labels are how splitting components
//! (classifiers, route lookups, protocol demultiplexers) tag each packet
//! with its destination output in a single pass and then carve the batch
//! into per-output sub-batches without re-inspecting — and without
//! allocating a `String` per packet: labels are interned once per batch
//! in a small side table and referenced by index.
//!
//! Ordering contract: [`PacketBatch::into_label_groups`] preserves the
//! relative order of packets within each label group, and group order
//! follows first occurrence — so a downstream observer on any single
//! output sees exactly the sequence the scalar path would have produced.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::packet::Packet;

/// Index of an interned output label within one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(u16);

/// A batch of packets with optional per-packet output labels.
///
/// # Examples
///
/// ```
/// use netkit_packet::batch::PacketBatch;
/// use netkit_packet::packet::PacketBuilder;
///
/// let mut batch = PacketBatch::with_capacity(2);
/// batch.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build());
/// batch.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.3", 3, 4).build());
/// let voice = batch.intern("voice");
/// batch.set_label(0, voice);
/// let groups = batch.into_label_groups();
/// assert_eq!(groups.len(), 2); // "voice" and unlabelled
/// ```
#[derive(Default)]
pub struct PacketBatch {
    packets: Vec<Packet>,
    /// Parallel to `packets`; `u16::MAX` = unlabelled. Kept empty (and
    /// allocation-free) until the first label is assigned.
    labels: Vec<u16>,
    table: Vec<Arc<str>>,
    /// The [`BatchPool`] this container leases from, if any; on drop the
    /// (cleared) backing vectors return there instead of being freed.
    home: Option<Weak<BatchPoolInner>>,
}

impl Drop for PacketBatch {
    fn drop(&mut self) {
        let Some(pool) = self.home.take().and_then(|w| w.upgrade()) else {
            return;
        };
        pool.recycle(
            std::mem::take(&mut self.packets),
            std::mem::take(&mut self.labels),
            std::mem::take(&mut self.table),
        );
    }
}

const UNLABELLED: u16 = u16::MAX;

impl PacketBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `capacity` packets.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            packets: Vec::with_capacity(capacity),
            labels: Vec::new(),
            table: Vec::new(),
            home: None,
        }
    }

    /// Wraps an existing packet vector (all unlabelled).
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        Self {
            packets,
            labels: Vec::new(),
            table: Vec::new(),
            home: None,
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Appends a packet (unlabelled).
    pub fn push(&mut self, pkt: Packet) {
        self.packets.push(pkt);
        if !self.labels.is_empty() {
            self.labels.push(UNLABELLED);
        }
    }

    /// Interns `label`, returning its id for [`Self::set_label`].
    /// Interning the same string twice yields the same id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX - 1` distinct labels are interned
    /// in one batch (far beyond any real output fan-out).
    pub fn intern(&mut self, label: &str) -> LabelId {
        if let Some(idx) = self.table.iter().position(|l| &**l == label) {
            return LabelId(idx as u16);
        }
        assert!(
            self.table.len() < UNLABELLED as usize,
            "label table overflow"
        );
        self.table.push(Arc::from(label));
        LabelId((self.table.len() - 1) as u16)
    }

    /// Tags the packet at `idx` with an interned label.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_label(&mut self, idx: usize, label: LabelId) {
        assert!(idx < self.packets.len(), "label index out of range");
        if self.labels.is_empty() {
            self.labels.resize(self.packets.len(), UNLABELLED);
        }
        self.labels[idx] = label.0;
    }

    /// The label of the packet at `idx`, if one was assigned.
    pub fn label_of(&self, idx: usize) -> Option<&str> {
        let raw = *self.labels.get(idx)?;
        self.table.get(raw as usize).map(|l| &**l)
    }

    /// Read access to the packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Mutable access to the packets, in order.
    pub fn packets_mut(&mut self) -> &mut [Packet] {
        &mut self.packets
    }

    /// Iterates over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Removes and returns the last packet (its label, if any, is
    /// discarded). Keeps the batch's allocations intact, so a pooled
    /// container still recycles whole.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.packets.pop()?;
        self.labels.truncate(self.packets.len());
        Some(pkt)
    }

    /// Consumes the batch, returning the packets (labels discarded).
    pub fn into_packets(mut self) -> Vec<Packet> {
        std::mem::take(&mut self.packets)
    }

    /// Removes and yields every packet in batch order (labels
    /// discarded), **keeping the backing storage** — unlike
    /// `into_iter`/[`Self::into_packets`], a pool-homed container
    /// drained this way still recycles whole with its capacity. This
    /// is what terminal consumers that unpack packets (e.g. the
    /// device adapter's tx burst) use on the zero-allocation path.
    pub fn drain_all(&mut self) -> impl Iterator<Item = Packet> + '_ {
        self.labels.clear();
        self.table.clear();
        self.packets.drain(..)
    }

    /// Removes all packets and labels, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.labels.clear();
        self.table.clear();
    }

    /// Stamps every packet's
    /// [`rss_hash`](crate::packet::PacketMeta::rss_hash) from its parsed
    /// flow tuple (see [`crate::flow::stamp_rss`]); already-stamped
    /// packets are untouched. Do this once at batch construction when
    /// frames did not come through an RSS-stamping NIC path — every
    /// steering decision afterwards is a modulo, never a header parse.
    pub fn stamp_rss(&mut self) {
        for pkt in &mut self.packets {
            crate::flow::stamp_rss(pkt);
        }
    }

    /// Splits the batch into `shards` sub-batches by RSS flow affinity
    /// — the software analogue of a multi-queue NIC spreading flows
    /// over receive queues.
    ///
    /// This is the *owned* convenience over [`Self::shard_split`]: it
    /// re-materialises one `PacketBatch` per shard. Prefer the
    /// [`ShardSplit`] views when sub-batches only need to be *read*,
    /// and [`ShardSplit::into_shard_batches_pooled`] when the owned
    /// sub-batches should come from a recycled-container pool.
    ///
    /// Steering follows [`crate::flow::shard_of`] (stamped RSS hash,
    /// else one parse — which this call stamps back, so repeated splits
    /// never re-parse), with non-flow packets (ARP, malformed frames)
    /// parked on shard 0. The result always holds exactly
    /// `max(shards, 1)` batches (some possibly empty) — `0` and `1`
    /// shards are equivalent —, no packet is lost or duplicated,
    /// relative order *within each shard* — and therefore within each
    /// flow, since a flow maps to exactly one shard — matches the input
    /// batch, and per-packet labels survive (the sub-batches share the
    /// parent's label table).
    pub fn partition_by_shard(self, shards: usize) -> Vec<PacketBatch> {
        if shards <= 1 {
            return vec![self];
        }
        self.shard_split(shards).into_shard_batches()
    }

    /// Steers the batch over `shards` shards **in place**: one
    /// counting-sort pass computes a permutation and per-shard offset
    /// table; no packet moves, no label re-interns, no per-shard `Vec`
    /// materialises. The returned [`ShardSplit`] owns the batch and
    /// hands out borrowing [`ShardView`]s per shard (plus owned escape
    /// hatches when a caller truly needs `PacketBatch`es to move
    /// across threads).
    ///
    /// Steering uses the **identity** bucket table
    /// (`bucket % shards`, see [`crate::flow::shard_of`]); a rebalanced
    /// dispatcher passes its installed table to
    /// [`Self::shard_split_with`] instead. Un-stamped packets are
    /// RSS-stamped as a side effect (one header parse, once per packet
    /// lifetime). `shards == 0` is treated as `1`.
    pub fn shard_split(self, shards: usize) -> ShardSplit {
        let shards = shards.max(1);
        self.shard_split_by(shards, |pkt| crate::flow::shard_of(pkt, shards))
    }

    /// Like [`Self::shard_split`], but steers by an explicit
    /// bucket → shard indirection table — the table-driven path the
    /// reflective rebalancer installs
    /// (`netkit_router::shard::ShardedPipeline` dispatches through
    /// this). With `BucketMap::identity(n)` the result is identical to
    /// `shard_split(n)`.
    pub fn shard_split_with(self, map: &crate::steer::BucketMap) -> ShardSplit {
        self.shard_split_by(map.shards(), |pkt| map.shard_of_packet(pkt))
    }

    /// The shared counting-sort core behind both split flavours.
    /// `shard_fn` must return values `< shards` (both callers do by
    /// construction).
    fn shard_split_by(mut self, shards: usize, shard_fn: impl Fn(&Packet) -> usize) -> ShardSplit {
        let n = self.packets.len();
        if shards == 1 {
            // Degenerate split: identity permutation, one shard.
            return ShardSplit {
                perm: (0..n as u32).collect(),
                offsets: vec![0, n as u32],
                batch: self,
            };
        }
        self.stamp_rss();
        let mut shard_of_pkt: Vec<u32> = Vec::with_capacity(n);
        let mut counts = vec![0u32; shards];
        for pkt in &self.packets {
            let s = shard_fn(pkt) as u32;
            shard_of_pkt.push(s);
            counts[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(shards + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &c in &counts {
            running += c;
            offsets.push(running);
        }
        // Reuse `counts` as per-shard write cursors.
        let mut cursor = counts;
        cursor[..shards].copy_from_slice(&offsets[..shards]);
        let mut perm = vec![0u32; n];
        for (idx, &s) in shard_of_pkt.iter().enumerate() {
            perm[cursor[s as usize] as usize] = idx as u32;
            cursor[s as usize] += 1;
        }
        ShardSplit {
            batch: self,
            perm,
            offsets,
        }
    }

    /// Splits the batch into per-label groups.
    ///
    /// Each group carries its label (`None` for unlabelled packets), the
    /// packets in their original relative order, and the packets'
    /// original indices in the parent batch — so callers can map
    /// per-group verdicts back to per-batch verdicts. Groups appear in
    /// first-occurrence order. Packets are *moved*, not cloned.
    pub fn into_label_groups(mut self) -> Vec<LabelGroup> {
        let packets = std::mem::take(&mut self.packets);
        let labels = std::mem::take(&mut self.labels);
        let table = std::mem::take(&mut self.table);
        drop(self);
        if labels.is_empty() {
            // Fast path: nothing was ever labelled.
            let indices = (0..packets.len()).collect();
            return vec![LabelGroup {
                label: None,
                batch: PacketBatch::from_packets(packets),
                indices,
            }];
        }
        let mut groups: Vec<LabelGroup> = Vec::new();
        // Map from raw label idx (or UNLABELLED) to position in `groups`.
        let mut slot_of: Vec<Option<usize>> = vec![None; table.len() + 1];
        for (idx, (pkt, raw)) in packets.into_iter().zip(labels).enumerate() {
            let key = if raw == UNLABELLED {
                table.len()
            } else {
                raw as usize
            };
            let slot = match slot_of[key] {
                Some(s) => s,
                None => {
                    let label = if raw == UNLABELLED {
                        None
                    } else {
                        Some(Arc::clone(&table[raw as usize]))
                    };
                    groups.push(LabelGroup {
                        label,
                        batch: PacketBatch::new(),
                        indices: Vec::new(),
                    });
                    slot_of[key] = Some(groups.len() - 1);
                    groups.len() - 1
                }
            };
            groups[slot].batch.push(pkt);
            groups[slot].indices.push(idx);
        }
        groups
    }
}

impl From<Vec<Packet>> for PacketBatch {
    fn from(packets: Vec<Packet>) -> Self {
        Self::from_packets(packets)
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<T: IntoIterator<Item = Packet>>(iter: T) -> Self {
        Self::from_packets(iter.into_iter().collect())
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(mut self) -> Self::IntoIter {
        std::mem::take(&mut self.packets).into_iter()
    }
}

impl<'a> IntoIterator for &'a PacketBatch {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl fmt::Debug for PacketBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PacketBatch({} packets, {} labels)",
            self.packets.len(),
            self.table.len()
        )
    }
}

/// An index-based shard steering of one batch (see
/// [`PacketBatch::shard_split`]).
///
/// Holds the steered batch **unmoved** plus a permutation (`perm`) and a
/// per-shard offset table: shard `s` owns the original packet indices
/// `perm[offsets[s]..offsets[s + 1]]`, in input order. Reading a shard
/// ([`Self::shard`]) borrows the original packets and label table —
/// zero copies, zero re-interning, zero per-shard `Vec`s. When owned
/// sub-batches must cross a thread boundary, [`Self::into_shard_batches`]
/// (or the pooled variant) moves the packets out in a single pass.
///
/// # Examples
///
/// ```
/// use netkit_packet::batch::PacketBatch;
/// use netkit_packet::packet::PacketBuilder;
///
/// let batch: PacketBatch = (0..8u16)
///     .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1000 + i, 80).build())
///     .collect();
/// let split = batch.shard_split(4);
/// assert_eq!(split.shards(), 4);
/// assert_eq!(split.views().map(|v| v.len()).sum::<usize>(), 8);
/// ```
pub struct ShardSplit {
    batch: PacketBatch,
    /// Original packet indices grouped by shard (stable within each
    /// shard).
    perm: Vec<u32>,
    /// `offsets[s]..offsets[s + 1]` slices `perm` for shard `s`;
    /// `offsets.len() == shards + 1`.
    offsets: Vec<u32>,
}

impl ShardSplit {
    /// Number of shards (always ≥ 1).
    pub fn shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of packets across all shards.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the underlying batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The underlying batch (packets in their original order).
    pub fn batch(&self) -> &PacketBatch {
        &self.batch
    }

    /// Gives the steered batch back, unchanged (aside from RSS stamps).
    pub fn into_batch(self) -> PacketBatch {
        self.batch
    }

    /// A borrowing view of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn shard(&self, s: usize) -> ShardView<'_> {
        assert!(s < self.shards(), "shard index out of range");
        ShardView { split: self, s }
    }

    /// Iterates the per-shard views in shard order.
    pub fn views(&self) -> impl Iterator<Item = ShardView<'_>> {
        (0..self.shards()).map(|s| self.shard(s))
    }

    /// Moves the packets out into `max(shards, 1)` owned sub-batches —
    /// the escape hatch for callers (worker rings, cross-thread
    /// hand-off) that truly need owned `PacketBatch`es. One pass, each
    /// sub-batch pre-sized exactly; labels survive by sharing the
    /// parent's interned table (no re-interning).
    pub fn into_shard_batches(self) -> Vec<PacketBatch> {
        self.into_batches_with(|_| PacketBatch::new())
    }

    /// Converts the split into a **shared** split: the parent batch
    /// stays whole behind one refcounted handle, and each shard's slice
    /// becomes a cheap [`SharedShardRange`] descriptor that can cross a
    /// thread boundary without moving a single packet. This is the
    /// move-free ring protocol's producer half: where
    /// [`Self::into_shard_batches_pooled`] re-materialises one owned
    /// sub-batch per shard *on the dispatch thread*, `into_shared`
    /// defers the per-shard gather to the consuming workers
    /// ([`SharedShardRange::take_into`]), which run it in parallel.
    /// The parent container — including a pool-homed one — recycles
    /// whole when the last range (or the [`SharedSplit`] handle) drops.
    pub fn into_shared(self) -> SharedSplit {
        SharedSplit {
            inner: Arc::new(SharedSplitInner {
                parent: Mutex::new(self.batch),
                perm: self.perm,
                offsets: self.offsets,
            }),
        }
    }

    /// Like [`Self::into_shard_batches`], but the sub-batch containers
    /// lease from `pool`, so in steady state the per-shard `Vec`s are
    /// recycled rather than allocated.
    pub fn into_shard_batches_pooled(self, pool: &BatchPool) -> Vec<PacketBatch> {
        self.into_batches_with(|_| pool.take())
    }

    fn into_batches_with(self, mut make: impl FnMut(usize) -> PacketBatch) -> Vec<PacketBatch> {
        let shards = self.shards();
        let Self {
            mut batch,
            perm,
            offsets,
        } = self;
        // Invert perm/offsets into a per-index shard id.
        let mut shard_of_idx = vec![0u32; batch.packets.len()];
        for s in 0..shards {
            for &idx in &perm[offsets[s] as usize..offsets[s + 1] as usize] {
                shard_of_idx[idx as usize] = s as u32;
            }
        }
        let has_labels = !batch.labels.is_empty();
        let mut out: Vec<PacketBatch> = (0..shards)
            .map(|s| {
                let mut b = make(s);
                let len = (offsets[s + 1] - offsets[s]) as usize;
                b.packets.reserve(len);
                if has_labels {
                    b.labels.reserve(len);
                    b.table = batch.table.clone();
                }
                b
            })
            .collect();
        // Drain in place (not mem::take) so the parent's backing
        // vectors keep their capacity and the container — if it is
        // pool-homed — recycles whole at the drop below.
        for (idx, pkt) in batch.packets.drain(..).enumerate() {
            let target = &mut out[shard_of_idx[idx] as usize];
            target.packets.push(pkt);
            if has_labels {
                target.labels.push(batch.labels[idx]);
            }
        }
        drop(batch);
        out
    }
}

impl fmt::Debug for ShardSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardSplit({} packets over {} shards)",
            self.len(),
            self.shards()
        )
    }
}

/// One shard's borrowed slice of a [`ShardSplit`]: the packets steered
/// to this shard, in their original relative order, without moving or
/// copying anything.
#[derive(Clone, Copy)]
pub struct ShardView<'a> {
    split: &'a ShardSplit,
    s: usize,
}

impl<'a> ShardView<'a> {
    /// The shard index this view covers.
    pub fn shard(&self) -> usize {
        self.s
    }

    /// Original batch indices of this shard's packets, in order.
    pub fn indices(&self) -> &'a [u32] {
        let lo = self.split.offsets[self.s] as usize;
        let hi = self.split.offsets[self.s + 1] as usize;
        &self.split.perm[lo..hi]
    }

    /// Number of packets on this shard.
    pub fn len(&self) -> usize {
        self.indices().len()
    }

    /// True when no packet steered here.
    pub fn is_empty(&self) -> bool {
        self.indices().is_empty()
    }

    /// The `i`-th packet of this shard (borrowed from the parent batch).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> &'a Packet {
        &self.split.batch.packets[self.indices()[i] as usize]
    }

    /// Iterates this shard's packets in input order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Packet> + '_ {
        self.indices()
            .iter()
            .map(|&idx| &self.split.batch.packets[idx as usize])
    }

    /// The label of the `i`-th packet of this shard, if one was
    /// assigned (read from the parent's interned table — no copy).
    pub fn label_of(&self, i: usize) -> Option<&'a str> {
        self.split.batch.label_of(self.indices()[i] as usize)
    }
}

impl fmt::Debug for ShardView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardView(shard {}, {} packets)", self.s, self.len())
    }
}

/// The refcounted interior of a [`SharedSplit`]: the steered parent
/// batch (original packet order, never moved) plus the counting-sort
/// view. Ranges lock the parent only for the brief moment they move
/// their own slots out; the slots of distinct shards are disjoint by
/// construction, so ranges never contend on data, only on the lock.
struct SharedSplitInner {
    parent: Mutex<PacketBatch>,
    /// Original packet indices grouped by shard (see [`ShardSplit`]).
    perm: Vec<u32>,
    /// `offsets[s]..offsets[s + 1]` slices `perm` for shard `s`.
    offsets: Vec<u32>,
}

impl SharedSplitInner {
    fn bounds(&self, shard: usize) -> (usize, usize) {
        (
            self.offsets[shard] as usize,
            self.offsets[shard + 1] as usize,
        )
    }
}

/// A [`ShardSplit`] whose parent batch is shared behind a refcount, so
/// per-shard slices can be handed to worker rings as cheap
/// [`SharedShardRange`] descriptors instead of re-materialised owned
/// sub-batches (see [`ShardSplit::into_shared`]).
///
/// Lifecycle: the parent [`PacketBatch`] lives exactly as long as any
/// handle on it — this split or any range. Whoever drops the last
/// handle frees (or, for a pool-homed container, **recycles**) the
/// parent; packets a range never claimed (a rejected or dead-shard
/// range) are released with it, so no frame buffer leaks whatever the
/// consumers' fate.
///
/// # Examples
///
/// ```
/// use netkit_packet::batch::{BatchPool, PacketBatch};
/// use netkit_packet::packet::PacketBuilder;
///
/// let batch: PacketBatch = (0..8u16)
///     .map(|i| PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1000 + i, 80).build())
///     .collect();
/// let shared = batch.shard_split(2).into_shared();
/// let (a, b) = (shared.range(0), shared.range(1));
/// drop(shared); // ranges keep the parent alive
/// let pool = BatchPool::new(8, 0, 4);
/// let mut out = pool.take();
/// let taken = a.take_into(&mut out);
/// assert_eq!(taken + b.len(), 8);
/// ```
pub struct SharedSplit {
    inner: Arc<SharedSplitInner>,
}

impl SharedSplit {
    /// Number of shards (always ≥ 1).
    pub fn shards(&self) -> usize {
        self.inner.offsets.len() - 1
    }

    /// Total number of packets across all shards.
    pub fn len(&self) -> usize {
        self.inner.perm.len()
    }

    /// True when the parent batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.inner.perm.is_empty()
    }

    /// Number of packets steered to shard `s` (no lock taken — the
    /// view is immutable for the split's lifetime).
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn shard_len(&self, s: usize) -> usize {
        let (lo, hi) = self.inner.bounds(s);
        hi - lo
    }

    /// A refcounted descriptor of shard `s`'s slice — the unit the
    /// dispatch fan-out publishes to each worker ring. Cloning cost is
    /// one `Arc` bump; no packet moves until the consumer calls
    /// [`SharedShardRange::take_into`].
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn range(&self, s: usize) -> SharedShardRange {
        assert!(s < self.shards(), "shard index out of range");
        SharedShardRange {
            inner: Arc::clone(&self.inner),
            shard: s,
        }
    }
}

impl fmt::Debug for SharedSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedSplit({} packets over {} shards)",
            self.len(),
            self.shards()
        )
    }
}

/// One shard's slice of a [`SharedSplit`]: a refcounted descriptor
/// naming the packets steered to this shard, safe to move across
/// threads without touching the packets themselves.
///
/// The consuming worker calls [`Self::take_into`] exactly once (the
/// call consumes the range) to move its slots out of the shared parent
/// into its own container. A range that is instead dropped — full ring,
/// dead worker — releases its claim: the packets stay in the parent and
/// are freed (pooled frame buffers recycled) when the parent's last
/// handle goes.
pub struct SharedShardRange {
    inner: Arc<SharedSplitInner>,
    shard: usize,
}

impl SharedShardRange {
    /// The shard index this range covers.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of packets in this range.
    pub fn len(&self) -> usize {
        let (lo, hi) = self.inner.bounds(self.shard);
        hi - lo
    }

    /// True when no packet steered to this shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves this range's packets (and labels) out of the shared parent
    /// into `out`, preserving input order, and returns how many moved.
    /// This is the consumer half of the move-free ring protocol: the
    /// gather the owned dispatch path ran serially on the producer
    /// happens here, on the worker, in parallel with its siblings. The
    /// parent is locked only for the move itself; vacated slots are
    /// backfilled with empty placeholder packets (allocation-free), so
    /// the parent container still recycles whole once every handle is
    /// gone.
    ///
    /// Labels survive: `out` inherits the parent's interned table by
    /// `Arc` clone, no re-interning.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not empty (ranges gather into fresh — usually
    /// pool-leased — containers; merging into a partially filled batch
    /// would need label-table reconciliation the fast path never wants).
    pub fn take_into(self, out: &mut PacketBatch) -> usize {
        assert!(
            out.packets.is_empty() && out.table.is_empty(),
            "take_into requires an empty output container"
        );
        let (lo, hi) = self.inner.bounds(self.shard);
        if lo == hi {
            return 0;
        }
        let mut parent = self.inner.parent.lock();
        let parent = &mut *parent;
        out.packets.reserve(hi - lo);
        let has_labels = !parent.labels.is_empty();
        if has_labels {
            out.labels.reserve(hi - lo);
            out.table.extend(parent.table.iter().cloned());
        }
        for &idx in &self.inner.perm[lo..hi] {
            out.packets
                .push(std::mem::take(&mut parent.packets[idx as usize]));
            if has_labels {
                out.labels.push(parent.labels[idx as usize]);
            }
        }
        hi - lo
    }
}

impl fmt::Debug for SharedShardRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedShardRange(shard {}, {} packets)",
            self.shard,
            self.len()
        )
    }
}

/// Pool counters for [`BatchPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchPoolStats {
    /// Containers served from the free list.
    pub reused: u64,
    /// Containers freshly allocated because the free list was empty.
    pub allocated: u64,
    /// Containers returned to the free list on drop.
    pub recycled: u64,
    /// Containers discarded on drop (free list full, or the backing
    /// storage had been moved out).
    pub discarded: u64,
}

struct BatchPoolInner {
    /// Packets to pre-reserve in a fresh container.
    capacity: usize,
    max_free: usize,
    #[allow(clippy::type_complexity)]
    free: Mutex<Vec<(Vec<Packet>, Vec<u16>, Vec<Arc<str>>)>>,
    reused: AtomicU64,
    allocated: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl BatchPoolInner {
    fn recycle(&self, mut packets: Vec<Packet>, mut labels: Vec<u16>, mut table: Vec<Arc<str>>) {
        // Dropping the packets here releases their (possibly pooled)
        // frame buffers before the container returns to the free list.
        packets.clear();
        labels.clear();
        table.clear();
        let mut free = self.free.lock();
        // A container whose packet storage was moved out (e.g. by
        // `into_packets`) has nothing worth keeping.
        if free.len() < self.max_free && packets.capacity() > 0 {
            free.push((packets, labels, table));
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A free list of [`PacketBatch`] *containers* — the batch-granularity
/// companion to [`crate::pool::BufferPool`]'s frame slabs.
///
/// Batches taken from the pool return their backing vectors here when
/// dropped (wherever that happens — typically at the far end of a
/// worker's run-to-completion pass), so a steady-state forwarding loop
/// performs no per-batch heap allocation: the same `Vec<Packet>`
/// shuttles rx → ring → graph → sink → rx again.
///
/// # Examples
///
/// ```
/// use netkit_packet::batch::BatchPool;
/// use netkit_packet::packet::PacketBuilder;
///
/// let pool = BatchPool::new(32, 0, 8);
/// let mut batch = pool.take();
/// batch.push(PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1, 2).build());
/// drop(batch); // container recycled
/// let again = pool.take();
/// assert!(again.is_empty());
/// assert_eq!(pool.stats().reused, 1);
/// ```
#[derive(Clone)]
pub struct BatchPool {
    inner: Arc<BatchPoolInner>,
}

impl BatchPool {
    /// Creates a pool of batch containers pre-sized for `capacity`
    /// packets, preallocating `prealloc` containers (provision for the
    /// peak number simultaneously in flight, so the steady state never
    /// allocates) and keeping at most `max_free` on the free list.
    pub fn new(capacity: usize, prealloc: usize, max_free: usize) -> Self {
        let free = (0..prealloc)
            .map(|_| (Vec::with_capacity(capacity.max(1)), Vec::new(), Vec::new()))
            .collect();
        Self {
            inner: Arc::new(BatchPoolInner {
                capacity,
                max_free,
                free: Mutex::new(free),
                reused: AtomicU64::new(0),
                allocated: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Takes an empty batch container (recycled when available), homed
    /// to this pool.
    pub fn take(&self) -> PacketBatch {
        let parts = self.inner.free.lock().pop();
        let (mut packets, labels, table) = match parts {
            Some(parts) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                parts
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                (
                    Vec::with_capacity(self.inner.capacity),
                    Vec::new(),
                    Vec::new(),
                )
            }
        };
        if packets.capacity() < self.inner.capacity {
            packets.reserve(self.inner.capacity);
        }
        PacketBatch {
            packets,
            labels,
            table,
            home: Some(Arc::downgrade(&self.inner)),
        }
    }

    /// Containers currently on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// The packet capacity fresh containers are pre-sized for.
    pub fn batch_capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Snapshot of pool counters.
    pub fn stats(&self) -> BatchPoolStats {
        BatchPoolStats {
            reused: self.inner.reused.load(Ordering::Relaxed),
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for BatchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BatchPool(capacity {}, {} free, stats {:?})",
            self.inner.capacity,
            self.free_count(),
            self.stats()
        )
    }
}

/// One per-label slice of a batch (see
/// [`PacketBatch::into_label_groups`]).
#[derive(Debug)]
pub struct LabelGroup {
    /// The shared output label, or `None` for unlabelled packets.
    pub label: Option<Arc<str>>,
    /// The group's packets, original relative order preserved.
    pub batch: PacketBatch,
    /// Original index in the parent batch of each packet in `batch`.
    pub indices: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    fn pkt(sport: u16) -> Packet {
        PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", sport, 9).build()
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut b = PacketBatch::with_capacity(4);
        for p in [1u16, 2, 3] {
            b.push(pkt(p));
        }
        assert_eq!(b.len(), 3);
        let ports: Vec<u16> = b
            .into_packets()
            .iter()
            .map(|p| p.udp_v4().unwrap().src_port)
            .collect();
        assert_eq!(ports, [1, 2, 3]);
    }

    #[test]
    fn interning_deduplicates() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        let a = b.intern("voice");
        let c = b.intern("voice");
        assert_eq!(a, c);
        let d = b.intern("bulk");
        assert_ne!(a, d);
    }

    #[test]
    fn label_groups_split_without_reordering() {
        let mut b = PacketBatch::new();
        for p in 1u16..=6 {
            b.push(pkt(p));
        }
        let voice = b.intern("voice");
        let bulk = b.intern("bulk");
        for (i, l) in [(0, voice), (2, voice), (3, bulk), (5, voice)] {
            b.set_label(i, l);
        }
        let groups = b.into_label_groups();
        assert_eq!(groups.len(), 3);
        let by_label = |name: Option<&str>| {
            groups
                .iter()
                .find(|g| g.label.as_deref() == name)
                .expect("group present")
        };
        let ports = |g: &LabelGroup| -> Vec<u16> {
            g.batch
                .iter()
                .map(|p| p.udp_v4().unwrap().src_port)
                .collect()
        };
        assert_eq!(ports(by_label(Some("voice"))), [1, 3, 6]);
        assert_eq!(by_label(Some("voice")).indices, [0, 2, 5]);
        assert_eq!(ports(by_label(Some("bulk"))), [4]);
        assert_eq!(ports(by_label(None)), [2, 5]);
        assert_eq!(by_label(None).indices, [1, 4]);
    }

    #[test]
    fn unlabelled_batch_takes_fast_path() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let groups = b.into_label_groups();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].label.is_none());
        assert_eq!(groups[0].indices, [0, 1]);
    }

    #[test]
    fn empty_batch_groups_to_one_empty_group() {
        let groups = PacketBatch::new().into_label_groups();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].batch.is_empty());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = PacketBatch::with_capacity(8);
        b.push(pkt(1));
        let cap = b.packets.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.packets.capacity(), cap);
    }

    #[test]
    fn partition_by_shard_preserves_order_and_labels() {
        use crate::flow::FlowKey;
        let mut b = PacketBatch::new();
        for p in 1u16..=8 {
            b.push(pkt(p));
        }
        let marked = b.intern("marked");
        b.set_label(2, marked);
        b.set_label(5, marked);
        let keys: Vec<FlowKey> = b.iter().map(|p| FlowKey::from_packet(p).unwrap()).collect();
        let parts = b.partition_by_shard(3);
        assert_eq!(parts.len(), 3);
        let mut seen = 0usize;
        for (shard, part) in parts.iter().enumerate() {
            let mut last_pos = 0usize;
            for p in part.iter() {
                let key = FlowKey::from_packet(p).unwrap();
                assert_eq!(key.shard_for(3), shard, "flow on its RSS shard");
                // Order within the shard matches the input batch order.
                let pos = keys.iter().position(|k| *k == key).unwrap();
                assert!(pos >= last_pos);
                last_pos = pos;
                seen += 1;
            }
        }
        assert_eq!(seen, 8, "no packet lost or duplicated");
        // Labels survived partitioning: exactly two "marked" packets.
        let marked_count: usize = parts
            .iter()
            .map(|p| {
                (0..p.len())
                    .filter(|i| p.label_of(*i) == Some("marked"))
                    .count()
            })
            .sum();
        assert_eq!(marked_count, 2);
    }

    #[test]
    fn partition_single_shard_is_identity() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let l = b.intern("x");
        b.set_label(0, l);
        let mut parts = b.partition_by_shard(1);
        assert_eq!(parts.len(), 1);
        let only = parts.pop().unwrap();
        assert_eq!(only.len(), 2);
        assert_eq!(only.label_of(0), Some("x"));
        assert_eq!(PacketBatch::new().partition_by_shard(0).len(), 1);
    }

    #[test]
    fn shard_split_views_agree_with_owned_partition() {
        let mut b = PacketBatch::new();
        for p in 1u16..=16 {
            b.push(pkt(p));
        }
        let marked = b.intern("marked");
        b.set_label(3, marked);
        b.set_label(9, marked);
        let mut reference = PacketBatch::new();
        for p in 1u16..=16 {
            reference.push(pkt(p));
        }
        let m2 = reference.intern("marked");
        reference.set_label(3, m2);
        reference.set_label(9, m2);

        let split = b.shard_split(4);
        assert_eq!(split.shards(), 4);
        assert_eq!(split.len(), 16);
        let owned = reference.partition_by_shard(4);
        for (view, own) in split.views().zip(&owned) {
            assert_eq!(view.len(), own.len());
            for i in 0..view.len() {
                assert_eq!(view.get(i).data(), own.packets()[i].data());
                assert_eq!(view.label_of(i), own.label_of(i));
            }
        }
        // The views borrow: the split still owns all 16 packets.
        assert_eq!(split.batch().len(), 16);
        // And the escape hatch matches the owned partition too.
        let moved = split.into_shard_batches();
        assert_eq!(moved.len(), 4);
        for (a, b) in moved.iter().zip(&owned) {
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.packets()[i].data(), b.packets()[i].data());
                assert_eq!(a.label_of(i), b.label_of(i));
            }
        }
    }

    #[test]
    fn shard_split_with_identity_matches_plain_split() {
        use crate::steer::BucketMap;
        let build = || -> PacketBatch {
            let mut b = PacketBatch::new();
            for p in 1u16..=16 {
                b.push(pkt(p));
            }
            let l = b.intern("x");
            b.set_label(5, l);
            b
        };
        let via_map = build().shard_split_with(&BucketMap::identity(4));
        let plain = build().shard_split(4);
        for (a, b) in via_map.views().zip(plain.views()) {
            assert_eq!(a.indices(), b.indices());
        }
    }

    #[test]
    fn shard_split_with_honours_moved_buckets() {
        use crate::flow::FlowKey;
        use crate::steer::BucketMap;
        let mut b = PacketBatch::new();
        for p in 1u16..=16 {
            b.push(pkt(p));
        }
        // Migrate every bucket the batch's flows occupy onto shard 3.
        let mut map = BucketMap::identity(4);
        for p in b.iter() {
            map.set(FlowKey::from_packet(p).unwrap().bucket(), 3);
        }
        let split = b.shard_split_with(&map);
        assert_eq!(split.shard(3).len(), 16, "all flows follow their bucket");
        for s in 0..3 {
            assert!(split.shard(s).is_empty());
        }
        // Order within the shard matches input order.
        let idx: Vec<u32> = split.shard(3).indices().to_vec();
        assert_eq!(idx, (0..16u32).collect::<Vec<_>>());
    }

    #[test]
    fn shard_split_stamps_rss_once() {
        use crate::flow::FlowKey;
        let mut b = PacketBatch::new();
        for p in 1u16..=4 {
            b.push(pkt(p));
        }
        assert!(b.packets()[0].meta.rss_hash.is_none());
        let split = b.shard_split(2);
        for view in split.views() {
            for p in view.iter() {
                assert_eq!(
                    p.meta.rss_hash,
                    Some(FlowKey::from_packet(p).unwrap().rss_hash())
                );
            }
        }
    }

    #[test]
    fn zero_and_one_shard_splits_are_equivalent() {
        for shards in [0usize, 1] {
            let mut b = PacketBatch::new();
            for p in 1u16..=3 {
                b.push(pkt(p));
            }
            let l = b.intern("x");
            b.set_label(1, l);
            let split = b.shard_split(shards);
            assert_eq!(split.shards(), 1, "shards={shards}");
            let view = split.shard(0);
            assert_eq!(view.len(), 3);
            assert_eq!(view.indices(), &[0, 1, 2]);
            assert_eq!(view.label_of(1), Some("x"));
            // Degenerate splits skip stamping: no parse on the 1-shard path.
            assert!(view.get(0).meta.rss_hash.is_none());
            let batches = split.into_shard_batches();
            assert_eq!(batches.len(), 1);
            assert_eq!(batches[0].len(), 3);
            assert_eq!(batches[0].label_of(1), Some("x"));
        }
    }

    #[test]
    fn batch_pool_recycles_containers_wherever_dropped() {
        let pool = BatchPool::new(8, 0, 4);
        let mut batch = pool.take();
        assert_eq!(pool.stats().allocated, 1);
        batch.push(pkt(1));
        // Simulate the cross-thread hand-off: container dropped elsewhere.
        let handle = std::thread::spawn(move || drop(batch));
        handle.join().unwrap();
        assert_eq!(pool.free_count(), 1);
        let again = pool.take();
        assert!(again.is_empty());
        let s = pool.stats();
        assert_eq!((s.reused, s.allocated, s.recycled), (1, 1, 1));
    }

    #[test]
    fn pooled_split_reuses_shard_containers() {
        let pool = BatchPool::new(8, 0, 8);
        for round in 0..3 {
            let mut b = PacketBatch::new();
            for p in 1u16..=8 {
                b.push(pkt(p));
            }
            let parts = b.shard_split(2).into_shard_batches_pooled(&pool);
            assert_eq!(parts.iter().map(PacketBatch::len).sum::<usize>(), 8);
            drop(parts);
            if round > 0 {
                assert!(pool.stats().reused > 0, "containers recycle across rounds");
            }
        }
        // Steady state: only the first round allocated.
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn split_recycles_the_parent_container_too() {
        // Regression: a pool-homed batch that goes through
        // shard_split → into_shard_batches must return its own backing
        // vectors to the pool (with capacity), not discard them —
        // otherwise a fill-split-dispatch loop leaks one container per
        // round.
        let pool = BatchPool::new(16, 0, 8);
        for round in 0..3u64 {
            let mut parent = pool.take();
            for p in 1u16..=8 {
                parent.push(pkt(p));
            }
            let parts = parent.shard_split(2).into_shard_batches_pooled(&pool);
            drop(parts);
            let s = pool.stats();
            assert_eq!(
                s.discarded, 0,
                "round {round}: parent must not be discarded"
            );
            // Parent + 2 sub-containers recycle every round.
            assert_eq!(s.recycled, (round + 1) * 3);
        }
        assert_eq!(pool.stats().allocated, 3, "steady state after round 1");
    }

    #[test]
    fn pool_gone_means_plain_drop() {
        let pool = BatchPool::new(4, 0, 4);
        let batch = pool.take();
        drop(pool);
        drop(batch); // pool inner already gone; drop must not panic
    }

    #[test]
    fn drain_all_preserves_order_and_the_container() {
        let pool = BatchPool::new(8, 0, 4);
        let mut batch = pool.take();
        for p in [1u16, 2, 3] {
            batch.push(pkt(p));
        }
        let l = batch.intern("x");
        batch.set_label(0, l);
        let ports: Vec<u16> = batch
            .drain_all()
            .map(|p| p.udp_v4().unwrap().src_port)
            .collect();
        assert_eq!(ports, [1, 2, 3]);
        assert!(batch.is_empty());
        drop(batch);
        let s = pool.stats();
        assert_eq!((s.recycled, s.discarded), (1, 0), "container kept whole");
    }

    #[test]
    fn moved_out_containers_are_discarded_not_recycled() {
        let pool = BatchPool::new(4, 0, 4);
        let mut batch = pool.take();
        batch.push(pkt(1));
        let _pkts = batch.into_packets(); // storage moved out, container drops
        let s = pool.stats();
        assert_eq!((s.recycled, s.discarded), (0, 1));
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn pop_returns_last_and_truncates_labels() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let l = b.intern("x");
        b.set_label(1, l);
        let last = b.pop().unwrap();
        assert_eq!(last.udp_v4().unwrap().src_port, 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.label_of(0), None);
        b.push(pkt(3));
        assert_eq!(b.label_of(1), None, "stale label must not resurface");
        assert!(PacketBatch::new().pop().is_none());
    }

    #[test]
    fn shared_ranges_agree_with_owned_partition() {
        let build = || -> PacketBatch {
            let mut b = PacketBatch::new();
            for p in 1u16..=16 {
                b.push(pkt(p));
            }
            let l = b.intern("marked");
            b.set_label(3, l);
            b.set_label(9, l);
            b
        };
        let owned = build().partition_by_shard(4);
        let shared = build().shard_split(4).into_shared();
        assert_eq!(shared.shards(), 4);
        assert_eq!(shared.len(), 16);
        for (s, own) in owned.iter().enumerate() {
            let range = shared.range(s);
            assert_eq!(range.shard(), s);
            assert_eq!(range.len(), own.len());
            assert_eq!(shared.shard_len(s), own.len());
            let mut out = PacketBatch::new();
            assert_eq!(range.take_into(&mut out), own.len());
            for i in 0..out.len() {
                assert_eq!(out.packets()[i].data(), own.packets()[i].data());
                assert_eq!(out.label_of(i), own.label_of(i));
            }
        }
    }

    #[test]
    fn shared_parent_recycles_when_last_range_drops() {
        let pool = BatchPool::new(16, 0, 8);
        for round in 0..3u64 {
            let mut parent = pool.take();
            for p in 1u16..=8 {
                parent.push(pkt(p));
            }
            let shared = parent.shard_split(2).into_shared();
            let (a, b) = (shared.range(0), shared.range(1));
            drop(shared);
            // While any range lives, the parent container stays out.
            let mut out_a = pool.take();
            a.take_into(&mut out_a);
            drop(out_a);
            let before = pool.stats().recycled;
            let mut out_b = pool.take();
            b.take_into(&mut out_b);
            drop(out_b);
            let s = pool.stats();
            // Last range gone: parent + out_b both recycled, whole.
            assert_eq!(s.recycled, before + 2, "round {round}");
            assert_eq!(s.discarded, 0, "round {round}: nothing drops cold");
        }
        // Steady state: one parent + one gather container in flight at
        // a time (out_b reuses out_a's recycled container) — two
        // allocations ever, none after round 0.
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn dropped_range_releases_unclaimed_packets_with_the_parent() {
        let pool = BatchPool::new(16, 0, 8);
        let mut parent = pool.take();
        for p in 1u16..=8 {
            parent.push(pkt(p));
        }
        let shared = parent.shard_split(2).into_shared();
        let taken_range = shared.range(0);
        let rejected = shared.range(1);
        let expect_left = rejected.len();
        drop(shared);
        let mut out = pool.take();
        let taken = taken_range.take_into(&mut out);
        assert_eq!(taken + expect_left, 8);
        // Shard 1's range is dropped un-taken (full ring / dead worker):
        // its packets die with the parent, the container still recycles.
        drop(rejected);
        let s = pool.stats();
        assert!(s.recycled >= 1, "{s:?}");
        assert_eq!(s.discarded, 0);
    }

    #[test]
    #[should_panic(expected = "empty output container")]
    fn take_into_rejects_a_dirty_container() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        let shared = b.shard_split(1).into_shared();
        let mut out = PacketBatch::new();
        out.push(pkt(2));
        shared.range(0).take_into(&mut out);
    }

    #[test]
    fn labels_readable_back() {
        let mut b = PacketBatch::new();
        b.push(pkt(1));
        b.push(pkt(2));
        let l = b.intern("x");
        b.set_label(1, l);
        assert_eq!(b.label_of(0), None);
        assert_eq!(b.label_of(1), Some("x"));
    }
}
