//! Parse errors for protocol headers.

use std::fmt;

/// Error produced when decoding a frame or header fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The buffer is shorter than the header requires.
    Truncated {
        /// Which header was being parsed.
        header: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A version field did not match the expected protocol version.
    BadVersion {
        /// Which header was being parsed.
        header: &'static str,
        /// The version found.
        found: u8,
    },
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// Which header was being parsed.
        header: &'static str,
        /// Explanation.
        detail: &'static str,
    },
    /// The checksum did not verify.
    BadChecksum {
        /// Which header was being parsed.
        header: &'static str,
    },
    /// The EtherType / next-protocol value is not supported.
    UnsupportedProtocol {
        /// The raw protocol value found.
        value: u16,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated {
                header,
                needed,
                available,
            } => {
                write!(
                    f,
                    "{header} truncated: need {needed} bytes, have {available}"
                )
            }
            ParseError::BadVersion { header, found } => {
                write!(f, "{header} has unexpected version {found}")
            }
            ParseError::BadLength { header, detail } => {
                write!(f, "{header} has inconsistent length: {detail}")
            }
            ParseError::BadChecksum { header } => write!(f, "{header} checksum mismatch"),
            ParseError::UnsupportedProtocol { value } => {
                write!(f, "unsupported protocol value {value:#06x}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing operations.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_header_and_sizes() {
        let e = ParseError::Truncated {
            header: "ipv4",
            needed: 20,
            available: 7,
        };
        let s = e.to_string();
        assert!(s.contains("ipv4") && s.contains("20") && s.contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<ParseError>();
    }
}
