//! Property-based tests over the wire codecs: write→parse round-trips,
//! checksum validity under in-place mutation, and robustness of parsers
//! against arbitrary byte soup.

use proptest::prelude::*;

use netkit_packet::headers::{
    EtherType, EthernetHeader, Ipv4Header, Ipv6Header, MacAddr, UdpHeader,
};
use netkit_packet::packet::{Packet, PacketBuilder};

fn ipv4_strategy() -> impl Strategy<Value = Ipv4Header> {
    (
        any::<u8>(),  // dscp (masked below)
        any::<u8>(),  // ecn (masked below)
        any::<u16>(), // identification
        any::<bool>(),
        any::<bool>(),
        0u16..8192,  // fragment offset (13 bits)
        1u8..=255,   // ttl
        any::<u8>(), // protocol
        any::<u32>(),
        any::<u32>(),
        0u16..=1400, // payload length
    )
        .prop_map(
            |(dscp, ecn, identification, df, mf, frag, ttl, protocol, src, dst, payload)| {
                Ipv4Header {
                    dscp: dscp & 0x3f,
                    ecn: ecn & 0x03,
                    total_len: 20 + payload,
                    identification,
                    dont_fragment: df,
                    more_fragments: mf,
                    fragment_offset: frag,
                    ttl,
                    protocol,
                    checksum: 0, // recomputed on write
                    src: src.into(),
                    dst: dst.into(),
                    header_len: 20,
                }
            },
        )
}

proptest! {
    #[test]
    fn ipv4_write_parse_roundtrip(h in ipv4_strategy()) {
        let mut wire = Vec::new();
        h.write(&mut wire);
        // Pad the buffer out to total_len so length validation passes.
        wire.resize(h.total_len as usize, 0);
        let parsed = Ipv4Header::parse(&wire).expect("own output parses");
        prop_assert_eq!(parsed.dscp, h.dscp);
        prop_assert_eq!(parsed.ecn, h.ecn);
        prop_assert_eq!(parsed.identification, h.identification);
        prop_assert_eq!(parsed.dont_fragment, h.dont_fragment);
        prop_assert_eq!(parsed.more_fragments, h.more_fragments);
        prop_assert_eq!(parsed.fragment_offset, h.fragment_offset);
        prop_assert_eq!(parsed.ttl, h.ttl);
        prop_assert_eq!(parsed.protocol, h.protocol);
        prop_assert_eq!(parsed.src, h.src);
        prop_assert_eq!(parsed.dst, h.dst);
    }

    #[test]
    fn ttl_decrement_preserves_checksum_validity(h in ipv4_strategy()) {
        prop_assume!(h.ttl > 1);
        let mut wire = Vec::new();
        h.write(&mut wire);
        wire.resize(h.total_len as usize, 0);
        let new_ttl = Ipv4Header::decrement_ttl_in_place(&mut wire).expect("ttl > 0");
        prop_assert_eq!(new_ttl, h.ttl - 1);
        // parse() validates the checksum, so success proves the
        // incremental update (RFC 1624) stayed correct.
        let parsed = Ipv4Header::parse(&wire).expect("checksum still valid");
        prop_assert_eq!(parsed.ttl, h.ttl - 1);
    }

    #[test]
    fn dscp_rewrite_preserves_checksum_validity(h in ipv4_strategy(), dscp in 0u8..64) {
        let mut wire = Vec::new();
        h.write(&mut wire);
        wire.resize(h.total_len as usize, 0);
        Ipv4Header::set_dscp_in_place(&mut wire, dscp).expect("long enough");
        let parsed = Ipv4Header::parse(&wire).expect("checksum still valid");
        prop_assert_eq!(parsed.dscp, dscp);
        prop_assert_eq!(parsed.ecn, h.ecn, "ECN bits untouched");
    }

    #[test]
    fn repeated_mutations_keep_checksum_valid(
        h in ipv4_strategy(),
        ops in proptest::collection::vec(any::<Option<u8>>(), 1..16),
    ) {
        prop_assume!(h.ttl as usize > ops.len());
        let mut wire = Vec::new();
        h.write(&mut wire);
        wire.resize(h.total_len as usize, 0);
        for op in ops {
            match op {
                Some(dscp) => {
                    Ipv4Header::set_dscp_in_place(&mut wire, dscp & 0x3f).expect("ok");
                }
                None => {
                    Ipv4Header::decrement_ttl_in_place(&mut wire).expect("ttl headroom");
                }
            }
            prop_assert!(Ipv4Header::parse(&wire).is_ok(), "checksum drifted");
        }
    }

    #[test]
    fn ipv4_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&bytes);
        let _ = Ipv6Header::parse(&bytes);
        let _ = UdpHeader::parse(&bytes);
        let _ = EthernetHeader::parse(&bytes);
    }

    #[test]
    fn packet_accessors_never_panic_on_junk(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let pkt = Packet::from_slice(&bytes);
        let _ = pkt.ipv4();
        let _ = pkt.ipv6();
        let _ = pkt.udp_v4();
        let _ = pkt.tcp_v4();
        let _ = pkt.udp_payload_v4();
        let _ = pkt.ethernet();
    }

    #[test]
    fn udp_builder_produces_parseable_packets(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt = PacketBuilder::udp_v4(
            &std::net::Ipv4Addr::from(src).to_string(),
            &std::net::Ipv4Addr::from(dst).to_string(),
            sport,
            dport,
        )
        .payload(&payload)
        .build();
        let ip = pkt.ipv4().expect("valid v4 header");
        prop_assert_eq!(ip.src, std::net::Ipv4Addr::from(src));
        prop_assert_eq!(ip.dst, std::net::Ipv4Addr::from(dst));
        let udp = pkt.udp_v4().expect("valid udp header");
        prop_assert_eq!(udp.src_port, sport);
        prop_assert_eq!(udp.dst_port, dport);
        prop_assert_eq!(pkt.udp_payload_v4().expect("payload"), &payload[..]);
    }

    #[test]
    fn ethernet_roundtrip(
        dst in any::<[u8; 6]>(),
        src in any::<[u8; 6]>(),
        ethertype in prop_oneof![Just(0x0800u16), Just(0x86DDu16), Just(0x0806u16)],
    ) {
        let h = EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(ethertype),
        };
        let mut wire = Vec::new();
        h.write(&mut wire);
        let parsed = EthernetHeader::parse(&wire).expect("own output parses");
        prop_assert_eq!(parsed.dst, h.dst);
        prop_assert_eq!(parsed.src, h.src);
        prop_assert_eq!(parsed.ethertype.to_u16(), ethertype);
    }
}
