//! Property tests for the flow sketches: the count-min `(ε, δ)`
//! estimate bound and Space-Saving's deterministic top-k guarantees,
//! checked against exact per-flow truth over arbitrary workloads.
//!
//! Count-min (Cormode & Muthukrishnan): estimates never under-count,
//! and with `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉` each query over-counts
//! by more than `ε·N` with probability at most `δ`. The second half is
//! probabilistic, so it is asserted as a *violation budget* over the
//! distinct keys (`max(1, ⌈2·δ·distinct⌉)` — twice the expectation)
//! rather than per query.
//!
//! Space-Saving (Metwally et al.) is deterministic, so its guarantees
//! are asserted exactly: for total weight `N` and capacity `k`, every
//! flow with true weight `> N/k` is monitored; every reported counter
//! satisfies `true ≤ weight ≤ true + error` with `error ≤ N/k`; and
//! the cross-shard merge is order-independent.

use std::collections::HashMap;

use proptest::prelude::*;

use netkit_packet::sketch::{CountMinSketch, HeavyHitter, SpaceSaving};

/// `(key index, weight)` — indices into a small universe so flows
/// repeat, weights spread over three orders of magnitude.
fn ops_strategy(universe: usize, len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..universe, 1u64..=1000), 1..len)
}

/// Spread indices over the hash space — adjacent integers would share
/// high bits and understate collision behaviour.
fn key(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn truth(ops: &[(usize, u64)]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &(i, w) in ops {
        *t.entry(key(i)).or_insert(0) += w;
    }
    t
}

proptest! {
    #[test]
    fn count_min_estimates_hold_the_epsilon_delta_bound(
        ops in ops_strategy(300, 400),
    ) {
        let sketch = CountMinSketch::with_error(0.01, 0.01);
        for &(i, w) in &ops {
            sketch.record(key(i), w);
        }
        let truth = truth(&ops);
        let n: u64 = truth.values().sum();
        prop_assert_eq!(sketch.total(), n, "total is exact, not estimated");

        // Hard half: never an under-count, for every key.
        for (&k, &t) in &truth {
            prop_assert!(
                sketch.estimate(k) >= t,
                "under-count: key {k} true {t} estimated {}",
                sketch.estimate(k)
            );
        }

        // Probabilistic half: over-counts past ε·N are δ-rare. Budget
        // twice the expected violation count, floor 1.
        let slack = (sketch.epsilon() * n as f64).ceil() as u64;
        let violations = truth
            .iter()
            .filter(|(&k, &t)| sketch.estimate(k) > t + slack)
            .count();
        let budget = ((2.0 * sketch.delta() * truth.len() as f64).ceil() as usize).max(1);
        prop_assert!(
            violations <= budget,
            "{violations} of {} keys exceed true + ε·N (budget {budget})",
            truth.len()
        );
    }

    #[test]
    fn space_saving_monitors_every_hitter_within_its_error_bound(
        ops in ops_strategy(64, 300),
        capacity in 4usize..=32,
    ) {
        let ss = SpaceSaving::new(capacity);
        for &(i, w) in &ops {
            ss.record(key(i), w);
        }
        let truth = truth(&ops);
        let n: u64 = truth.values().sum();
        prop_assert_eq!(ss.total(), n);

        let top = ss.top();
        prop_assert!(top.len() <= capacity);
        let reported: HashMap<u64, HeavyHitter> =
            top.iter().map(|h| (h.hash, *h)).collect();

        // Containment: every flow heavier than N/k is monitored.
        for (&k, &t) in &truth {
            if t > ss.threshold() {
                prop_assert!(
                    reported.contains_key(&k),
                    "flow {k} (true {t} > threshold {}) not monitored",
                    ss.threshold()
                );
            }
        }

        // Every reported counter brackets its truth:
        // true ≤ weight ≤ true + error, with error ≤ N/k.
        for h in &top {
            let t = truth.get(&h.hash).copied().unwrap_or(0);
            prop_assert!(h.weight >= t, "under-count on {}", h.hash);
            prop_assert!(
                h.weight <= t + h.error,
                "flow {}: weight {} exceeds true {t} + error {}",
                h.hash, h.weight, h.error
            );
            prop_assert!(h.error <= n / capacity as u64);
        }

        // Heaviest-first with deterministic tie-break.
        for pair in top.windows(2) {
            prop_assert!(
                (pair[0].weight, pair[1].hash) > (pair[1].weight, pair[0].hash)
                    || pair[0].weight > pair[1].weight
            );
        }
    }

    #[test]
    fn merge_is_order_independent(
        shards in proptest::collection::vec(ops_strategy(48, 120), 2..5),
        capacity in 4usize..=32,
    ) {
        let tops: Vec<Vec<HeavyHitter>> = shards
            .iter()
            .map(|ops| {
                let ss = SpaceSaving::new(capacity);
                for &(i, w) in ops {
                    ss.record(key(i), w);
                }
                ss.top()
            })
            .collect();
        let forward = SpaceSaving::merge(capacity, &tops);
        let reversed: Vec<Vec<HeavyHitter>> = tops.iter().rev().cloned().collect();
        prop_assert_eq!(
            &forward,
            &SpaceSaving::merge(capacity, &reversed),
            "merge must not depend on shard order"
        );
        prop_assert!(forward.len() <= capacity);
        // Per-hash weights add across shards.
        for h in &forward {
            let summed: u64 = tops
                .iter()
                .flatten()
                .filter(|e| e.hash == h.hash)
                .map(|e| e.weight)
                .sum();
            prop_assert_eq!(h.weight, summed);
        }
    }
}
