//! Property tests for RSS flow→shard mapping and batch partitioning.
//!
//! The sharded dataplane's correctness rests on three properties proved
//! here: (1) the flow→shard map is a pure function of the 5-tuple and
//! the shard count — same flow, same shard, always; (2)
//! `partition_by_shard` is a permutation-free split: nothing lost,
//! nothing duplicated, per-flow order intact, every packet on its
//! flow's shard; (3) the zero-copy steering path (`shard_split` views
//! and its owned `into_shard_batches` escape hatch, pooled or not) is
//! observationally identical — packets, order, labels — to the legacy
//! re-materialising partition, reimplemented verbatim below as the
//! reference.

use proptest::prelude::*;

use netkit_packet::batch::{BatchPool, PacketBatch};
use netkit_packet::flow::{shard_of, FlowKey};
use netkit_packet::packet::{Packet, PacketBuilder};

#[derive(Clone, Debug)]
struct FlowSpec {
    src_octet: u8,
    dst_octet: u8,
    src_port: u16,
    dst_port: u16,
}

fn flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (any::<u8>(), any::<u8>(), 1u16..=65535, 1u16..=65535).prop_map(
        |(src_octet, dst_octet, src_port, dst_port)| FlowSpec {
            src_octet,
            dst_octet,
            src_port,
            dst_port,
        },
    )
}

fn build(spec: &FlowSpec, seq: u16) -> Packet {
    PacketBuilder::udp_v4(
        &format!("10.0.0.{}", spec.src_octet),
        &format!("10.0.1.{}", spec.dst_octet),
        spec.src_port,
        spec.dst_port,
    )
    .payload(&seq.to_be_bytes())
    .build()
}

/// The PR 2 re-materialising partition, preserved verbatim as the
/// behavioural reference: per-packet `shard_of`, per-shard `push`, and
/// per-packet label re-interning.
fn reference_partition(batch: PacketBatch, shards: usize) -> Vec<PacketBatch> {
    let shards = shards.max(1);
    if shards == 1 {
        return vec![batch];
    }
    let labelled: Vec<Option<String>> = (0..batch.len())
        .map(|i| batch.label_of(i).map(str::to_owned))
        .collect();
    let mut out: Vec<PacketBatch> = (0..shards).map(|_| PacketBatch::new()).collect();
    for (idx, pkt) in batch.into_packets().into_iter().enumerate() {
        let shard = shard_of(&pkt, shards);
        let target = &mut out[shard];
        target.push(pkt);
        if let Some(label) = &labelled[idx] {
            let id = target.intern(label);
            target.set_label(target.len() - 1, id);
        }
    }
    out
}

/// `(frame bytes, label)` fingerprints per shard — the observable
/// content every split variant must agree on.
fn fingerprint(parts: &[PacketBatch]) -> Vec<Vec<(Vec<u8>, Option<String>)>> {
    parts
        .iter()
        .map(|p| {
            (0..p.len())
                .map(|i| {
                    (
                        p.packets()[i].data().to_vec(),
                        p.label_of(i).map(str::to_owned),
                    )
                })
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn zero_copy_split_equals_owned_equals_reference(
        flows in proptest::collection::vec(flow_strategy(), 1..10),
        picks in proptest::collection::vec((0usize..10, 0usize..4), 0..96),
        shards in 0usize..=6,
    ) {
        // Build four identical batches: reference, views, owned, pooled.
        // `picks` interleaves flows and assigns each packet one of three
        // labels (or none).
        let labels = ["voice", "bulk", "scavenger"];
        let mut batches: Vec<PacketBatch> = (0..4).map(|_| PacketBatch::new()).collect();
        for (i, (flow_idx, label_idx)) in picks.iter().enumerate() {
            let spec = &flows[flow_idx % flows.len()];
            for b in &mut batches {
                let pkt = build(spec, i as u16);
                b.push(pkt);
                if *label_idx < labels.len() {
                    let id = b.intern(labels[*label_idx]);
                    b.set_label(b.len() - 1, id);
                }
            }
        }
        let [for_reference, for_views, for_owned, for_pooled]: [PacketBatch; 4] =
            batches.try_into().ok().unwrap();

        let reference = fingerprint(&reference_partition(for_reference, shards));

        // 1. Borrowing views: same shards, same order, same labels —
        //    without moving a single packet.
        let split = for_views.shard_split(shards);
        prop_assert_eq!(split.shards(), shards.max(1));
        prop_assert_eq!(split.len(), picks.len());
        let viewed: Vec<Vec<(Vec<u8>, Option<String>)>> = split
            .views()
            .map(|v| {
                (0..v.len())
                    .map(|i| (v.get(i).data().to_vec(), v.label_of(i).map(str::to_owned)))
                    .collect()
            })
            .collect();
        prop_assert_eq!(&viewed, &reference, "views ≡ reference");
        // View indices are a permutation of the input positions.
        let mut all_indices: Vec<u32> =
            split.views().flat_map(|v| v.indices().to_vec()).collect();
        all_indices.sort_unstable();
        prop_assert_eq!(all_indices, (0..picks.len() as u32).collect::<Vec<_>>());

        // 2. Owned escape hatch.
        let owned = for_owned.shard_split(shards).into_shard_batches();
        prop_assert_eq!(&fingerprint(&owned), &reference, "owned ≡ reference");

        // 3. Pool-leased containers behave identically and recycle.
        let pool = BatchPool::new(32, 0, 16);
        let pooled = for_pooled.shard_split(shards).into_shard_batches_pooled(&pool);
        prop_assert_eq!(&fingerprint(&pooled), &reference, "pooled ≡ reference");
        drop(pooled);
        prop_assert_eq!(
            pool.stats().recycled + pool.stats().discarded,
            shards.max(1) as u64
        );

        // 4. Per-flow order within each shard survives every variant
        //    (reference already proves itself against the input in
        //    `partition_loses_and_duplicates_nothing_and_keeps_flow_order`;
        //    equality above extends it to the zero-copy paths).
    }

    #[test]
    fn flow_to_shard_mapping_is_stable(
        spec in flow_strategy(),
        shards in 1usize..=8,
    ) {
        let a = build(&spec, 0);
        let b = build(&spec, 1); // same flow, different payload
        let ka = FlowKey::from_packet(&a).unwrap();
        let kb = FlowKey::from_packet(&b).unwrap();
        prop_assert_eq!(ka, kb);
        prop_assert_eq!(ka.rss_hash(), kb.rss_hash());
        prop_assert_eq!(ka.shard_for(shards), kb.shard_for(shards));
        prop_assert!(ka.shard_for(shards) < shards);
        // Recomputing from a rebuilt key gives the same answer (no
        // hidden state).
        let rebuilt = FlowKey {
            src: ka.src,
            dst: ka.dst,
            protocol: ka.protocol,
            src_port: ka.src_port,
            dst_port: ka.dst_port,
        };
        prop_assert_eq!(rebuilt.shard_for(shards), ka.shard_for(shards));
    }

    #[test]
    fn partition_loses_and_duplicates_nothing_and_keeps_flow_order(
        flows in proptest::collection::vec(flow_strategy(), 1..12),
        picks in proptest::collection::vec(0usize..12, 0..128),
        shards in 1usize..=6,
    ) {
        // A packet stream interleaving the flows in arbitrary order;
        // the payload carries a global sequence number.
        let mut batch = PacketBatch::new();
        let mut input: Vec<(FlowKey, Vec<u8>)> = Vec::new();
        for (i, flow_idx) in picks.iter().enumerate() {
            let spec = &flows[flow_idx % flows.len()];
            let pkt = build(spec, i as u16);
            input.push((FlowKey::from_packet(&pkt).unwrap(), pkt.data().to_vec()));
            batch.push(pkt);
        }

        let parts = batch.partition_by_shard(shards);
        prop_assert_eq!(parts.len(), shards.max(1));

        // 1. Multiset equality: concatenating the sub-batches yields a
        //    permutation of the input (sequence payloads are unique, so
        //    sorted fingerprints suffice).
        let mut got: Vec<Vec<u8>> = parts
            .iter()
            .flat_map(|p| p.iter().map(|pkt| pkt.data().to_vec()))
            .collect();
        let mut expect: Vec<Vec<u8>> = input.iter().map(|(_, d)| d.clone()).collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect, "no packet lost or duplicated");

        // 2. Placement: every packet sits on its flow's shard.
        for (shard, part) in parts.iter().enumerate() {
            for pkt in part.iter() {
                let key = FlowKey::from_packet(pkt).unwrap();
                prop_assert_eq!(key.shard_for(shards), shard);
            }
        }

        // 3. Per-flow order: within each flow, the shard-local sequence
        //    equals the input sequence.
        for spec in &flows {
            let key = FlowKey::from_packet(&build(spec, 0)).unwrap();
            let expect_seq: Vec<Vec<u8>> = input
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, d)| d.clone())
                .collect();
            let shard = key.shard_for(shards);
            let got_seq: Vec<Vec<u8>> = parts[shard]
                .iter()
                .filter(|p| FlowKey::from_packet(p).unwrap() == key)
                .map(|p| p.data().to_vec())
                .collect();
            prop_assert_eq!(got_seq, expect_seq, "flow order preserved");
        }
    }

    /// Table-driven steering: for ANY bucket → shard table, the split
    /// follows the table exactly, loses/duplicates nothing, and keeps
    /// per-flow order — and the identity table reproduces the static
    /// split bit-for-bit.
    #[test]
    fn table_split_follows_any_map_without_loss(
        flows in proptest::collection::vec(flow_strategy(), 1..12),
        picks in proptest::collection::vec(0usize..12, 0..96),
        shards in 2usize..=6,
        assignments in proptest::collection::vec(0usize..6, 12),
    ) {
        use netkit_packet::steer::BucketMap;

        // A random table: each flow's bucket re-homed by the seed
        // (other buckets keep identity).
        let mut map = BucketMap::identity(shards);
        for (i, spec) in flows.iter().enumerate() {
            let key = FlowKey::from_packet(&build(spec, 0)).unwrap();
            map.set(key.bucket(), assignments[i] % shards);
        }

        let mut batch = PacketBatch::new();
        let mut ident = PacketBatch::new();
        let mut input: Vec<(FlowKey, Vec<u8>)> = Vec::new();
        for (i, flow_idx) in picks.iter().enumerate() {
            let spec = &flows[flow_idx % flows.len()];
            let pkt = build(spec, i as u16);
            input.push((FlowKey::from_packet(&pkt).unwrap(), pkt.data().to_vec()));
            ident.push(build(spec, i as u16));
            batch.push(pkt);
        }

        let parts = batch.shard_split_with(&map).into_shard_batches();
        prop_assert_eq!(parts.len(), shards);

        // Multiset equality.
        let mut got: Vec<Vec<u8>> = parts
            .iter()
            .flat_map(|p| p.iter().map(|pkt| pkt.data().to_vec()))
            .collect();
        let mut expect: Vec<Vec<u8>> = input.iter().map(|(_, d)| d.clone()).collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect, "no packet lost or duplicated");

        // Placement follows the table; per-flow order survives.
        for (shard, part) in parts.iter().enumerate() {
            for pkt in part.iter() {
                let key = FlowKey::from_packet(pkt).unwrap();
                prop_assert_eq!(map.shard_of_bucket(key.bucket()), shard);
            }
        }
        for spec in &flows {
            let key = FlowKey::from_packet(&build(spec, 0)).unwrap();
            let expect_seq: Vec<Vec<u8>> = input
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, d)| d.clone())
                .collect();
            let got_seq: Vec<Vec<u8>> = parts[map.shard_of_bucket(key.bucket())]
                .iter()
                .filter(|p| FlowKey::from_packet(p).unwrap() == key)
                .map(|p| p.data().to_vec())
                .collect();
            prop_assert_eq!(got_seq, expect_seq, "flow order preserved under the table");
        }

        // Identity table ≡ static split.
        let via_identity = ident.shard_split_with(&BucketMap::identity(shards));
        let mut statics = PacketBatch::new();
        for (i, flow_idx) in picks.iter().enumerate() {
            statics.push(build(&flows[flow_idx % flows.len()], i as u16));
        }
        let plain = statics.shard_split(shards);
        for (a, b) in via_identity.views().zip(plain.views()) {
            prop_assert_eq!(a.indices(), b.indices(), "identity table ≡ hash % n");
        }
    }
}
