//! Property tests for RSS flow→shard mapping and batch partitioning.
//!
//! The sharded dataplane's correctness rests on two properties proved
//! here: (1) the flow→shard map is a pure function of the 5-tuple and
//! the shard count — same flow, same shard, always; (2)
//! `partition_by_shard` is a permutation-free split: nothing lost,
//! nothing duplicated, per-flow order intact, every packet on its
//! flow's shard.

use proptest::prelude::*;

use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::{Packet, PacketBuilder};

#[derive(Clone, Debug)]
struct FlowSpec {
    src_octet: u8,
    dst_octet: u8,
    src_port: u16,
    dst_port: u16,
}

fn flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (any::<u8>(), any::<u8>(), 1u16..=65535, 1u16..=65535).prop_map(
        |(src_octet, dst_octet, src_port, dst_port)| FlowSpec {
            src_octet,
            dst_octet,
            src_port,
            dst_port,
        },
    )
}

fn build(spec: &FlowSpec, seq: u16) -> Packet {
    PacketBuilder::udp_v4(
        &format!("10.0.0.{}", spec.src_octet),
        &format!("10.0.1.{}", spec.dst_octet),
        spec.src_port,
        spec.dst_port,
    )
    .payload(&seq.to_be_bytes())
    .build()
}

proptest! {
    #[test]
    fn flow_to_shard_mapping_is_stable(
        spec in flow_strategy(),
        shards in 1usize..=8,
    ) {
        let a = build(&spec, 0);
        let b = build(&spec, 1); // same flow, different payload
        let ka = FlowKey::from_packet(&a).unwrap();
        let kb = FlowKey::from_packet(&b).unwrap();
        prop_assert_eq!(ka, kb);
        prop_assert_eq!(ka.rss_hash(), kb.rss_hash());
        prop_assert_eq!(ka.shard_for(shards), kb.shard_for(shards));
        prop_assert!(ka.shard_for(shards) < shards);
        // Recomputing from a rebuilt key gives the same answer (no
        // hidden state).
        let rebuilt = FlowKey {
            src: ka.src,
            dst: ka.dst,
            protocol: ka.protocol,
            src_port: ka.src_port,
            dst_port: ka.dst_port,
        };
        prop_assert_eq!(rebuilt.shard_for(shards), ka.shard_for(shards));
    }

    #[test]
    fn partition_loses_and_duplicates_nothing_and_keeps_flow_order(
        flows in proptest::collection::vec(flow_strategy(), 1..12),
        picks in proptest::collection::vec(0usize..12, 0..128),
        shards in 1usize..=6,
    ) {
        // A packet stream interleaving the flows in arbitrary order;
        // the payload carries a global sequence number.
        let mut batch = PacketBatch::new();
        let mut input: Vec<(FlowKey, Vec<u8>)> = Vec::new();
        for (i, flow_idx) in picks.iter().enumerate() {
            let spec = &flows[flow_idx % flows.len()];
            let pkt = build(spec, i as u16);
            input.push((FlowKey::from_packet(&pkt).unwrap(), pkt.data().to_vec()));
            batch.push(pkt);
        }

        let parts = batch.partition_by_shard(shards);
        prop_assert_eq!(parts.len(), shards.max(1));

        // 1. Multiset equality: concatenating the sub-batches yields a
        //    permutation of the input (sequence payloads are unique, so
        //    sorted fingerprints suffice).
        let mut got: Vec<Vec<u8>> = parts
            .iter()
            .flat_map(|p| p.iter().map(|pkt| pkt.data().to_vec()))
            .collect();
        let mut expect: Vec<Vec<u8>> = input.iter().map(|(_, d)| d.clone()).collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect, "no packet lost or duplicated");

        // 2. Placement: every packet sits on its flow's shard.
        for (shard, part) in parts.iter().enumerate() {
            for pkt in part.iter() {
                let key = FlowKey::from_packet(pkt).unwrap();
                prop_assert_eq!(key.shard_for(shards), shard);
            }
        }

        // 3. Per-flow order: within each flow, the shard-local sequence
        //    equals the input sequence.
        for spec in &flows {
            let key = FlowKey::from_packet(&build(spec, 0)).unwrap();
            let expect_seq: Vec<Vec<u8>> = input
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, d)| d.clone())
                .collect();
            let shard = key.shard_for(shards);
            let got_seq: Vec<Vec<u8>> = parts[shard]
                .iter()
                .filter(|p| FlowKey::from_packet(p).unwrap() == key)
                .map(|p| p.data().to_vec())
                .collect();
            prop_assert_eq!(got_seq, expect_seq, "flow order preserved");
        }
    }
}
