//! Supervised periodic background tasks — the stratum-1 primitive
//! reflective control loops are built on.
//!
//! The paper's reflective architecture promises loops that *inspect*,
//! *decide*, and *adapt* without an external operator. The dataplane
//! side of that loop already exists (meters, policies, quiesced
//! migrations); what stratum 1 owes the control plane is a way to
//! **run the loop** — a background task that ticks on a wall-clock
//! interval, survives a panicking tick (supervision), and backs its
//! tick rate off when consecutive ticks produce nothing, so an idle
//! control loop costs asymptotically nothing.
//!
//! [`PeriodicTask`] is that primitive. It is deliberately dumb: the
//! interesting state machine (what to inspect, when to adapt) lives in
//! the closure; the task owns only the cadence. Three knobs
//! ([`PeriodicSpec`]): the base interval, a backoff factor applied
//! after each [`TickOutcome::Idle`] tick, and a cap the backed-off
//! interval saturates at. A [`TickOutcome::Progress`] tick snaps the
//! interval back to base — the loop reacts quickly while there is work
//! and goes quiet when there is none.
//!
//! Supervision: a tick that panics is caught, counted
//! ([`PeriodicTask::panics`]), and treated as an idle tick; the loop
//! itself never dies to a faulty tick, mirroring how a dead dataplane
//! worker never wedges its pool.
//!
//! This is *real* time, not [`crate::time::SimTime`]: the periodic
//! task drives threaded runtimes (worker pools are OS threads). The
//! deterministic simulator does not use it — sim control loops tick
//! from the event loop instead, which is why the router's controller
//! separates its decision core from this cadence primitive.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//! use netkit_kernel::task::{PeriodicSpec, PeriodicTask, TickOutcome};
//!
//! let hits = Arc::new(AtomicU64::new(0));
//! let seen = Arc::clone(&hits);
//! let task = PeriodicTask::spawn(
//!     "doc-loop",
//!     PeriodicSpec::every(Duration::from_millis(1)),
//!     move || {
//!         seen.fetch_add(1, Ordering::Relaxed);
//!         TickOutcome::Progress
//!     },
//! );
//! while task.ticks() == 0 {
//!     std::thread::yield_now();
//! }
//! task.stop();
//! assert!(hits.load(Ordering::Relaxed) >= 1);
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// What one tick of a periodic task reports back to the cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickOutcome {
    /// The tick did useful work: reset the interval to base.
    Progress,
    /// The tick found nothing to do: back the interval off.
    Idle,
    /// The task is finished: exit the loop.
    Stop,
}

/// Cadence of a [`PeriodicTask`]: base interval plus idle backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicSpec {
    /// Interval between ticks while the task reports
    /// [`TickOutcome::Progress`]. Clamped to ≥ 1µs.
    pub interval: Duration,
    /// Cap the backed-off interval saturates at. Clamped to ≥
    /// `interval`.
    pub max_interval: Duration,
    /// Multiplier applied to the current interval after each
    /// [`TickOutcome::Idle`] tick. Clamped to ≥ 1.0 (1.0 = no
    /// backoff).
    pub backoff: f64,
}

impl PeriodicSpec {
    /// A fixed cadence: tick every `interval`, no backoff.
    pub fn every(interval: Duration) -> Self {
        Self {
            interval,
            max_interval: interval,
            backoff: 1.0,
        }
    }

    /// Enables idle backoff (builder-style): after each idle tick the
    /// interval multiplies by `factor`, saturating at `max`.
    pub fn with_backoff(mut self, factor: f64, max: Duration) -> Self {
        self.backoff = factor;
        self.max_interval = max;
        self
    }

    fn normalised(self) -> Self {
        let interval = self.interval.max(Duration::from_micros(1));
        Self {
            interval,
            max_interval: self.max_interval.max(interval),
            backoff: if self.backoff.is_finite() {
                self.backoff.max(1.0)
            } else {
                1.0
            },
        }
    }
}

struct TaskShared {
    /// Stop flag + wakeup so `stop()` interrupts a sleeping task
    /// promptly instead of waiting out a (possibly backed-off)
    /// interval.
    stop: Mutex<bool>,
    wake: Condvar,
    ticks: AtomicU64,
    progress: AtomicU64,
    idle: AtomicU64,
    panics: AtomicU64,
    interval_nanos: AtomicU64,
    running: AtomicBool,
    /// Set by `nudge()`: the sleeping loop cuts its wait short and
    /// ticks now instead of waiting out a backed-off interval.
    nudged: AtomicBool,
}

/// A supervised background thread ticking a closure on an adaptive
/// interval. See the module docs for semantics and an example.
pub struct PeriodicTask {
    shared: Arc<TaskShared>,
    handle: Option<JoinHandle<()>>,
    name: String,
}

impl PeriodicTask {
    /// Spawns the task. The first tick fires one `spec.interval` after
    /// the spawn (not immediately); `tick` runs on the task's own
    /// thread, named `name`.
    pub fn spawn<F>(name: impl Into<String>, spec: PeriodicSpec, mut tick: F) -> Self
    where
        F: FnMut() -> TickOutcome + Send + 'static,
    {
        let name = name.into();
        let spec = spec.normalised();
        let shared = Arc::new(TaskShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            ticks: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            interval_nanos: AtomicU64::new(spec.interval.as_nanos() as u64),
            running: AtomicBool::new(true),
            nudged: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("netkit-periodic-{name}"))
            .spawn(move || {
                let mut current = spec.interval;
                loop {
                    // Sleep out the interval, but wake immediately on
                    // stop.
                    {
                        let mut stopped = worker.stop.lock().unwrap_or_else(|e| e.into_inner());
                        let mut left = current;
                        while !*stopped && !left.is_zero() {
                            if worker.nudged.swap(false, Ordering::SeqCst) {
                                break; // tick now, don't wait out backoff
                            }
                            let before = std::time::Instant::now();
                            let (guard, timeout) = worker
                                .wake
                                .wait_timeout(stopped, left)
                                .unwrap_or_else(|e| e.into_inner());
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                            left = left.saturating_sub(before.elapsed());
                        }
                        if *stopped {
                            break;
                        }
                    }
                    worker.ticks.fetch_add(1, Ordering::Relaxed);
                    // Supervision: a panicking tick is counted and
                    // treated as idle; the loop survives.
                    let outcome = catch_unwind(AssertUnwindSafe(&mut tick)).unwrap_or_else(|_| {
                        worker.panics.fetch_add(1, Ordering::Relaxed);
                        TickOutcome::Idle
                    });
                    match outcome {
                        TickOutcome::Progress => {
                            worker.progress.fetch_add(1, Ordering::Relaxed);
                            current = spec.interval;
                        }
                        TickOutcome::Idle => {
                            worker.idle.fetch_add(1, Ordering::Relaxed);
                            current = Duration::from_secs_f64(
                                (current.as_secs_f64() * spec.backoff)
                                    .min(spec.max_interval.as_secs_f64()),
                            );
                        }
                        TickOutcome::Stop => break,
                    }
                    worker
                        .interval_nanos
                        .store(current.as_nanos() as u64, Ordering::Relaxed);
                }
                worker.running.store(false, Ordering::Release);
            })
            .expect("spawn periodic task thread");
        Self {
            shared,
            handle: Some(handle),
            name,
        }
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ticks fired so far (including panicked ones).
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Ticks that reported [`TickOutcome::Progress`].
    pub fn progress_ticks(&self) -> u64 {
        self.shared.progress.load(Ordering::Relaxed)
    }

    /// Ticks that reported [`TickOutcome::Idle`] — panicked ticks are
    /// counted here too (supervision treats them as idle), exactly
    /// once, so `progress_ticks() + idle_ticks() == ticks()` for a
    /// finished loop.
    pub fn idle_ticks(&self) -> u64 {
        self.shared.idle.load(Ordering::Relaxed)
    }

    /// Ticks whose closure panicked (the task survived each).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// The interval the *next* tick will wait — base after progress,
    /// multiplied towards the cap by idle ticks.
    pub fn current_interval(&self) -> Duration {
        Duration::from_nanos(self.shared.interval_nanos.load(Ordering::Relaxed))
    }

    /// False once the loop has exited (stopped, or the tick returned
    /// [`TickOutcome::Stop`]).
    pub fn is_running(&self) -> bool {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Wakes a sleeping task to tick **now** instead of waiting out a
    /// (possibly backed-off) interval. The cadence itself is untouched:
    /// the nudged tick's outcome decides the next interval as usual
    /// (`Progress` snaps to base). Use when an external observer
    /// already knows there is work — e.g. a caller that just saw a
    /// worker die nudges the control loop so the health turn runs
    /// promptly even deep into idle backoff. Idempotent; a nudge while
    /// mid-tick makes the next sleep a no-op rather than stacking.
    pub fn nudge(&self) {
        self.shared.nudged.store(true, Ordering::SeqCst);
        let _stopped = self.shared.stop.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.wake.notify_all();
    }

    /// Signals the task to stop and joins its thread. A sleeping task
    /// wakes immediately; a mid-tick task finishes the tick first.
    pub fn stop(mut self) {
        self.halt();
    }

    /// The borrowing form of [`Self::stop`]: signals and joins, but
    /// keeps the handle alive so the final counters can be read
    /// *after* the last tick has provably completed (nothing fires
    /// once this returns). Idempotent; `Drop` calls it too.
    pub fn halt(&mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        {
            let mut stopped = self.shared.stop.lock().unwrap_or_else(|e| e.into_inner());
            *stopped = true;
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PeriodicTask {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

impl fmt::Debug for PeriodicTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PeriodicTask(`{}`, {} ticks, next in {:?}{})",
            self.name,
            self.ticks(),
            self.current_interval(),
            if self.is_running() { "" } else { ", stopped" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// Spins until `cond` holds or ~5s elapse (generous for CI).
    fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        cond()
    }

    #[test]
    fn ticks_fire_and_stop_joins_promptly() {
        let count = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&count);
        let task = PeriodicTask::spawn(
            "fires",
            PeriodicSpec::every(Duration::from_millis(1)),
            move || {
                seen.fetch_add(1, Ordering::Relaxed);
                TickOutcome::Progress
            },
        );
        assert!(wait_for(|| task.ticks() >= 3), "task must tick");
        assert!(task.is_running());
        assert_eq!(task.panics(), 0);
        let before = Instant::now();
        task.stop();
        // A 1ms-interval task joins far inside this bound; the bound
        // exists to catch a stop that waits out backoff intervals.
        assert!(before.elapsed() < Duration::from_secs(2));
        assert!(count.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn idle_ticks_back_off_and_progress_resets() {
        let progress = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&progress);
        let spec = PeriodicSpec::every(Duration::from_micros(100))
            .with_backoff(8.0, Duration::from_millis(50));
        let task = PeriodicTask::spawn("backoff", spec, move || {
            if flag.load(Ordering::Relaxed) {
                TickOutcome::Progress
            } else {
                TickOutcome::Idle
            }
        });
        assert!(
            wait_for(|| task.current_interval() >= Duration::from_millis(50)),
            "idle ticks must back the interval off to the cap"
        );
        progress.store(true, Ordering::Relaxed);
        assert!(
            wait_for(|| task.current_interval() == Duration::from_micros(100)),
            "a progress tick must snap the interval back to base"
        );
        assert!(task.idle_ticks() > 0);
        assert!(task.progress_ticks() > 0);
        task.stop();
    }

    #[test]
    fn stop_outcome_ends_the_loop() {
        let task = PeriodicTask::spawn(
            "oneshot",
            PeriodicSpec::every(Duration::from_micros(100)),
            || TickOutcome::Stop,
        );
        assert!(wait_for(|| !task.is_running()), "Stop must end the loop");
        assert_eq!(task.ticks(), 1);
        task.stop(); // idempotent on an already-exited loop
    }

    #[test]
    fn panicking_ticks_are_supervised() {
        let task = PeriodicTask::spawn(
            "faulty",
            PeriodicSpec::every(Duration::from_micros(200)),
            || -> TickOutcome { panic!("injected tick fault") },
        );
        assert!(
            wait_for(|| task.panics() >= 2),
            "the loop must survive a panicking tick and keep ticking"
        );
        assert!(task.is_running());
        assert_eq!(task.progress_ticks(), 0);
        task.stop();
    }

    #[test]
    fn nudge_cuts_a_backed_off_sleep_short() {
        let spec = PeriodicSpec::every(Duration::from_micros(100))
            .with_backoff(1000.0, Duration::from_secs(60));
        let task = PeriodicTask::spawn("nudged", spec, || TickOutcome::Idle);
        // Let it back off to the (minute-long) cap.
        assert!(
            wait_for(|| task.current_interval() >= Duration::from_secs(60)),
            "idle ticks must reach the cap"
        );
        let before_ticks = task.ticks();
        let started = Instant::now();
        task.nudge();
        // Without the nudge the next tick is a minute away; with it,
        // the tick fires promptly.
        assert!(
            wait_for(|| task.ticks() > before_ticks),
            "nudge must force a prompt tick"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
        task.stop();
    }

    #[test]
    fn spec_clamps_degenerate_values() {
        let spec = PeriodicSpec {
            interval: Duration::ZERO,
            max_interval: Duration::ZERO,
            backoff: f64::NAN,
        }
        .normalised();
        assert_eq!(spec.interval, Duration::from_micros(1));
        assert_eq!(spec.max_interval, Duration::from_micros(1));
        assert_eq!(spec.backoff, 1.0);
        // And a clamped spec still runs.
        let task = PeriodicTask::spawn("clamped", spec, || TickOutcome::Idle);
        assert!(wait_for(|| task.ticks() >= 1));
        assert!(format!("{task:?}").contains("clamped"));
        task.stop();
    }
}
