//! Sharded run-to-completion worker-pool runtime.
//!
//! The paper's stratum 1 exists to put packet handling "as close to the
//! hardware as possible" — on the IXP1200 that means six parallel
//! microengines, each running its packet pipeline to completion. This
//! module is the host-side analogue: a [`WorkerPool`] of N OS threads,
//! each owning one SPSC work ring (built on the crossbeam channel shim)
//! and one replica of the processing logic, fed by an RSS-style
//! dispatcher that keeps every flow on a single worker (see
//! `netkit_packet::flow::FlowKey::rss_hash`). Run-to-completion means a
//! worker finishes an entire work item (typically a packet batch,
//! through the whole element graph) before looking at its ring again —
//! no cross-thread hand-offs on the fast path, no locks shared between
//! shards.
//!
//! The pool is generic over its work item; the packet dataplane
//! instantiates it with [`ShardJob`], whose [`ShardJob::Range`] variant
//! carries a shard's slice of a *shared* split parent instead of an
//! owned sub-batch — see its docs for how the quiesce and per-flow
//! order invariants are preserved under the shared-parent lifecycle.
//! [`WorkerPool::submit_fanout`] is the matching batched publish: one
//! gate transaction per dispatch instead of one per sub-batch.
//!
//! ## The epoch quiesce protocol
//!
//! Reflective reconfiguration (the architecture meta-model's
//! insert/remove/replace) must apply **atomically across all shards**:
//! a packet must never traverse shard 0's new graph while shard 1 still
//! runs the old one. [`WorkerPool::quiesce`] implements an epoch
//! barrier:
//!
//! 1. the reconfigurer bumps the requested epoch and enqueues a sync
//!    marker on every worker ring — *behind* all previously submitted
//!    work, so in-flight items run to completion first;
//! 2. each worker, on reaching its marker, parks at the gate and
//!    reports arrival;
//! 3. once every worker is parked the reconfigurer runs its closure —
//!    it has exclusive access to all shard state, with zero items
//!    mid-pipeline anywhere;
//! 4. releasing the epoch wakes all workers, which resume draining
//!    their rings.
//!
//! Traffic submitted during the quiesce is *not* dropped: it queues in
//! the rings (backpressure via bounded capacity) and flows as soon as
//! the epoch is released. The window where forwarding pauses is exactly
//! the closure's run time plus one barrier round — the multi-core
//! generalisation of the paper's "brief interruption" during hot swap.
//!
//! ## Quiesce semantics, precisely
//!
//! What [`WorkerPool::quiesce`] guarantees (and what it does not):
//!
//! 1. **Happens-before, per ring.** Every item submitted to a ring
//!    *before* the quiescer enqueued that ring's sync marker runs to
//!    completion before the closure starts. Items submitted *after*
//!    the marker (including from inside the closure) run only after
//!    the epoch is released, in submission order.
//! 2. **Exclusivity.** While the closure runs, every live worker is
//!    parked at a batch boundary; no handler code executes anywhere
//!    in the pool. Multi-step shared-state updates inside the closure
//!    are indivisible from the dataplane's point of view.
//! 3. **No loss.** Nothing in the rings is discarded; the barrier
//!    reorders nothing within any ring (rings are FIFO throughout).
//! 4. **Liveness under faults.** Dead workers (handler panics) are
//!    accounted at the gate; a quiesce never wedges waiting for one,
//!    and `flush` is gated only by *live* shards' in-flight items.
//! 5. **What is NOT guaranteed:** ordering *between* rings. If a
//!    caller moves a traffic class from ring A to ring B (a steering
//!    migration), the caller must ensure A's items drained before B's
//!    start — which is exactly what running the re-steer inside the
//!    closure provides. The sharded router's
//!    `ShardedPipeline::install_bucket_map` composes this with a
//!    steering-table write lock to make bucket migrations loss-free
//!    and per-flow order-preserving; the bucket table itself is owned
//!    by the pipeline (this pool is payload-agnostic and holds no
//!    steering state — only per-shard load meters:
//!    [`WorkerPool::completed`], [`WorkerPool::in_flight_on`],
//!    [`WorkerPool::ring_high_water`]).
//!
//! The barrier-and-meters contract, runnable:
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//! use netkit_kernel::shard::{ShardSpec, WorkerPool};
//!
//! let sum = Arc::new(AtomicU64::new(0));
//! let pool = WorkerPool::start(ShardSpec::new(2), |_shard| {
//!     let sum = Arc::clone(&sum);
//!     Box::new(move |n: u64| {
//!         sum.fetch_add(n, Ordering::Relaxed);
//!     })
//! });
//! pool.submit(0, 1).unwrap();
//! pool.submit(1, 2).unwrap();
//! // Guarantee 1: pre-marker work is complete when the closure runs;
//! // work submitted inside it flows only after release.
//! let seen_at_quiesce = pool.quiesce(|| {
//!     pool.submit(0, 10).unwrap();
//!     sum.load(Ordering::Relaxed)
//! });
//! assert_eq!(seen_at_quiesce, 3);
//! pool.flush();
//! assert_eq!(sum.load(Ordering::Relaxed), 13); // guarantee 3: no loss
//! assert_eq!(pool.epoch(), 1);
//! // Load meters: per-shard completions and ring pressure.
//! assert_eq!(pool.completed(0), Some(2));
//! assert_eq!(pool.in_flight_on(0), Some(0));
//! assert!(pool.ring_high_water(0).unwrap() >= 1);
//! pool.shutdown();
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use netkit_packet::batch::{PacketBatch, SharedShardRange};
use parking_lot::RwLock;

/// Configuration of a sharded dataplane: how many run-to-completion
/// workers and how deep each worker's ring is (in work items).
///
/// The same spec configures the NETKIT sharded pipeline, the sim
/// driver's RSS demux, and the click/monolithic baselines, so
/// multi-core benchmarks compare like-for-like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of worker threads (and SPSC rings). Clamped to ≥ 1.
    pub workers: usize,
    /// Per-worker ring capacity, in work items; submission backpressures
    /// (blocking [`WorkerPool::submit`]) or fails
    /// ([`WorkerPool::try_submit`]) when a ring is full.
    pub ring_capacity: usize,
}

impl ShardSpec {
    /// A spec with `workers` workers and default ring sizing.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ring_capacity: 1024,
        }
    }

    /// The degenerate single-worker spec (scalar-equivalent execution).
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Sets the per-worker ring depth (builder-style).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::single()
    }
}

/// One shard's work handler: consumes items to completion. Created per
/// worker by the factory passed to [`WorkerPool::start`], so each shard
/// owns its state outright (shared-nothing by construction).
pub type ShardHandler<T> = Box<dyn FnMut(T) + Send>;

/// The sharded dataplane's ring descriptor: what one slot of a worker
/// ring names. The [`WorkerPool`] itself stays payload-agnostic — this
/// is the concrete `T` the packet dataplane instantiates it with.
///
/// Two shapes, two hand-off disciplines:
///
/// * [`ShardJob::Batch`] moves an owned batch onto the ring — the
///   multi-queue NIC path, where hardware (or `pump_nic`) already
///   steered the batch to exactly one shard and there is nothing to
///   share.
/// * [`ShardJob::Range`] publishes one shard's slice of a **shared**
///   split parent ([`SharedShardRange`], an `Arc`'d descriptor):
///   the software-dispatch fast path. No packet moves at publish time;
///   the worker gathers its slice on its own core
///   ([`SharedShardRange::take_into`]) and the parent container
///   recycles to its pool when the last shard's refcount drops.
///
/// ### Quiesce and per-flow order, re-proven for shared ranges
///
/// The epoch protocol's guarantees carry over unchanged because a
/// range is one ring item like any other:
///
/// * **Happens-before** — sync markers are enqueued *behind* ranges,
///   so every pre-marker range has been consumed (its packets moved
///   out and run to completion) before the quiesce closure starts; by
///   then every pre-marker split parent has been dropped by its last
///   range and recycled. No shared parent is ever live across an
///   epoch boundary.
/// * **Per-flow order** — a flow maps to one bucket, a bucket to one
///   shard, so all of a flow's packets ride ranges on one ring, in
///   dispatch order (rings are FIFO). Sharing the parent adds no
///   cross-ring path a flow could race itself on.
/// * **Loss accounting** — a range that never reaches its worker
///   (ring full, worker dead) is dropped *as a descriptor*: its
///   packets stay in the shared parent and are freed — pooled frame
///   buffers recycled — when the parent's last handle goes. The
///   rejecting caller counts the range's packets as dropped; nothing
///   leaks and nothing double-frees.
#[derive(Debug)]
pub enum ShardJob {
    /// An owned, pre-steered batch (NIC multi-queue / direct submit).
    Batch(PacketBatch),
    /// One shard's slice of a shared split parent (dispatch fan-out).
    Range(SharedShardRange),
}

impl ShardJob {
    /// Number of packets this job carries.
    pub fn len(&self) -> usize {
        match self {
            ShardJob::Batch(b) => b.len(),
            ShardJob::Range(r) => r.len(),
        }
    }

    /// True when the job carries no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<PacketBatch> for ShardJob {
    fn from(batch: PacketBatch) -> Self {
        ShardJob::Batch(batch)
    }
}

impl From<SharedShardRange> for ShardJob {
    fn from(range: SharedShardRange) -> Self {
        ShardJob::Range(range)
    }
}

/// Why a submission bounced — the classification
/// [`WorkerPool::try_submit_tagged`] reports so callers can tell
/// backpressure (ring pressure, shed load) from faults (a dead worker,
/// whose traffic is a recovery concern) from caller error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitRejection {
    /// The target ring was full: backpressure evidence (tail drop).
    RingFull,
    /// The target worker is dead (handler panic): fault evidence.
    DeadWorker,
    /// The shard index does not exist in this pool.
    OutOfRange,
}

enum Job<T> {
    Work(T),
    Sync(u64),
}

struct GateState {
    /// Last epoch whose quiesce has been released.
    released: u64,
    /// Highest epoch a quiescer has requested.
    requested: u64,
    /// Workers currently parked at the barrier.
    parked: usize,
    /// Per-shard liveness: a dead worker (handler panic) can never park
    /// and will never run its queued items.
    dead: Vec<bool>,
    /// Per-shard work items submitted but not yet run to completion.
    /// Tracked per shard so a dead worker's stranded items cannot wedge
    /// `flush` — only *live* shards' counts gate it.
    in_flight: Vec<usize>,
    /// Per-shard high-water mark of `in_flight` — the ring-occupancy
    /// meter the rebalancer reads to spot a backed-up shard. Reset via
    /// [`WorkerPool::reset_ring_high_water`] to start a new observation
    /// window.
    ring_hwm: Vec<usize>,
}

struct Gate {
    state: Mutex<GateState>,
    /// Workers wait here for the epoch release.
    resume: Condvar,
    /// The quiescer waits here for workers to park.
    arrived: Condvar,
    /// `flush` waits here for live shards to drain.
    drained: Condvar,
}

impl Gate {
    fn new(workers: usize) -> Self {
        Self {
            state: Mutex::new(GateState {
                released: 0,
                requested: 0,
                parked: 0,
                dead: vec![false; workers],
                in_flight: vec![0; workers],
                ring_hwm: vec![0; workers],
            }),
            resume: Condvar::new(),
            arrived: Condvar::new(),
            drained: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserves one in-flight slot on `shard`. Returns `false` —
    /// reserving nothing — when the worker is already marked dead: a
    /// dead worker's ring never drains, so enqueuing would at best
    /// strand the item invisibly and at worst block the producer on a
    /// full ring no consumer will ever relieve.
    fn submit_one(&self, shard: usize) -> bool {
        let mut st = self.lock();
        if st.dead[shard] {
            return false;
        }
        st.in_flight[shard] += 1;
        if st.in_flight[shard] > st.ring_hwm[shard] {
            st.ring_hwm[shard] = st.in_flight[shard];
        }
        true
    }

    fn retire_one(&self, shard: usize) {
        let mut st = self.lock();
        // Saturating: a respawn zeroes a shard's in-flight count while a
        // producer that lost the death race may still deliver (and thus
        // retire) one late item on the fresh ring — that retirement must
        // not underflow the new window's count.
        st.in_flight[shard] = st.in_flight[shard].saturating_sub(1);
        if st.in_flight[shard] == 0 {
            self.drained.notify_all();
        }
    }

    fn park(&self, target: u64) {
        let mut st = self.lock();
        st.parked += 1;
        self.arrived.notify_all();
        while st.released < target {
            st = self.resume.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn mark_dead(&self, shard: usize) {
        let mut st = self.lock();
        st.dead[shard] = true;
        self.arrived.notify_all();
        self.drained.notify_all();
    }
}

impl GateState {
    fn dead_count(&self) -> usize {
        self.dead.iter().filter(|d| **d).count()
    }

    /// Items still owed by workers that can actually deliver them.
    fn live_in_flight(&self) -> usize {
        self.in_flight
            .iter()
            .zip(&self.dead)
            .filter(|(_, dead)| !**dead)
            .map(|(n, _)| *n)
            .sum()
    }
}

/// Decrements the shard's `in_flight` even if the handler panics, so
/// `flush` cannot wedge on a poisoned item.
struct Retire<'a>(&'a Gate, usize);

impl Drop for Retire<'_> {
    fn drop(&mut self) {
        self.0.retire_one(self.1);
    }
}

/// Marks the worker dead on thread exit (normal shutdown or panic) so a
/// pending quiesce is not left waiting for it and its stranded queue
/// items stop gating `flush`.
struct WorkerExit<'a>(&'a Gate, usize);

impl Drop for WorkerExit<'_> {
    fn drop(&mut self) {
        self.0.mark_dead(self.1);
    }
}

/// A pool of run-to-completion worker threads, one SPSC ring each.
///
/// Generic over the work item `T` — the dataplane uses
/// `netkit_packet::batch::PacketBatch`, but the runtime itself is
/// payload-agnostic.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use netkit_kernel::shard::{ShardSpec, WorkerPool};
///
/// let seen = Arc::new(AtomicU64::new(0));
/// let pool = WorkerPool::start(ShardSpec::new(2), |_shard| {
///     let seen = Arc::clone(&seen);
///     Box::new(move |n: u64| {
///         seen.fetch_add(n, Ordering::Relaxed);
///     })
/// });
/// pool.submit(0, 3).unwrap();
/// pool.submit(1, 4).unwrap();
/// pool.flush();
/// assert_eq!(seen.load(Ordering::Relaxed), 7);
/// pool.shutdown();
/// ```
pub struct WorkerPool<T: Send + 'static> {
    /// One ring per shard. The pool keeps **both** endpoints: the
    /// sender feeds the worker, and the receiver clone is what lets
    /// [`Self::respawn`] drain a dead worker's stranded items (the
    /// dead thread's own receiver died with it). Slots are swapped
    /// wholesale on respawn, hence the per-slot lock; the fast path
    /// only ever takes it shared.
    slots: Vec<RwLock<Slot<T>>>,
    handles: parking_lot::Mutex<Vec<Option<JoinHandle<()>>>>,
    gate: Arc<Gate>,
    /// Serialises concurrent quiescers — and respawns, which must not
    /// interleave with an epoch barrier (a fresh worker never saw the
    /// in-flight sync marker and could wedge the quiescer).
    quiesce_serial: Mutex<()>,
    spec: ShardSpec,
    completed: Arc<Vec<AtomicU64>>,
    rejected: AtomicU64,
    respawned: AtomicU64,
}

struct Slot<T> {
    tx: Sender<Job<T>>,
    rx: Receiver<Job<T>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `spec.workers` worker threads. `factory(shard)` is called
    /// once per shard, in shard order, on the calling thread; the
    /// handler it returns moves onto that shard's thread and owns the
    /// shard's state for the pool's lifetime.
    ///
    /// A hand-rolled spec with `workers == 0` (bypassing
    /// [`ShardSpec::new`]'s clamp) is normalised to one worker here, so
    /// "no sharding" and "one shard" are the same pool everywhere —
    /// mirroring `shard_of(_, 0)`, `partition_by_shard(0)`, and the
    /// NIC's queue-count clamp.
    pub fn start<F>(spec: ShardSpec, mut factory: F) -> Self
    where
        F: FnMut(usize) -> ShardHandler<T>,
    {
        let spec = ShardSpec {
            workers: spec.workers.max(1),
            ring_capacity: spec.ring_capacity.max(1),
        };
        let gate = Arc::new(Gate::new(spec.workers));
        let completed = Arc::new(
            (0..spec.workers)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>(),
        );
        let mut slots = Vec::with_capacity(spec.workers);
        let mut handles = Vec::with_capacity(spec.workers);
        for shard in 0..spec.workers {
            let (tx, rx) = bounded::<Job<T>>(spec.ring_capacity);
            let handler = factory(shard);
            handles.push(Some(Self::spawn_worker(
                shard,
                handler,
                rx.clone(),
                Arc::clone(&gate),
                Arc::clone(&completed),
            )));
            slots.push(RwLock::new(Slot { tx, rx }));
        }
        Self {
            slots,
            handles: parking_lot::Mutex::new(handles),
            gate,
            quiesce_serial: Mutex::new(()),
            spec,
            completed,
            rejected: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
        }
    }

    fn spawn_worker(
        shard: usize,
        mut handler: ShardHandler<T>,
        rx: Receiver<Job<T>>,
        gate: Arc<Gate>,
        completed: Arc<Vec<AtomicU64>>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("netkit-shard-{shard}"))
            .spawn(move || {
                let _exit = WorkerExit(&gate, shard);
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Work(item) => {
                            let _retire = Retire(&gate, shard);
                            handler(item);
                            completed[shard].fetch_add(1, Ordering::Relaxed);
                        }
                        Job::Sync(target) => gate.park(target),
                    }
                }
            })
            .expect("spawn worker thread")
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The configuring spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Enqueues `item` on `shard`'s ring, blocking while the ring is
    /// full (backpressure). A worker already marked dead fails fast —
    /// the item comes straight back rather than being stranded on a
    /// ring nothing will drain (or, worse, blocking this producer on a
    /// full ring no consumer will ever relieve).
    ///
    /// # Errors
    ///
    /// Returns the item if `shard` is out of range or the worker died.
    pub fn submit(&self, shard: usize, item: T) -> Result<(), T> {
        let Some(slot) = self.slots.get(shard) else {
            return Err(item);
        };
        if !self.gate.submit_one(shard) {
            return Err(item); // dead worker: fail fast, never block
        }
        let slot = slot.read();
        match self.send_work(shard, &slot, item) {
            Ok(()) => Ok(()),
            Err(item) => {
                self.gate.retire_one(shard);
                Err(item)
            }
        }
    }

    /// Backpressure-aware ring write: retries a full ring until the
    /// item fits, yielding between attempts, but watches the dead bit
    /// so a producer never waits on a ring whose worker has died
    /// mid-wait (the pool holds a receiver clone for respawn, so
    /// channel disconnection can no longer signal worker death).
    ///
    /// Returns the item if the worker died before it could be queued.
    fn send_work(&self, shard: usize, slot: &Slot<T>, item: T) -> Result<(), T> {
        let mut msg = Job::Work(item);
        loop {
            match slot.tx.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let full = e.is_full();
                    let item = match e.into_inner() {
                        Job::Work(item) => item,
                        Job::Sync(_) => unreachable!("send_work only sends work"),
                    };
                    if !full || self.gate.lock().dead[shard] {
                        return Err(item);
                    }
                    msg = Job::Work(item);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Enqueues `item` on `shard`'s ring without blocking; a full ring
    /// counts as a rejection (the multi-queue analogue of an rx-ring
    /// tail drop). A dead worker fails fast like [`Self::submit`],
    /// without counting toward [`Self::rejected`] — that meter is
    /// ring-pressure evidence, not a fault log.
    ///
    /// # Errors
    ///
    /// Returns the item when the ring is full, the shard is out of
    /// range, or the worker died.
    pub fn try_submit(&self, shard: usize, item: T) -> Result<(), T> {
        self.try_submit_tagged(shard, item)
            .map_err(|(item, _)| item)
    }

    /// [`Self::try_submit`] with the rejection *classified*: the caller
    /// learns whether a bounced item is backpressure evidence
    /// ([`SubmitRejection::RingFull`] — counted in [`Self::rejected`])
    /// or fault evidence ([`SubmitRejection::DeadWorker`] — not ring
    /// pressure, so not counted there). Cause-tagged drop accounting in
    /// the sharded router is built on this split.
    ///
    /// # Errors
    ///
    /// Returns the item and why it bounced.
    pub fn try_submit_tagged(&self, shard: usize, item: T) -> Result<(), (T, SubmitRejection)> {
        let Some(slot) = self.slots.get(shard) else {
            return Err((item, SubmitRejection::OutOfRange));
        };
        if !self.gate.submit_one(shard) {
            return Err((item, SubmitRejection::DeadWorker)); // fail fast
        }
        let slot = slot.read();
        match slot.tx.try_send(Job::Work(item)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.gate.retire_one(shard);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                match e.into_inner() {
                    Job::Work(item) => Err((item, SubmitRejection::RingFull)),
                    Job::Sync(_) => unreachable!("try_submit only sends work"),
                }
            }
        }
    }

    /// Batched publish: enqueues one job on each shard yielded by
    /// `shards` with a **single gate transaction** reserving every
    /// live target's in-flight slot up front, then exactly one ring
    /// write per shard — the per-publish synchronisation the
    /// one-`submit`-per-sub-batch path pays N times collapses to one
    /// lock acquisition per dispatch, which is what makes the shared
    /// fan-out's producer cost independent of worker count.
    ///
    /// `shards` is iterated twice (reserve, then publish) and must
    /// yield strictly in-range indices without duplicates.
    /// `job_for(shard)` produces each ring's job — typically a cheap
    /// refcount bump (`ShardJob::Range`); it is only invoked during
    /// the publish pass, outside the gate lock. Jobs that cannot be
    /// delivered — the worker was dead at reservation time, or died
    /// racing the publish — are handed to `on_reject(shard, job)` so
    /// the caller can account their payload. Returns the number of
    /// jobs enqueued.
    ///
    /// Blocking semantics match [`Self::submit`]: a full live ring
    /// backpressures the publish. Do **not** call inside a quiesce
    /// closure (parked workers cannot relieve a full ring);
    /// re-steering paths there use [`Self::try_submit`] per item.
    ///
    /// # Panics
    ///
    /// Panics if any yielded shard index is out of range.
    pub fn submit_fanout<I, F, R>(&self, shards: I, mut job_for: F, mut on_reject: R) -> usize
    where
        I: Iterator<Item = usize> + Clone,
        F: FnMut(usize) -> T,
        R: FnMut(usize, T),
    {
        // Phase 1: one gate transaction covers the whole fan-out.
        // Dead shards reserve nothing; they are remembered (the Vec
        // stays unallocated in the no-fault common case) so phase 2
        // neither publishes to them nor mis-retires their slots.
        let mut dead_skipped: Vec<usize> = Vec::new();
        {
            let mut st = self.gate.lock();
            for shard in shards.clone() {
                assert!(shard < self.slots.len(), "fanout shard out of range");
                if st.dead[shard] {
                    dead_skipped.push(shard);
                    continue;
                }
                st.in_flight[shard] += 1;
                if st.in_flight[shard] > st.ring_hwm[shard] {
                    st.ring_hwm[shard] = st.in_flight[shard];
                }
            }
        }
        // Phase 2: one ring write per shard, no further gate traffic
        // on the success path.
        let mut sent = 0;
        for shard in shards {
            if dead_skipped.contains(&shard) {
                on_reject(shard, job_for(shard));
                continue;
            }
            let slot = self.slots[shard].read();
            match self.send_work(shard, &slot, job_for(shard)) {
                Ok(()) => sent += 1,
                Err(item) => {
                    // Worker died between reservation and publish.
                    self.gate.retire_one(shard);
                    on_reject(shard, item);
                }
            }
        }
        sent
    }

    /// Blocks until every item submitted to a *live* worker has run to
    /// completion. Items stranded on a dead worker's ring (its handler
    /// panicked) will never run and do not gate the flush. (A barrier
    /// over *work*, not an epoch: reconfiguration wants
    /// [`Self::quiesce`].)
    pub fn flush(&self) {
        let mut st = self.gate.lock();
        while st.live_in_flight() > 0 {
            st = self
                .gate
                .drained
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Runs `f` with every worker parked at a batch boundary — the
    /// epoch quiesce protocol (see the module docs). Returns `f`'s
    /// result. Items already in the rings are processed before the
    /// barrier; items submitted during `f` wait in the rings and flow
    /// afterwards, so reconfiguration never drops traffic.
    pub fn quiesce<R>(&self, f: impl FnOnce() -> R) -> R {
        let _serial = self
            .quiesce_serial
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let target = {
            let mut st = self.gate.lock();
            st.requested += 1;
            st.requested
        };
        for (shard, slot) in self.slots.iter().enumerate() {
            // A dead worker cannot park; `dead` accounting covers it.
            // A full live ring backpressures the marker (the worker is
            // draining), re-checking the dead bit between attempts so a
            // death mid-wait cannot wedge the quiescer.
            let slot = slot.read();
            let mut msg = Job::Sync(target);
            loop {
                if self.gate.lock().dead[shard] {
                    break;
                }
                match slot.tx.try_send(msg) {
                    Ok(()) => break,
                    Err(e) if e.is_full() => {
                        msg = e.into_inner();
                        std::thread::yield_now();
                    }
                    Err(_) => break,
                }
            }
        }
        {
            let mut st = self.gate.lock();
            while st.parked + st.dead_count() < self.slots.len() {
                st = self
                    .gate
                    .arrived
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        let out = f();
        {
            let mut st = self.gate.lock();
            st.parked = 0;
            st.released = target;
            self.gate.resume.notify_all();
        }
        out
    }

    /// Completed quiesce epochs since the pool started.
    pub fn epoch(&self) -> u64 {
        self.gate.lock().released
    }

    /// Work items run to completion on `shard`, if it exists.
    pub fn completed(&self, shard: usize) -> Option<u64> {
        self.completed.get(shard).map(|c| c.load(Ordering::Relaxed))
    }

    /// Total work items run to completion across all shards.
    pub fn total_completed(&self) -> u64 {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Items bounced by [`Self::try_submit`] because a ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Work items submitted to live workers but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.gate.lock().live_in_flight()
    }

    /// Work items submitted to `shard` but not yet completed, if it
    /// exists.
    pub fn in_flight_on(&self, shard: usize) -> Option<usize> {
        self.gate.lock().in_flight.get(shard).copied()
    }

    /// Whether `shard`'s worker can still accept work (`Some(false)`
    /// once its thread exited — handler panic or shutdown — and the
    /// dead-worker fast-fail in [`Self::submit`] / [`Self::try_submit`]
    /// has engaged). `None` for an out-of-range shard.
    pub fn worker_alive(&self, shard: usize) -> Option<bool> {
        self.gate.lock().dead.get(shard).map(|dead| !dead)
    }

    /// Replaces a **dead** worker (handler panic) with a fresh thread
    /// and a fresh ring — the crash-recovery half of the self-healing
    /// dataplane.
    ///
    /// The dead ring's stranded work items are drained and handed to
    /// `on_stranded` (oldest first) so the caller can account and
    /// recycle their payloads — counted, never leaked. Stale sync
    /// markers from quiesces that ran while the worker was dead are
    /// discarded (those epochs already accounted the shard as dead at
    /// the gate). `handler` is the replacement shard state, typically
    /// rebuilt by the same factory that produced the original.
    ///
    /// Serialises against [`Self::quiesce`]: a respawn never
    /// interleaves with an epoch barrier, so the fresh worker cannot
    /// miss a sync marker and wedge a quiescer. The fresh ring starts
    /// empty with zeroed occupancy meters; [`Self::completed`] keeps
    /// accumulating across the generation change. A producer that lost
    /// the death race may deliver one late item onto the fresh ring —
    /// it is processed normally (the in-flight meter saturates rather
    /// than double-counts).
    ///
    /// Returns the number of stranded work items recovered, or `None`
    /// if `shard` is out of range or its worker is still alive (only
    /// dead workers respawn).
    pub fn respawn(
        &self,
        shard: usize,
        handler: ShardHandler<T>,
        mut on_stranded: impl FnMut(T),
    ) -> Option<usize> {
        if shard >= self.slots.len() {
            return None;
        }
        let _serial = self
            .quiesce_serial
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if !self.gate.lock().dead[shard] {
            return None;
        }
        // Reap the dead thread first: after the join, nobody but this
        // call touches the old ring's receiving side.
        if let Some(handle) = self.handles.lock()[shard].take() {
            let _ = handle.join();
        }
        let mut stranded = 0usize;
        let mut drain = |rx: &Receiver<Job<T>>| {
            while let Ok(job) = rx.try_recv() {
                if let Job::Work(item) = job {
                    stranded += 1;
                    on_stranded(item);
                }
            }
        };
        // Pass 1 (shared lock): frees ring space so any producer that
        // lost the death race and is still waiting on a full ring can
        // finish — or notice the dead bit — and release its hold.
        drain(&self.slots[shard].read().rx);
        {
            // Pass 2 (exclusive): no producer holds the slot, so a
            // racer's late landing is caught before the swap.
            let mut slot = self.slots[shard].write();
            drain(&slot.rx);
            let (tx, rx) = bounded::<Job<T>>(self.spec.ring_capacity);
            *slot = Slot { tx, rx };
        }
        let rx = self.slots[shard].read().rx.clone();
        let handle = Self::spawn_worker(
            shard,
            handler,
            rx,
            Arc::clone(&self.gate),
            Arc::clone(&self.completed),
        );
        self.handles.lock()[shard] = Some(handle);
        {
            // Only now does the shard accept traffic again: fresh ring,
            // zeroed occupancy window, dead bit cleared last.
            let mut st = self.gate.lock();
            st.in_flight[shard] = 0;
            st.ring_hwm[shard] = 0;
            st.dead[shard] = false;
        }
        self.respawned.fetch_add(1, Ordering::Relaxed);
        Some(stranded)
    }

    /// Workers respawned ([`Self::respawn`]) over the pool's lifetime.
    pub fn respawned(&self) -> u64 {
        self.respawned.load(Ordering::Relaxed)
    }

    /// High-water mark of `shard`'s ring occupancy since the pool
    /// started (or since the last [`Self::reset_ring_high_water`]) —
    /// the load meter that distinguishes a backed-up shard from a busy
    /// one: a shard whose high-water mark rides its ring capacity is
    /// receiving work faster than it retires it.
    pub fn ring_high_water(&self, shard: usize) -> Option<usize> {
        self.gate.lock().ring_hwm.get(shard).copied()
    }

    /// Resets every shard's ring-occupancy high-water mark to its
    /// current occupancy, starting a fresh observation window.
    ///
    /// Bare reset discards the closing window's marks; a sampler that
    /// wants them must use [`Self::take_ring_high_water`] — reading
    /// `ring_high_water` first and resetting afterwards is a
    /// read-then-reset race: a peak recorded between the two calls is
    /// folded into the *old* window's (already sampled) mark and then
    /// erased, so the new window under-reports a ring that was
    /// provably nonempty. Callers closing windows at migration epochs
    /// should reset from inside the quiesce (as
    /// `ShardedPipeline::install_bucket_map` does), where no
    /// submission can interleave with the boundary.
    pub fn reset_ring_high_water(&self) {
        let _ = self.take_ring_high_water();
    }

    /// Atomically closes the ring-occupancy observation window: in one
    /// lock acquisition, returns every shard's high-water mark and
    /// resets it to the shard's *current* occupancy. Because the
    /// sample and the reset are indivisible, a peak recorded
    /// concurrently lands in exactly one window — either it is part of
    /// the returned marks, or (arriving after) it raises the new
    /// window's mark from the live occupancy floor; it can never be
    /// sampled into the old window and then zeroed out of the new one.
    pub fn take_ring_high_water(&self) -> Vec<usize> {
        let mut st = self.gate.lock();
        let mut window = Vec::with_capacity(st.ring_hwm.len());
        for shard in 0..st.ring_hwm.len() {
            window.push(st.ring_hwm[shard]);
            st.ring_hwm[shard] = st.in_flight[shard];
        }
        window
    }

    /// Drains outstanding work, stops every worker, and joins the
    /// threads.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        // Dropping the slots (sender and drain-receiver both)
        // disconnects the rings; workers finish queued work, then exit.
        self.slots.clear();
        for handle in self.handles.lock().drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl<T: Send + 'static> fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WorkerPool({} workers, {} completed, epoch {})",
            self.slots.len(),
            self.total_completed(),
            self.epoch()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn work_lands_on_the_submitted_shard() {
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..3).map(|_| AtomicU64::new(0)).collect());
        let pool = WorkerPool::start(ShardSpec::new(3), |shard| {
            let hits = Arc::clone(&hits);
            Box::new(move |n: u64| {
                hits[shard].fetch_add(n, Ordering::Relaxed);
            })
        });
        for i in 0..30u64 {
            pool.submit((i % 3) as usize, 1).unwrap();
        }
        pool.flush();
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 10);
        }
        assert_eq!(pool.total_completed(), 30);
        assert_eq!(pool.completed(0), Some(10));
        assert_eq!(pool.completed(9), None);
        pool.shutdown();
    }

    #[test]
    fn per_shard_order_is_fifo() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pool = WorkerPool::start(ShardSpec::new(1), |_| {
            let log = Arc::clone(&log);
            Box::new(move |n: u32| log.lock().push(n))
        });
        for n in 0..100u32 {
            pool.submit(0, n).unwrap();
        }
        pool.flush();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_shard_returns_item() {
        let pool = WorkerPool::start(ShardSpec::new(2), |_| Box::new(|_: u8| {}));
        assert_eq!(pool.submit(2, 7), Err(7));
        assert_eq!(pool.try_submit(9, 8), Err(8));
    }

    #[test]
    fn try_submit_bounces_on_full_ring() {
        // A handler that blocks until released, wedging the ring.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let spec = ShardSpec::new(1).with_ring_capacity(1);
        let pool = WorkerPool::start(spec, |_| {
            let gate = Arc::clone(&gate);
            Box::new(move |_: u8| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
        });
        pool.submit(0, 1).unwrap(); // picked up by the worker, blocks
                                    // This send only completes once the worker has dequeued item 1
                                    // (ring capacity is 1), so afterwards the ring holds exactly
                                    // item 2 while the worker is wedged inside item 1.
        pool.submit(0, 2).unwrap();
        let bounced = pool.try_submit(0, 3);
        assert_eq!(bounced, Err(3));
        assert_eq!(pool.rejected(), 1);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.flush();
        assert_eq!(pool.total_completed(), 2);
    }

    #[test]
    fn quiesce_runs_with_all_workers_parked() {
        // Each worker copies the shared config into its local view at
        // item time; quiesce swaps the config and must never be
        // observed torn.
        let config = Arc::new(AtomicU64::new(1));
        let torn = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::start(ShardSpec::new(4), |_| {
            let config = Arc::clone(&config);
            let torn = Arc::clone(&torn);
            Box::new(move |_: u8| {
                let a = config.load(Ordering::SeqCst);
                std::thread::yield_now();
                let b = config.load(Ordering::SeqCst);
                if a != b {
                    torn.fetch_add(1, Ordering::SeqCst);
                }
            })
        });
        for round in 0..20u64 {
            for shard in 0..4 {
                pool.submit(shard, 0).unwrap();
            }
            if round % 5 == 4 {
                pool.quiesce(|| {
                    // With every worker parked, a multi-step update is
                    // atomic from the dataplane's perspective.
                    config.store(round * 2, Ordering::SeqCst);
                    std::thread::yield_now();
                    config.store(round * 2 + 1, Ordering::SeqCst);
                });
            }
        }
        pool.flush();
        assert_eq!(torn.load(Ordering::SeqCst), 0, "no torn reconfiguration");
        assert_eq!(pool.epoch(), 4);
        assert_eq!(pool.total_completed(), 80);
        pool.shutdown();
    }

    #[test]
    fn quiesce_preserves_queued_traffic() {
        let done = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::start(ShardSpec::new(2), |_| {
            let done = Arc::clone(&done);
            Box::new(move |_: u8| {
                done.fetch_add(1, Ordering::Relaxed);
            })
        });
        for shard in 0..2 {
            for _ in 0..10 {
                pool.submit(shard, 0).unwrap();
            }
        }
        pool.quiesce(|| {
            // Items submitted mid-quiesce queue behind the barrier.
            pool.submit(0, 0).unwrap();
            pool.submit(1, 0).unwrap();
        });
        pool.flush();
        assert_eq!(done.load(Ordering::Relaxed), 22, "nothing dropped");
    }

    #[test]
    fn panicking_handler_does_not_wedge_the_pool() {
        let pool = WorkerPool::start(ShardSpec::new(2), |shard| {
            Box::new(move |n: u8| {
                if shard == 0 && n == 1 {
                    panic!("injected fault");
                }
            })
        });
        pool.submit(0, 1).unwrap(); // kills worker 0
                                    // An item queued *behind* the fault is stranded on the dead
                                    // worker's ring; it must not gate flush (regression: this
                                    // previously deadlocked flush forever).
        let _ = pool.submit(0, 2);
        pool.submit(1, 0).unwrap();
        pool.flush();
        // Quiesce still completes: the dead worker is accounted for.
        pool.quiesce(|| {});
        assert_eq!(pool.completed(1), Some(1));
        pool.shutdown();
    }

    #[test]
    fn ring_high_water_tracks_occupancy_windows() {
        // A handler that blocks until released, so submissions pile up.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let spec = ShardSpec::new(2).with_ring_capacity(8);
        let pool = WorkerPool::start(spec, |_| {
            let gate = Arc::clone(&gate);
            Box::new(move |_: u8| {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
        });
        for _ in 0..4 {
            pool.submit(0, 0).unwrap();
        }
        assert_eq!(pool.ring_high_water(0), Some(4));
        assert_eq!(pool.ring_high_water(1), Some(0), "idle shard stays flat");
        assert_eq!(pool.ring_high_water(9), None);
        assert_eq!(pool.in_flight_on(0), Some(4));
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.flush();
        // New window: the mark restarts from current occupancy (0).
        pool.reset_ring_high_water();
        assert_eq!(pool.ring_high_water(0), Some(0));
        pool.submit(1, 0).unwrap();
        pool.flush();
        assert_eq!(pool.ring_high_water(1), Some(1));
        pool.shutdown();
    }

    #[test]
    fn window_close_is_atomic_with_the_sample() {
        // Regression for the reset-vs-enqueue race: closing an
        // observation window by *reading* ring_high_water and then
        // *separately* resetting it erases any peak recorded between
        // the two calls — the next window reports high-water 0 for a
        // ring that was demonstrably nonempty. take_ring_high_water
        // closes the window in one indivisible step.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::start(ShardSpec::new(1).with_ring_capacity(16), move |_| {
                let gate = Arc::clone(&gate);
                Box::new(move |_: u8| {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                })
            })
        };
        // Runs a burst that peaks at `n` in-flight items, then drains.
        let burst = |n: usize| {
            *gate.0.lock().unwrap() = false;
            for _ in 0..n {
                pool.submit(0, 0).unwrap();
            }
            assert_eq!(pool.in_flight_on(0), Some(n));
            {
                let (lock, cv) = &*gate;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            pool.flush();
        };

        // --- the racy two-step close loses evidence -----------------
        burst(3);
        let sampled = pool.ring_high_water(0).unwrap();
        assert_eq!(sampled, 3);
        // A burst lands and fully retires between the sample and the
        // reset (its peak of 2 cannot raise the mark past 3)...
        burst(2);
        pool.reset_ring_high_water();
        // ...so the new window starts blind: occupancy 2 is gone.
        assert_eq!(pool.ring_high_water(0), Some(0), "peak of 2 was erased");

        // --- the atomic close cannot ---------------------------------
        burst(3);
        let window = pool.take_ring_high_water();
        assert_eq!(window, vec![3], "closed window keeps its marks");
        // The same schedule now lands wholly inside the new window.
        burst(2);
        assert_eq!(pool.ring_high_water(0), Some(2), "peak survives");
        assert_eq!(pool.take_ring_high_water(), vec![2]);
        pool.shutdown();
    }

    #[test]
    fn submit_fanout_reaches_every_listed_shard_once() {
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let pool = WorkerPool::start(ShardSpec::new(4), |shard| {
            let hits = Arc::clone(&hits);
            Box::new(move |n: u64| {
                hits[shard].fetch_add(n, Ordering::Relaxed);
            })
        });
        // Fan out to shards {0, 2, 3}, skipping 1.
        let sent = pool.submit_fanout(
            (0..4).filter(|&s| s != 1),
            |shard| shard as u64 + 10,
            |_, _| panic!("no rejection expected"),
        );
        assert_eq!(sent, 3);
        pool.flush();
        let seen: Vec<u64> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(seen, [10, 0, 12, 13]);
        // The fan-out's single reservation still feeds the meters.
        assert!(pool.ring_high_water(0).unwrap() >= 1);
        assert_eq!(pool.completed(0), Some(1));
        pool.shutdown();
    }

    #[test]
    fn submit_fanout_preserves_per_ring_fifo_against_submits() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pool = WorkerPool::start(ShardSpec::new(2), |_| {
            let log = Arc::clone(&log);
            Box::new(move |n: u32| log.lock().push(n))
        });
        for round in 0..50u32 {
            pool.submit(0, round * 3).unwrap();
            pool.submit_fanout(0..1, |_| round * 3 + 1, |_, _| {});
            pool.submit(0, round * 3 + 2).unwrap();
        }
        pool.flush();
        assert_eq!(*log.lock(), (0..150).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn fanout_rejects_jobs_for_dead_shards_without_wedging() {
        let pool = WorkerPool::start(ShardSpec::new(2), |shard| {
            Box::new(move |n: u8| {
                if shard == 0 && n == 1 {
                    panic!("injected fault");
                }
            })
        });
        pool.submit(0, 1).unwrap(); // kills worker 0
                                    // Death is asynchronous: wait until the gate has registered it
                                    // so the fan-out deterministically takes the dead-skip path.
        while pool.worker_alive(0) == Some(true) {
            std::thread::yield_now();
        }
        let rejected = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sent = pool.submit_fanout(
            0..2,
            |_| 0u8,
            |shard, item| rejected.lock().push((shard, item)),
        );
        assert_eq!(sent, 1, "live shard still served");
        assert_eq!(*rejected.lock(), vec![(0, 0u8)]);
        pool.flush();
        pool.quiesce(|| {}); // dead worker accounted at the gate
        pool.shutdown();
    }

    #[test]
    fn submit_to_a_dead_worker_fails_fast_even_with_a_full_ring() {
        // Regression: a producer blocked in submit() on a full ring
        // whose worker has died must get its item back instead of
        // spinning until the ring disconnects. With the dead-flag
        // check the item never enqueues at all once death is marked.
        let pool = WorkerPool::start(ShardSpec::new(1).with_ring_capacity(1), |_| {
            Box::new(move |n: u8| {
                if n == 1 {
                    panic!("injected fault");
                }
            })
        });
        pool.submit(0, 1).unwrap(); // worker picks it up and dies
        while pool.worker_alive(0) == Some(true) {
            std::thread::yield_now();
        }
        // Marked dead: both flavours bounce immediately, item intact,
        // and nothing is stranded in accounting (flush returns).
        assert_eq!(pool.submit(0, 2), Err(2));
        assert_eq!(pool.try_submit(0, 3), Err(3));
        assert_eq!(pool.rejected(), 0, "a fault is not ring pressure");
        pool.flush();
        assert_eq!(pool.in_flight(), 0);
        pool.shutdown();
    }

    #[test]
    fn respawn_revives_a_dead_worker_and_recovers_stranded_items() {
        // Handler: 254 parks until the gate opens (so items can queue
        // behind it deterministically), 255 is poison, anything else
        // is counted work.
        let open = Arc::new((Mutex::new(false), Condvar::new()));
        let done = Arc::new(AtomicU64::new(0));
        let make_handler =
            |open: &Arc<(Mutex<bool>, Condvar)>, done: &Arc<AtomicU64>| -> ShardHandler<u8> {
                let open = Arc::clone(open);
                let done = Arc::clone(done);
                Box::new(move |n: u8| match n {
                    254 => {
                        let (lock, cv) = &*open;
                        let mut o = lock.lock().unwrap();
                        while !*o {
                            o = cv.wait(o).unwrap();
                        }
                    }
                    255 => panic!("injected fault"),
                    _ => {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                })
            };
        let pool = WorkerPool::start(ShardSpec::new(2), |_| make_handler(&open, &done));

        pool.submit(0, 254).unwrap(); // worker parks on this item
        pool.submit(0, 255).unwrap(); // poison, queued behind it
        pool.submit(0, 1).unwrap(); // will be stranded
        pool.submit(0, 2).unwrap(); // will be stranded
        {
            let (lock, cv) = &*open;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        while pool.worker_alive(0) == Some(true) {
            std::thread::yield_now();
        }

        // A live worker does not respawn; neither does a ghost shard.
        assert!(pool
            .respawn(1, make_handler(&open, &done), |_| {})
            .is_none());
        assert!(pool
            .respawn(9, make_handler(&open, &done), |_| {})
            .is_none());

        let mut stranded = Vec::new();
        let recovered = pool.respawn(0, make_handler(&open, &done), |item| stranded.push(item));
        assert_eq!(recovered, Some(2));
        assert_eq!(stranded, vec![1, 2], "oldest first, nothing leaked");
        assert_eq!(pool.worker_alive(0), Some(true));
        assert_eq!(pool.respawned(), 1);
        assert_eq!(pool.in_flight_on(0), Some(0), "fresh ring starts empty");
        assert_eq!(pool.ring_high_water(0), Some(0));

        // The revived shard serves traffic and parks at epochs again.
        pool.submit(0, 3).unwrap();
        pool.flush();
        assert_eq!(done.load(Ordering::Relaxed), 1);
        pool.quiesce(|| {});
        assert_eq!(pool.epoch(), 1);
        // 254 completed before the fault; 3 completed after respawn.
        // (The poison item retired via the panic guard, uncounted.)
        assert_eq!(pool.completed(0), Some(2));
        pool.shutdown();
    }

    #[test]
    fn try_submit_tagged_classifies_rejections() {
        // Shard 0's handler parks forever; shard capacity 1 makes the
        // ring trivially fillable.
        let open = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = {
            let open = Arc::clone(&open);
            WorkerPool::start(ShardSpec::new(2).with_ring_capacity(1), move |shard| {
                let open = Arc::clone(&open);
                Box::new(move |n: u8| {
                    if shard == 0 {
                        let (lock, cv) = &*open;
                        let mut o = lock.lock().unwrap();
                        while !*o {
                            o = cv.wait(o).unwrap();
                        }
                    } else if n == 255 {
                        panic!("injected fault");
                    }
                })
            })
        };
        assert_eq!(
            pool.try_submit_tagged(7, 0).unwrap_err().1,
            SubmitRejection::OutOfRange
        );
        pool.submit(0, 0).unwrap(); // worker parks on it
        pool.submit(0, 1).unwrap(); // fills the 1-deep ring
        let (item, why) = pool.try_submit_tagged(0, 2).unwrap_err();
        assert_eq!((item, why), (2, SubmitRejection::RingFull));
        assert_eq!(pool.rejected(), 1, "ring pressure is counted");

        pool.submit(1, 255).unwrap(); // kills worker 1
        while pool.worker_alive(1) == Some(true) {
            std::thread::yield_now();
        }
        let (item, why) = pool.try_submit_tagged(1, 3).unwrap_err();
        assert_eq!((item, why), (3, SubmitRejection::DeadWorker));
        assert_eq!(pool.rejected(), 1, "a fault is not ring pressure");
        {
            let (lock, cv) = &*open;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.flush();
        pool.shutdown();
    }

    #[test]
    fn spec_clamps_and_builds() {
        let spec = ShardSpec::new(0).with_ring_capacity(0);
        assert_eq!(spec.workers, 1);
        assert_eq!(spec.ring_capacity, 1);
        assert_eq!(ShardSpec::default(), ShardSpec::single());
    }

    #[test]
    fn zero_worker_spec_runs_as_one_worker() {
        // A literal spec bypasses ShardSpec::new's clamp; the pool must
        // normalise it so 0 shards ≡ 1 shard.
        let raw = ShardSpec {
            workers: 0,
            ring_capacity: 0,
        };
        let seen = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::start(raw, |_| {
            let seen = Arc::clone(&seen);
            Box::new(move |n: u64| {
                seen.fetch_add(n, Ordering::Relaxed);
            })
        });
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.spec().workers, 1);
        pool.submit(0, 5).unwrap();
        pool.flush();
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        pool.shutdown();
    }
}
