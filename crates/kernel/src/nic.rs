//! Simulated network interface cards.
//!
//! Stratum 1 wraps "access to network hardware" (paper §3). A [`Nic`] is
//! a set of bounded rx/tx ring pairs over raw frames plus drop counters —
//! the substrate the Router CF's device-adapter components sit on. The
//! simulator (or a test) injects frames into the rx rings and drains the
//! tx rings; the router polls rx and pushes tx, exactly like a
//! poll-mode driver.
//!
//! ## Multi-queue (RSS)
//!
//! A NIC built with [`Nic::with_queues`] exposes one rx ring and one tx
//! ring *per worker* — the simulated equivalent of hardware
//! receive-side scaling. The wire side steers each frame with
//! [`Nic::inject_rx_rss`] (hash → queue, the hash being what hardware
//! would compute from the flow tuple, see
//! `netkit_packet::flow::FlowKey::rss_hash`); each worker then drains
//! *its own* queue with [`Nic::rx_burst_queue`] and transmits on its own
//! ring with [`Nic::tx_burst_queue`], so the fast path shares nothing
//! between workers. Rings are SPSC channels (crossbeam shim); the
//! single-queue constructor [`Nic::new`] and the queue-less API
//! (`inject_rx`/`poll_rx`/`rx_burst`/`send_tx`/`tx_burst`/`drain_tx`)
//! keep their original single-ring semantics on queue 0 — except the
//! *consuming* sides (`poll_rx`, `rx_burst`, `drain_tx`), which scan
//! queues in index order so no frame is ever stranded for a
//! queue-oblivious caller.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

/// Identifies a port/NIC on a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Counters exposed by a NIC (aggregated over all queues, so reflection
/// keeps seeing one logical device).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames accepted into the rx rings.
    pub rx_frames: u64,
    /// Frames dropped because an rx ring was full.
    pub rx_dropped: u64,
    /// Frames accepted into the tx rings.
    pub tx_frames: u64,
    /// Frames dropped because a tx ring was full.
    pub tx_dropped: u64,
    /// Bytes accepted for transmit.
    pub tx_bytes: u64,
}

/// One bounded SPSC ring: the NIC keeps both endpoints so the channel
/// never disconnects.
struct Ring {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        Self { tx, rx }
    }
}

/// A simulated NIC with bounded, optionally multi-queue rx/tx rings.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use netkit_kernel::nic::{Nic, PortId};
///
/// let nic = Nic::new(PortId(0), 4, 4, 1_000_000_000);
/// nic.inject_rx(Bytes::from_static(b"frame"));
/// assert_eq!(nic.poll_rx().as_deref(), Some(b"frame".as_ref()));
/// assert_eq!(nic.poll_rx(), None);
///
/// // Multi-queue: RSS steering on inject, per-worker burst drain.
/// let mq = Nic::with_queues(PortId(1), 4, 16, 16, 1_000_000_000);
/// mq.inject_rx_rss(7, Bytes::from_static(b"flow"));
/// assert_eq!(mq.rx_burst_queue(7 % 4, 32).len(), 1);
/// ```
pub struct Nic {
    port: PortId,
    rx: Vec<Ring>,
    tx: Vec<Ring>,
    rx_capacity: usize,
    tx_capacity: usize,
    link_bps: u64,
    rx_frames: AtomicU64,
    rx_dropped: AtomicU64,
    tx_frames: AtomicU64,
    tx_dropped: AtomicU64,
    tx_bytes: AtomicU64,
}

impl Nic {
    /// Creates a single-queue NIC with the given ring capacities and
    /// link rate (bits per second).
    pub fn new(port: PortId, rx_capacity: usize, tx_capacity: usize, link_bps: u64) -> Self {
        Self::with_queues(port, 1, rx_capacity, tx_capacity, link_bps)
    }

    /// Creates a NIC with `queues` rx/tx ring pairs (one per dataplane
    /// worker); capacities are per ring.
    pub fn with_queues(
        port: PortId,
        queues: usize,
        rx_capacity: usize,
        tx_capacity: usize,
        link_bps: u64,
    ) -> Self {
        let queues = queues.max(1);
        Self {
            port,
            rx: (0..queues).map(|_| Ring::new(rx_capacity)).collect(),
            tx: (0..queues).map(|_| Ring::new(tx_capacity)).collect(),
            rx_capacity: rx_capacity.max(1),
            tx_capacity: tx_capacity.max(1),
            link_bps,
            rx_frames: AtomicU64::new(0),
            rx_dropped: AtomicU64::new(0),
            tx_frames: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
        }
    }

    /// The NIC's port id.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Number of rx/tx queue pairs.
    pub fn queues(&self) -> usize {
        self.rx.len()
    }

    /// The link rate in bits per second.
    pub fn link_bps(&self) -> u64 {
        self.link_bps
    }

    /// Nanoseconds to serialise `bytes` onto the wire at the link rate.
    pub fn tx_nanos_for(&self, bytes: usize) -> u64 {
        if self.link_bps == 0 {
            return 0;
        }
        (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.link_bps
    }

    fn inject_into(&self, queue: usize, frame: Bytes) -> bool {
        match self.rx[queue % self.rx.len()].tx.try_send(frame) {
            Ok(()) => {
                self.rx_frames.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.rx_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Delivers a frame into rx queue 0 (called by the wire side).
    /// Returns `false` and counts a drop if the ring is full.
    pub fn inject_rx(&self, frame: Bytes) -> bool {
        self.inject_into(0, frame)
    }

    /// Delivers a frame into the rx queue selected by the RSS `hash`
    /// (`hash % queues`) — the hardware steering step that keeps every
    /// flow on one worker. Returns `false` and counts a drop if that
    /// ring is full.
    pub fn inject_rx_rss(&self, hash: u64, frame: Bytes) -> bool {
        self.inject_into((hash % self.rx.len() as u64) as usize, frame)
    }

    /// Takes the next received frame, scanning queues in index order
    /// (queue-oblivious consumers never strand frames).
    pub fn poll_rx(&self) -> Option<Bytes> {
        self.rx.iter().find_map(|ring| ring.rx.try_recv().ok())
    }

    /// Takes the next frame from rx queue `queue` only (the per-worker
    /// poll path).
    pub fn poll_rx_queue(&self, queue: usize) -> Option<Bytes> {
        self.rx.get(queue)?.rx.try_recv().ok()
    }

    /// Takes up to `max` received frames across all queues in index
    /// order — the poll-mode-driver burst receive for single-worker
    /// callers. Per-queue frame order matches repeated
    /// [`Self::poll_rx`] calls.
    pub fn rx_burst(&self, max: usize) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(max.min(64));
        for ring in &self.rx {
            while out.len() < max {
                match ring.rx.try_recv() {
                    Ok(frame) => out.push(frame),
                    Err(_) => break,
                }
            }
            if out.len() >= max {
                break;
            }
        }
        out
    }

    /// Takes up to `max` frames from rx queue `queue` only — each
    /// dataplane worker bursts from its own ring, sharing nothing.
    /// Returns an empty burst for unknown queues.
    pub fn rx_burst_queue(&self, queue: usize, max: usize) -> Vec<Bytes> {
        let Some(ring) = self.rx.get(queue) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(max.min(64));
        while out.len() < max {
            match ring.rx.try_recv() {
                Ok(frame) => out.push(frame),
                Err(_) => break,
            }
        }
        out
    }

    /// Frames currently waiting across all rx queues.
    pub fn rx_pending(&self) -> usize {
        self.rx.iter().map(|ring| ring.rx.len()).sum()
    }

    fn send_into(&self, queue: usize, frame: Bytes) -> bool {
        let len = frame.len() as u64;
        match self.tx[queue % self.tx.len()].tx.try_send(frame) {
            Ok(()) => {
                self.tx_frames.fetch_add(1, Ordering::Relaxed);
                self.tx_bytes.fetch_add(len, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.tx_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Queues a frame for transmission on tx queue 0 (called by the
    /// router side). Returns `false` and counts a drop if the ring is
    /// full.
    pub fn send_tx(&self, frame: Bytes) -> bool {
        self.send_into(0, frame)
    }

    /// Queues a burst of frames on tx queue 0 under the single-queue
    /// semantics: frames are accepted in order until the ring fills, the
    /// remainder are dropped and counted. Returns the number accepted.
    pub fn tx_burst(&self, frames: impl IntoIterator<Item = Bytes>) -> usize {
        self.tx_burst_queue(0, frames)
    }

    /// Queues a burst of frames on tx queue `queue` — the per-worker
    /// transmit path. Unknown queues drop (and count) every frame.
    /// Returns the number of frames accepted.
    pub fn tx_burst_queue(&self, queue: usize, frames: impl IntoIterator<Item = Bytes>) -> usize {
        let Some(ring) = self.tx.get(queue) else {
            let dropped = frames.into_iter().count() as u64;
            self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
            return 0;
        };
        let mut accepted = 0usize;
        let mut accepted_bytes = 0u64;
        let mut dropped = 0u64;
        for frame in frames {
            let len = frame.len() as u64;
            match ring.tx.try_send(frame) {
                Ok(()) => {
                    accepted += 1;
                    accepted_bytes += len;
                }
                Err(_) => dropped += 1,
            }
        }
        self.tx_frames.fetch_add(accepted as u64, Ordering::Relaxed);
        self.tx_bytes.fetch_add(accepted_bytes, Ordering::Relaxed);
        self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
        accepted
    }

    /// Takes the next frame to put on the wire, scanning tx queues in
    /// index order (called by the wire side).
    pub fn drain_tx(&self) -> Option<Bytes> {
        self.tx.iter().find_map(|ring| ring.rx.try_recv().ok())
    }

    /// Takes the next frame from tx queue `queue` only.
    pub fn drain_tx_queue(&self, queue: usize) -> Option<Bytes> {
        self.tx.get(queue)?.rx.try_recv().ok()
    }

    /// Frames currently waiting across all tx queues.
    pub fn tx_pending(&self) -> usize {
        self.tx.iter().map(|ring| ring.rx.len()).sum()
    }

    /// Snapshot of the NIC counters (aggregated over queues).
    pub fn stats(&self) -> NicStats {
        NicStats {
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_dropped: self.rx_dropped.load(Ordering::Relaxed),
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nic({}, {} queues, rx {}/{}, tx {}/{})",
            self.port,
            self.queues(),
            self.rx_pending(),
            self.rx_capacity * self.rx.len(),
            self.tx_pending(),
            self.tx_capacity * self.tx.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u8) -> Bytes {
        Bytes::from(vec![n; 64])
    }

    #[test]
    fn rx_ring_drops_when_full() {
        let nic = Nic::new(PortId(1), 2, 2, 1_000_000);
        assert!(nic.inject_rx(frame(1)));
        assert!(nic.inject_rx(frame(2)));
        assert!(!nic.inject_rx(frame(3)));
        let s = nic.stats();
        assert_eq!((s.rx_frames, s.rx_dropped), (2, 1));
        assert_eq!(nic.poll_rx().unwrap()[0], 1);
        assert!(nic.inject_rx(frame(4)), "space reclaimed after poll");
    }

    #[test]
    fn tx_ring_fifo_and_counters() {
        let nic = Nic::new(PortId(0), 2, 2, 1_000_000);
        assert!(nic.send_tx(frame(1)));
        assert!(nic.send_tx(frame(2)));
        assert!(!nic.send_tx(frame(3)));
        assert_eq!(nic.drain_tx().unwrap()[0], 1);
        assert_eq!(nic.drain_tx().unwrap()[0], 2);
        assert_eq!(nic.drain_tx(), None);
        let s = nic.stats();
        assert_eq!((s.tx_frames, s.tx_dropped, s.tx_bytes), (2, 1, 128));
    }

    #[test]
    fn serialisation_delay_matches_link_rate() {
        let nic = Nic::new(PortId(0), 1, 1, 1_000_000_000); // 1 Gbps
                                                            // 1500 bytes = 12000 bits = 12 us at 1 Gbps.
        assert_eq!(nic.tx_nanos_for(1500), 12_000);
        let slow = Nic::new(PortId(1), 1, 1, 10_000_000); // 10 Mbps
        assert_eq!(slow.tx_nanos_for(1500), 1_200_000);
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(3).to_string(), "eth3");
    }

    #[test]
    fn rss_steering_keeps_hash_on_its_queue() {
        let nic = Nic::with_queues(PortId(0), 4, 8, 8, 1_000_000);
        assert_eq!(nic.queues(), 4);
        for hash in 0..16u64 {
            assert!(nic.inject_rx_rss(hash, frame(hash as u8)));
        }
        // Each queue holds exactly the frames whose hash maps to it.
        for queue in 0..4usize {
            let burst = nic.rx_burst_queue(queue, 32);
            assert_eq!(burst.len(), 4);
            for f in burst {
                assert_eq!(f[0] as usize % 4, queue);
            }
        }
        assert_eq!(nic.rx_pending(), 0);
        assert_eq!(nic.rx_burst_queue(9, 4), Vec::<Bytes>::new());
    }

    #[test]
    fn per_queue_rings_are_independently_bounded() {
        let nic = Nic::with_queues(PortId(0), 2, 2, 2, 1_000_000);
        // Fill queue 0; queue 1 still accepts.
        assert!(nic.inject_rx_rss(0, frame(1)));
        assert!(nic.inject_rx_rss(2, frame(2)));
        assert!(!nic.inject_rx_rss(4, frame(3)), "queue 0 full");
        assert!(nic.inject_rx_rss(1, frame(4)), "queue 1 unaffected");
        let s = nic.stats();
        assert_eq!((s.rx_frames, s.rx_dropped), (3, 1));
    }

    #[test]
    fn queue_oblivious_consumers_see_all_queues() {
        let nic = Nic::with_queues(PortId(0), 2, 4, 4, 1_000_000);
        nic.inject_rx_rss(1, frame(11)); // queue 1
        assert_eq!(nic.poll_rx().unwrap()[0], 11, "poll_rx scans queues");
        nic.tx_burst_queue(1, [frame(9)]);
        assert_eq!(nic.drain_tx().unwrap()[0], 9, "drain_tx scans queues");
    }

    #[test]
    fn per_worker_tx_queues_count_into_one_stats_block() {
        let nic = Nic::with_queues(PortId(0), 2, 2, 1, 1_000_000);
        assert_eq!(nic.tx_burst_queue(0, [frame(1), frame(2)]), 1);
        assert_eq!(nic.tx_burst_queue(1, [frame(3)]), 1);
        assert_eq!(nic.tx_burst_queue(7, [frame(4)]), 0, "unknown queue");
        let s = nic.stats();
        assert_eq!((s.tx_frames, s.tx_dropped, s.tx_bytes), (2, 2, 128));
        assert_eq!(nic.drain_tx_queue(0).unwrap()[0], 1);
        assert_eq!(nic.drain_tx_queue(1).unwrap()[0], 3);
        assert_eq!(nic.drain_tx_queue(9), None);
        assert_eq!(nic.poll_rx_queue(0), None);
    }
}
