//! Simulated network interface cards.
//!
//! Stratum 1 wraps "access to network hardware" (paper §3). A [`Nic`] is
//! a pair of bounded rx/tx rings over raw frames plus drop counters —
//! the substrate the Router CF's device-adapter components sit on. The
//! simulator (or a test) injects frames into the rx ring and drains the
//! tx ring; the router polls rx and pushes tx, exactly like a
//! poll-mode driver.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

/// Identifies a port/NIC on a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Counters exposed by a NIC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames accepted into the rx ring.
    pub rx_frames: u64,
    /// Frames dropped because the rx ring was full.
    pub rx_dropped: u64,
    /// Frames accepted into the tx ring.
    pub tx_frames: u64,
    /// Frames dropped because the tx ring was full.
    pub tx_dropped: u64,
    /// Bytes accepted for transmit.
    pub tx_bytes: u64,
}

/// A simulated NIC with bounded rx/tx rings.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use netkit_kernel::nic::{Nic, PortId};
///
/// let nic = Nic::new(PortId(0), 4, 4, 1_000_000_000);
/// nic.inject_rx(Bytes::from_static(b"frame"));
/// assert_eq!(nic.poll_rx().as_deref(), Some(b"frame".as_ref()));
/// assert_eq!(nic.poll_rx(), None);
/// ```
pub struct Nic {
    port: PortId,
    rx: Mutex<VecDeque<Bytes>>,
    tx: Mutex<VecDeque<Bytes>>,
    rx_capacity: usize,
    tx_capacity: usize,
    link_bps: u64,
    rx_frames: AtomicU64,
    rx_dropped: AtomicU64,
    tx_frames: AtomicU64,
    tx_dropped: AtomicU64,
    tx_bytes: AtomicU64,
}

impl Nic {
    /// Creates a NIC with the given ring capacities and link rate
    /// (bits per second).
    pub fn new(port: PortId, rx_capacity: usize, tx_capacity: usize, link_bps: u64) -> Self {
        Self {
            port,
            rx: Mutex::new(VecDeque::with_capacity(rx_capacity)),
            tx: Mutex::new(VecDeque::with_capacity(tx_capacity)),
            rx_capacity,
            tx_capacity,
            link_bps,
            rx_frames: AtomicU64::new(0),
            rx_dropped: AtomicU64::new(0),
            tx_frames: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
        }
    }

    /// The NIC's port id.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// The link rate in bits per second.
    pub fn link_bps(&self) -> u64 {
        self.link_bps
    }

    /// Nanoseconds to serialise `bytes` onto the wire at the link rate.
    pub fn tx_nanos_for(&self, bytes: usize) -> u64 {
        if self.link_bps == 0 {
            return 0;
        }
        (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.link_bps
    }

    /// Delivers a frame into the rx ring (called by the wire side).
    /// Returns `false` and counts a drop if the ring is full.
    pub fn inject_rx(&self, frame: Bytes) -> bool {
        let mut rx = self.rx.lock();
        if rx.len() >= self.rx_capacity {
            self.rx_dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        rx.push_back(frame);
        self.rx_frames.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Takes the next received frame, if any (called by the router side).
    pub fn poll_rx(&self) -> Option<Bytes> {
        self.rx.lock().pop_front()
    }

    /// Takes up to `max` received frames under one ring lock — the
    /// poll-mode-driver burst receive that the batch dataplane API rides
    /// on. Frame order matches repeated [`Self::poll_rx`] calls.
    pub fn rx_burst(&self, max: usize) -> Vec<Bytes> {
        let mut rx = self.rx.lock();
        let take = max.min(rx.len());
        rx.drain(..take).collect()
    }

    /// Frames currently waiting in the rx ring.
    pub fn rx_pending(&self) -> usize {
        self.rx.lock().len()
    }

    /// Queues a frame for transmission (called by the router side).
    /// Returns `false` and counts a drop if the ring is full.
    pub fn send_tx(&self, frame: Bytes) -> bool {
        let mut tx = self.tx.lock();
        if tx.len() >= self.tx_capacity {
            self.tx_dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.tx_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        tx.push_back(frame);
        self.tx_frames.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Queues a burst of frames for transmission under one ring lock.
    /// Frames are accepted in order until the ring fills; the remainder
    /// are dropped and counted, exactly as per-frame [`Self::send_tx`]
    /// calls would. Returns the number of frames accepted.
    pub fn tx_burst(&self, frames: impl IntoIterator<Item = Bytes>) -> usize {
        let mut tx = self.tx.lock();
        let mut accepted = 0usize;
        let mut accepted_bytes = 0u64;
        let mut dropped = 0u64;
        for frame in frames {
            if tx.len() >= self.tx_capacity {
                dropped += 1;
            } else {
                accepted += 1;
                accepted_bytes += frame.len() as u64;
                tx.push_back(frame);
            }
        }
        drop(tx);
        self.tx_frames.fetch_add(accepted as u64, Ordering::Relaxed);
        self.tx_bytes.fetch_add(accepted_bytes, Ordering::Relaxed);
        self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
        accepted
    }

    /// Takes the next frame to put on the wire (called by the wire side).
    pub fn drain_tx(&self) -> Option<Bytes> {
        self.tx.lock().pop_front()
    }

    /// Frames currently waiting in the tx ring.
    pub fn tx_pending(&self) -> usize {
        self.tx.lock().len()
    }

    /// Snapshot of the NIC counters.
    pub fn stats(&self) -> NicStats {
        NicStats {
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_dropped: self.rx_dropped.load(Ordering::Relaxed),
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nic({}, rx {}/{}, tx {}/{})",
            self.port,
            self.rx_pending(),
            self.rx_capacity,
            self.tx_pending(),
            self.tx_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u8) -> Bytes {
        Bytes::from(vec![n; 64])
    }

    #[test]
    fn rx_ring_drops_when_full() {
        let nic = Nic::new(PortId(1), 2, 2, 1_000_000);
        assert!(nic.inject_rx(frame(1)));
        assert!(nic.inject_rx(frame(2)));
        assert!(!nic.inject_rx(frame(3)));
        let s = nic.stats();
        assert_eq!((s.rx_frames, s.rx_dropped), (2, 1));
        assert_eq!(nic.poll_rx().unwrap()[0], 1);
        assert!(nic.inject_rx(frame(4)), "space reclaimed after poll");
    }

    #[test]
    fn tx_ring_fifo_and_counters() {
        let nic = Nic::new(PortId(0), 2, 2, 1_000_000);
        assert!(nic.send_tx(frame(1)));
        assert!(nic.send_tx(frame(2)));
        assert!(!nic.send_tx(frame(3)));
        assert_eq!(nic.drain_tx().unwrap()[0], 1);
        assert_eq!(nic.drain_tx().unwrap()[0], 2);
        assert_eq!(nic.drain_tx(), None);
        let s = nic.stats();
        assert_eq!((s.tx_frames, s.tx_dropped, s.tx_bytes), (2, 1, 128));
    }

    #[test]
    fn serialisation_delay_matches_link_rate() {
        let nic = Nic::new(PortId(0), 1, 1, 1_000_000_000); // 1 Gbps
                                                            // 1500 bytes = 12000 bits = 12 us at 1 Gbps.
        assert_eq!(nic.tx_nanos_for(1500), 12_000);
        let slow = Nic::new(PortId(1), 1, 1, 10_000_000); // 10 Mbps
        assert_eq!(slow.tx_nanos_for(1500), 1_200_000);
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(3).to_string(), "eth3");
    }
}
