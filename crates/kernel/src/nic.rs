//! Simulated network interface cards.
//!
//! Stratum 1 wraps "access to network hardware" (paper §3). A [`Nic`] is
//! a set of bounded rx/tx ring pairs over raw frames plus drop counters —
//! the substrate the Router CF's device-adapter components sit on. The
//! simulator (or a test) injects frames into the rx rings and drains the
//! tx rings; the router polls rx and pushes tx, exactly like a
//! poll-mode driver.
//!
//! ## Multi-queue (RSS)
//!
//! A NIC built with [`Nic::with_queues`] exposes one rx ring and one tx
//! ring *per worker* — the simulated equivalent of hardware
//! receive-side scaling. The wire side steers each frame with
//! [`Nic::inject_rx_rss`] (hash → queue, the hash being what hardware
//! would compute from the flow tuple, see
//! `netkit_packet::flow::FlowKey::rss_hash`); each worker then drains
//! *its own* queue with [`Nic::rx_burst_queue`] and transmits on its own
//! ring with [`Nic::tx_burst_queue`], so the fast path shares nothing
//! between workers. Rings are SPSC channels (crossbeam shim); the
//! single-queue constructor [`Nic::new`] and the queue-less API
//! (`inject_rx`/`poll_rx`/`rx_burst`/`send_tx`/`tx_burst`/`drain_tx`)
//! keep their original single-ring semantics on queue 0 — except the
//! *consuming* sides (`poll_rx`, `rx_burst`, `drain_tx`), which scan
//! queues in index order so no frame is ever stranded for a
//! queue-oblivious caller.
//!
//! ## The indirection table
//!
//! Hardware RSS does not map `hash % queues` directly: the hash
//! selects a **bucket** in a reprogrammable indirection table and the
//! table entry names the queue. This NIC models that exactly — frames
//! steer through an installed
//! [`BucketMap`]
//! ([`Nic::set_indirection`] / [`Nic::indirection`]), which boots as
//! the identity map (`bucket % queues`, indistinguishable from the
//! historical modulo steering). The reflective rebalancer rewrites the
//! table inside a dataplane quiesce to migrate whole buckets of flows
//! between queues; see `netkit_router::shard::rebalance` for the
//! protocol, including why concurrent wire-side injection during a
//! table swap is excluded (a simulated NIC cannot apply the swap
//! atomically against racing injectors the way silicon does).
//!
//! ## The zero-copy rx fast path
//!
//! A NIC built [`Nic::with_buffer_pool`] leases every rx frame buffer
//! from a [`BufferPool`] — the paper's buffer-management CF — instead
//! of allocating it: [`Nic::inject_rx_frame`] copies the wire bytes
//! into a pooled slab (the simulated DMA write), computes the flow's
//! RSS hash *once* (what the hardware RSS engine does), steers the
//! frame to its queue through the indirection table, and remembers the
//! hash. The worker side drains with [`Nic::rx_burst_batch`], which
//! materialises each frame as a [`Packet`] **around the same pooled
//! slab** (no copy) with `meta.rss_hash` pre-stamped (no re-parse,
//! ever, downstream). When the packet is eventually dropped at the end
//! of its run-to-completion pass, the slab returns to the pool — so in
//! steady state the rx path allocates nothing per frame.
//!
//! ## The zero-copy tx fast path
//!
//! Transmit mirrors receive: [`Nic::send_tx_packet`] /
//! [`Nic::tx_burst_packets`] **move** a packet's frame storage into
//! the tx ring — a pool-leased rx slab keeps its lease all the way
//! from `inject_rx_frame` through the element graph onto the wire, and
//! a heap buffer is frozen (refcount transfer), never copied. The wire
//! side drains with [`Nic::drain_tx_frame`], whose [`TxFrame`] derefs
//! to the bytes and, on drop, returns pooled slabs to their
//! [`BufferPool`]. The legacy `Bytes` APIs (`send_tx`, `tx_burst*`,
//! `drain_tx*`) remain; their consuming side detaches pooled slabs
//! (documented, off the fast path) exactly like the legacy rx API.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use netkit_packet::batch::PacketBatch;
use netkit_packet::flow::FlowKey;
use netkit_packet::packet::Packet;
use netkit_packet::pool::{BufferPool, PooledBuf};
use netkit_packet::steer::BucketMap;
use parking_lot::RwLock;

/// Identifies a port/NIC on a node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Counters exposed by a NIC (aggregated over all queues, so reflection
/// keeps seeing one logical device).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames accepted into the rx rings.
    pub rx_frames: u64,
    /// Frames dropped because an rx ring was full.
    pub rx_dropped: u64,
    /// Frames accepted into the tx rings.
    pub tx_frames: u64,
    /// Frames dropped because a tx ring was full.
    pub tx_dropped: u64,
    /// Bytes accepted for transmit.
    pub tx_bytes: u64,
}

/// One bounded SPSC ring: the NIC keeps both endpoints so the channel
/// never disconnects.
struct Ring<T> {
    tx: Sender<T>,
    rx: Receiver<T>,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity.max(1));
        Self { tx, rx }
    }
}

/// Frame storage in a NIC ring, either direction: shared bytes (legacy
/// injection / submit paths) or a slab still leased from a
/// [`BufferPool`] (the zero-copy paths — the lease survives the ring
/// and recycles wherever the frame is finally dropped).
enum FrameBuf {
    Shared(Bytes),
    Pooled(PooledBuf),
}

impl FrameBuf {
    fn as_slice(&self) -> &[u8] {
        match self {
            FrameBuf::Shared(b) => b,
            FrameBuf::Pooled(b) => b,
        }
    }

    fn into_bytes(self) -> Bytes {
        match self {
            FrameBuf::Shared(b) => b,
            // Detached from the pool: the legacy `Bytes` APIs trade
            // recycling for compatibility.
            FrameBuf::Pooled(b) => b.into_bytes().freeze(),
        }
    }
}

/// An rx frame in flight between the wire side and a worker: the bytes
/// (pool-leased on the fast path) plus the RSS hash the "hardware"
/// computed at injection, carried along so materialisation never
/// re-parses.
struct RxFrame {
    buf: FrameBuf,
    rss: Option<u64>,
}

impl RxFrame {
    fn into_bytes(self) -> Bytes {
        self.buf.into_bytes()
    }

    /// Materialises the frame as an rss-stamped packet. Pooled buffers
    /// move in without copying; a missing hash (legacy injection paths)
    /// is computed here — once, at materialisation.
    fn into_packet(self) -> Packet {
        let mut pkt = match self.buf {
            FrameBuf::Shared(b) => Packet::new(BytesMut::from(&b[..])),
            FrameBuf::Pooled(b) => Packet::from_pooled(b),
        };
        pkt.meta.rss_hash = self
            .rss
            .or_else(|| FlowKey::from_packet(&pkt).map(|k| k.rss_hash()));
        pkt
    }
}

/// A transmit frame drained off a tx ring by the wire side
/// ([`Nic::drain_tx_frame`]). Derefs to the frame bytes; dropping it
/// returns a pool-leased slab to its [`BufferPool`], which is what
/// keeps the steady-state tx path allocation-free. Use
/// [`Self::into_bytes`] only when the bytes must outlive the lease
/// (it detaches pooled slabs).
pub struct TxFrame {
    buf: FrameBuf,
}

impl TxFrame {
    /// Detaches the frame into plain shared bytes (pooled slabs are
    /// not recycled afterwards — off the zero-copy path).
    pub fn into_bytes(self) -> Bytes {
        self.buf.into_bytes()
    }
}

impl Deref for TxFrame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.buf.as_slice()
    }
}

impl fmt::Debug for TxFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pooled = matches!(self.buf, FrameBuf::Pooled(_));
        write!(
            f,
            "TxFrame({} bytes{})",
            self.buf.as_slice().len(),
            if pooled { ", pooled" } else { "" }
        )
    }
}

/// A simulated NIC with bounded, optionally multi-queue rx/tx rings.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use netkit_kernel::nic::{Nic, PortId};
///
/// let nic = Nic::new(PortId(0), 4, 4, 1_000_000_000);
/// nic.inject_rx(Bytes::from_static(b"frame"));
/// assert_eq!(nic.poll_rx().as_deref(), Some(b"frame".as_ref()));
/// assert_eq!(nic.poll_rx(), None);
///
/// // Multi-queue: RSS steering on inject, per-worker burst drain.
/// let mq = Nic::with_queues(PortId(1), 4, 16, 16, 1_000_000_000);
/// mq.inject_rx_rss(7, Bytes::from_static(b"flow"));
/// assert_eq!(mq.rx_burst_queue(7 % 4, 32).len(), 1);
/// ```
pub struct Nic {
    port: PortId,
    rx: Vec<Ring<RxFrame>>,
    tx: Vec<Ring<FrameBuf>>,
    /// Pool rx frame buffers lease from ([`Self::inject_rx_frame`]).
    pool: Option<BufferPool>,
    /// The RSS indirection table (bucket → queue); identity at boot.
    steering: RwLock<Arc<BucketMap>>,
    rx_capacity: usize,
    tx_capacity: usize,
    link_bps: u64,
    rx_frames: AtomicU64,
    rx_dropped: AtomicU64,
    tx_frames: AtomicU64,
    tx_dropped: AtomicU64,
    tx_bytes: AtomicU64,
}

impl Nic {
    /// Creates a single-queue NIC with the given ring capacities and
    /// link rate (bits per second).
    pub fn new(port: PortId, rx_capacity: usize, tx_capacity: usize, link_bps: u64) -> Self {
        Self::with_queues(port, 1, rx_capacity, tx_capacity, link_bps)
    }

    /// Creates a NIC with `queues` rx/tx ring pairs (one per dataplane
    /// worker); capacities are per ring.
    pub fn with_queues(
        port: PortId,
        queues: usize,
        rx_capacity: usize,
        tx_capacity: usize,
        link_bps: u64,
    ) -> Self {
        let queues = queues.max(1);
        Self {
            port,
            rx: (0..queues).map(|_| Ring::new(rx_capacity)).collect(),
            tx: (0..queues).map(|_| Ring::new(tx_capacity)).collect(),
            pool: None,
            steering: RwLock::new(Arc::new(BucketMap::identity(queues))),
            rx_capacity: rx_capacity.max(1),
            tx_capacity: tx_capacity.max(1),
            link_bps,
            rx_frames: AtomicU64::new(0),
            rx_dropped: AtomicU64::new(0),
            tx_frames: AtomicU64::new(0),
            tx_dropped: AtomicU64::new(0),
            tx_bytes: AtomicU64::new(0),
        }
    }

    /// Attaches a [`BufferPool`] that [`Self::inject_rx_frame`] leases
    /// rx frame buffers from (builder-style). Without one, that path
    /// falls back to plain heap buffers.
    pub fn with_buffer_pool(mut self, pool: BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The attached rx buffer pool, if any.
    pub fn buffer_pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// Installs a new RSS indirection table. Frames injected afterwards
    /// steer by it (entries reduce `% queues` defensively, so a table
    /// built for fewer shards than queues is still safe). Frames
    /// **already sitting in rx rings keep their old queue** — atomic
    /// migration of queued traffic is the dataplane's job
    /// (`ShardedPipeline::install_bucket_map` drains and re-steers them
    /// inside its quiesce), and wire-side injection must be quiescent
    /// across the swap; see the module docs.
    pub fn set_indirection(&self, map: BucketMap) {
        *self.steering.write() = Arc::new(map);
    }

    /// Snapshot of the installed indirection table.
    pub fn indirection(&self) -> BucketMap {
        BucketMap::clone(&self.steering.read())
    }

    /// The NIC's port id.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Number of rx/tx queue pairs.
    pub fn queues(&self) -> usize {
        self.rx.len()
    }

    /// The link rate in bits per second.
    pub fn link_bps(&self) -> u64 {
        self.link_bps
    }

    /// Nanoseconds to serialise `bytes` onto the wire at the link rate.
    pub fn tx_nanos_for(&self, bytes: usize) -> u64 {
        if self.link_bps == 0 {
            return 0;
        }
        (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.link_bps
    }

    fn inject_into(&self, queue: usize, frame: RxFrame) -> bool {
        match self.rx[queue % self.rx.len()].tx.try_send(frame) {
            Ok(()) => {
                self.rx_frames.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.rx_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Delivers a frame into rx queue 0 (called by the wire side).
    /// Returns `false` and counts a drop if the ring is full.
    pub fn inject_rx(&self, frame: Bytes) -> bool {
        self.inject_into(
            0,
            RxFrame {
                buf: FrameBuf::Shared(frame),
                rss: None,
            },
        )
    }

    /// Delivers a frame into the rx queue selected by the RSS `hash`
    /// through the installed indirection table (identity table:
    /// `bucket % queues`) — the hardware steering step that keeps every
    /// flow on one worker. The hash travels with the frame and is
    /// stamped into `meta.rss_hash` at materialisation. Returns `false`
    /// and counts a drop if that ring is full.
    pub fn inject_rx_rss(&self, hash: u64, frame: Bytes) -> bool {
        let queue = self.steering.read().shard_of_hash(hash) % self.rx.len();
        self.inject_into(
            queue,
            RxFrame {
                buf: FrameBuf::Shared(frame),
                rss: Some(hash),
            },
        )
    }

    /// The full hardware rx path in one call: computes the flow's RSS
    /// hash from the wire bytes (once — the hash then travels with the
    /// frame), copies them into a buffer leased from the attached
    /// [`BufferPool`] (the simulated DMA write; plain heap without a
    /// pool), and steers the frame through the indirection table
    /// (non-flow frames follow bucket 0, the same rule as
    /// `netkit_packet::steer::bucket_of_packet` — and a single-queue
    /// NIC behaves identically however many shards the host software
    /// runs). Returns `false` and counts a drop if the ring is full.
    pub fn inject_rx_frame(&self, frame: &[u8]) -> bool {
        let rss = FlowKey::from_frame(frame).map(|k| k.rss_hash());
        let queue = {
            let map = self.steering.read();
            match rss {
                Some(h) => map.shard_of_hash(h) % self.rx.len(),
                None => map.shard_of_bucket(0) % self.rx.len(),
            }
        };
        let buf = match &self.pool {
            Some(pool) => {
                let mut slab = pool.take();
                slab.extend_from_slice(frame);
                FrameBuf::Pooled(slab)
            }
            None => FrameBuf::Shared(Bytes::copy_from_slice(frame)),
        };
        self.inject_into(queue, RxFrame { buf, rss })
    }

    /// Takes the next received frame, scanning queues in index order
    /// (queue-oblivious consumers never strand frames). Pool-leased
    /// frames are detached (not recycled) — use
    /// [`Self::rx_burst_batch`] on the fast path.
    pub fn poll_rx(&self) -> Option<Bytes> {
        self.rx
            .iter()
            .find_map(|ring| ring.rx.try_recv().ok())
            .map(RxFrame::into_bytes)
    }

    /// Takes the next frame from rx queue `queue` only (the per-worker
    /// poll path).
    pub fn poll_rx_queue(&self, queue: usize) -> Option<Bytes> {
        Some(self.rx.get(queue)?.rx.try_recv().ok()?.into_bytes())
    }

    /// Takes up to `max` received frames across all queues in index
    /// order — the poll-mode-driver burst receive for single-worker
    /// callers. Per-queue frame order matches repeated
    /// [`Self::poll_rx`] calls.
    pub fn rx_burst(&self, max: usize) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(max.min(64));
        for ring in &self.rx {
            while out.len() < max {
                match ring.rx.try_recv() {
                    Ok(frame) => out.push(frame.into_bytes()),
                    Err(_) => break,
                }
            }
            if out.len() >= max {
                break;
            }
        }
        out
    }

    /// Takes up to `max` frames from rx queue `queue` only — each
    /// dataplane worker bursts from its own ring, sharing nothing.
    /// Returns an empty burst for unknown queues.
    pub fn rx_burst_queue(&self, queue: usize, max: usize) -> Vec<Bytes> {
        let Some(ring) = self.rx.get(queue) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(max.min(64));
        while out.len() < max {
            match ring.rx.try_recv() {
                Ok(frame) => out.push(frame.into_bytes()),
                Err(_) => break,
            }
        }
        out
    }

    /// The zero-copy worker receive: takes up to `max` frames from rx
    /// queue `queue` and appends them to `batch` as rss-stamped
    /// [`Packet`]s. Pool-leased frame buffers move into the packets
    /// without copying (and return to the pool when the packets drop);
    /// frames from the legacy `Bytes` injection paths are copied once.
    /// Every materialised packet carries `meta.rss_hash` — the hash
    /// computed at injection when available, else parsed here, exactly
    /// once — so no downstream steering decision re-parses headers.
    /// Returns the number of packets appended (0 for unknown queues).
    pub fn rx_burst_batch(&self, queue: usize, max: usize, batch: &mut PacketBatch) -> usize {
        let Some(ring) = self.rx.get(queue) else {
            return 0;
        };
        let mut taken = 0;
        while taken < max {
            match ring.rx.try_recv() {
                Ok(frame) => {
                    batch.push(frame.into_packet());
                    taken += 1;
                }
                Err(_) => break,
            }
        }
        taken
    }

    /// Frames currently waiting across all rx queues.
    pub fn rx_pending(&self) -> usize {
        self.rx.iter().map(|ring| ring.rx.len()).sum()
    }

    fn send_into(&self, queue: usize, frame: FrameBuf) -> bool {
        let len = frame.as_slice().len() as u64;
        match self.tx[queue % self.tx.len()].tx.try_send(frame) {
            Ok(()) => {
                self.tx_frames.fetch_add(1, Ordering::Relaxed);
                self.tx_bytes.fetch_add(len, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.tx_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Moves a packet's frame storage onto the ring: a pool-leased rx
    /// slab keeps its lease (zero copy, recycles after drain), a heap
    /// buffer is frozen (refcount transfer, still no copy).
    fn packet_frame(pkt: Packet) -> FrameBuf {
        match pkt.try_into_pooled() {
            Ok(slab) => FrameBuf::Pooled(slab),
            Err(pkt) => FrameBuf::Shared(pkt.into_data().freeze()),
        }
    }

    /// Queues a frame for transmission on tx queue 0 (called by the
    /// router side). Returns `false` and counts a drop if the ring is
    /// full.
    pub fn send_tx(&self, frame: Bytes) -> bool {
        self.send_into(0, FrameBuf::Shared(frame))
    }

    /// Queues a packet for transmission on tx queue `queue`, **moving**
    /// its frame storage (no copy: pool-leased slabs keep their lease,
    /// heap buffers are frozen) — the zero-copy egress the device
    /// adapter uses. Metadata does not cross onto the wire. Returns
    /// `false` and counts a drop if the ring is full or the queue is
    /// unknown.
    pub fn send_tx_packet(&self, queue: usize, pkt: Packet) -> bool {
        if queue >= self.tx.len() {
            self.tx_dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.send_into(queue, Self::packet_frame(pkt))
    }

    /// Queues a whole batch on tx queue `queue`, moving every packet's
    /// storage (see [`Self::send_tx_packet`]). Frames are accepted in
    /// batch order until the ring fills; the remainder are dropped and
    /// counted. Returns the number accepted — so verdicts are
    /// first-`k`-accepted then queue-full, exactly the scalar sequence.
    /// Unknown queues drop (and count) the whole batch.
    pub fn tx_burst_packets(&self, queue: usize, mut batch: PacketBatch) -> usize {
        if queue >= self.tx.len() {
            self.tx_dropped
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            return 0;
        }
        let ring = &self.tx[queue];
        let mut accepted = 0usize;
        let mut accepted_bytes = 0u64;
        let mut dropped = 0u64;
        // drain_all (not into_iter) keeps the batch container's backing
        // storage, so a pool-homed container recycles whole afterwards.
        for pkt in batch.drain_all() {
            let frame = Self::packet_frame(pkt);
            let len = frame.as_slice().len() as u64;
            match ring.tx.try_send(frame) {
                Ok(()) => {
                    accepted += 1;
                    accepted_bytes += len;
                }
                Err(_) => dropped += 1,
            }
        }
        self.tx_frames.fetch_add(accepted as u64, Ordering::Relaxed);
        self.tx_bytes.fetch_add(accepted_bytes, Ordering::Relaxed);
        self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
        accepted
    }

    /// Queues a burst of frames on tx queue 0 under the single-queue
    /// semantics: frames are accepted in order until the ring fills, the
    /// remainder are dropped and counted. Returns the number accepted.
    pub fn tx_burst(&self, frames: impl IntoIterator<Item = Bytes>) -> usize {
        self.tx_burst_queue(0, frames)
    }

    /// Queues a burst of frames on tx queue `queue` — the per-worker
    /// transmit path. Unknown queues drop (and count) every frame.
    /// Returns the number of frames accepted.
    pub fn tx_burst_queue(&self, queue: usize, frames: impl IntoIterator<Item = Bytes>) -> usize {
        let Some(ring) = self.tx.get(queue) else {
            let dropped = frames.into_iter().count() as u64;
            self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
            return 0;
        };
        let mut accepted = 0usize;
        let mut accepted_bytes = 0u64;
        let mut dropped = 0u64;
        for frame in frames {
            let len = frame.len() as u64;
            match ring.tx.try_send(FrameBuf::Shared(frame)) {
                Ok(()) => {
                    accepted += 1;
                    accepted_bytes += len;
                }
                Err(_) => dropped += 1,
            }
        }
        self.tx_frames.fetch_add(accepted as u64, Ordering::Relaxed);
        self.tx_bytes.fetch_add(accepted_bytes, Ordering::Relaxed);
        self.tx_dropped.fetch_add(dropped, Ordering::Relaxed);
        accepted
    }

    /// Takes the next frame to put on the wire, scanning tx queues in
    /// index order (called by the wire side). Pool-leased frames are
    /// detached (not recycled) — use [`Self::drain_tx_frame`] on the
    /// fast path.
    pub fn drain_tx(&self) -> Option<Bytes> {
        self.tx
            .iter()
            .find_map(|ring| ring.rx.try_recv().ok())
            .map(FrameBuf::into_bytes)
    }

    /// Takes the next frame from tx queue `queue` only (legacy `Bytes`
    /// form; pooled frames detach — see [`Self::drain_tx_frame`]).
    pub fn drain_tx_queue(&self, queue: usize) -> Option<Bytes> {
        Some(self.tx.get(queue)?.rx.try_recv().ok()?.into_bytes())
    }

    /// The zero-copy wire-side drain: takes the next frame from tx
    /// queue `queue` as a [`TxFrame`]. Dropping the frame after
    /// serialising it returns a pool-leased slab to its pool, closing
    /// the allocation-free rx → graph → tx loop.
    pub fn drain_tx_frame(&self, queue: usize) -> Option<TxFrame> {
        Some(TxFrame {
            buf: self.tx.get(queue)?.rx.try_recv().ok()?,
        })
    }

    /// Frames currently waiting across all tx queues.
    pub fn tx_pending(&self) -> usize {
        self.tx.iter().map(|ring| ring.rx.len()).sum()
    }

    /// Snapshot of the NIC counters (aggregated over queues).
    pub fn stats(&self) -> NicStats {
        NicStats {
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_dropped: self.rx_dropped.load(Ordering::Relaxed),
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Nic({}, {} queues, rx {}/{}, tx {}/{})",
            self.port,
            self.queues(),
            self.rx_pending(),
            self.rx_capacity * self.rx.len(),
            self.tx_pending(),
            self.tx_capacity * self.tx.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u8) -> Bytes {
        Bytes::from(vec![n; 64])
    }

    #[test]
    fn rx_ring_drops_when_full() {
        let nic = Nic::new(PortId(1), 2, 2, 1_000_000);
        assert!(nic.inject_rx(frame(1)));
        assert!(nic.inject_rx(frame(2)));
        assert!(!nic.inject_rx(frame(3)));
        let s = nic.stats();
        assert_eq!((s.rx_frames, s.rx_dropped), (2, 1));
        assert_eq!(nic.poll_rx().unwrap()[0], 1);
        assert!(nic.inject_rx(frame(4)), "space reclaimed after poll");
    }

    #[test]
    fn tx_ring_fifo_and_counters() {
        let nic = Nic::new(PortId(0), 2, 2, 1_000_000);
        assert!(nic.send_tx(frame(1)));
        assert!(nic.send_tx(frame(2)));
        assert!(!nic.send_tx(frame(3)));
        assert_eq!(nic.drain_tx().unwrap()[0], 1);
        assert_eq!(nic.drain_tx().unwrap()[0], 2);
        assert_eq!(nic.drain_tx(), None);
        let s = nic.stats();
        assert_eq!((s.tx_frames, s.tx_dropped, s.tx_bytes), (2, 1, 128));
    }

    #[test]
    fn serialisation_delay_matches_link_rate() {
        let nic = Nic::new(PortId(0), 1, 1, 1_000_000_000); // 1 Gbps
                                                            // 1500 bytes = 12000 bits = 12 us at 1 Gbps.
        assert_eq!(nic.tx_nanos_for(1500), 12_000);
        let slow = Nic::new(PortId(1), 1, 1, 10_000_000); // 10 Mbps
        assert_eq!(slow.tx_nanos_for(1500), 1_200_000);
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId(3).to_string(), "eth3");
    }

    #[test]
    fn rss_steering_keeps_hash_on_its_queue() {
        let nic = Nic::with_queues(PortId(0), 4, 8, 8, 1_000_000);
        assert_eq!(nic.queues(), 4);
        for hash in 0..16u64 {
            assert!(nic.inject_rx_rss(hash, frame(hash as u8)));
        }
        // Each queue holds exactly the frames whose hash maps to it.
        for queue in 0..4usize {
            let burst = nic.rx_burst_queue(queue, 32);
            assert_eq!(burst.len(), 4);
            for f in burst {
                assert_eq!(f[0] as usize % 4, queue);
            }
        }
        assert_eq!(nic.rx_pending(), 0);
        assert_eq!(nic.rx_burst_queue(9, 4), Vec::<Bytes>::new());
    }

    #[test]
    fn per_queue_rings_are_independently_bounded() {
        let nic = Nic::with_queues(PortId(0), 2, 2, 2, 1_000_000);
        // Fill queue 0; queue 1 still accepts.
        assert!(nic.inject_rx_rss(0, frame(1)));
        assert!(nic.inject_rx_rss(2, frame(2)));
        assert!(!nic.inject_rx_rss(4, frame(3)), "queue 0 full");
        assert!(nic.inject_rx_rss(1, frame(4)), "queue 1 unaffected");
        let s = nic.stats();
        assert_eq!((s.rx_frames, s.rx_dropped), (3, 1));
    }

    #[test]
    fn queue_oblivious_consumers_see_all_queues() {
        let nic = Nic::with_queues(PortId(0), 2, 4, 4, 1_000_000);
        nic.inject_rx_rss(1, frame(11)); // queue 1
        assert_eq!(nic.poll_rx().unwrap()[0], 11, "poll_rx scans queues");
        nic.tx_burst_queue(1, [frame(9)]);
        assert_eq!(nic.drain_tx().unwrap()[0], 9, "drain_tx scans queues");
    }

    #[test]
    fn pooled_rx_frames_recycle_through_packets() {
        use netkit_packet::packet::PacketBuilder;
        let pool = BufferPool::new(2048, 0, 8);
        let nic = Nic::with_queues(PortId(0), 2, 8, 8, 1_000_000).with_buffer_pool(pool.clone());
        assert!(nic.buffer_pool().is_some());
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let key = FlowKey::from_packet(&wire).unwrap();
        let queue = (key.rss_hash() % 2) as usize;

        assert!(nic.inject_rx_frame(wire.data()));
        assert_eq!(pool.stats().allocated, 1);
        let mut batch = PacketBatch::new();
        assert_eq!(nic.rx_burst_batch(queue, 32, &mut batch), 1);
        assert_eq!(nic.rx_burst_batch(1 - queue, 32, &mut batch), 0);
        assert_eq!(nic.rx_burst_batch(9, 32, &mut batch), 0, "unknown queue");
        // Materialised zero-copy, stamped, bit-identical.
        let pkt = &batch.packets()[0];
        assert_eq!(pkt.data(), wire.data());
        assert_eq!(pkt.meta.rss_hash, Some(key.rss_hash()));
        // Dropping the packet returns the slab to the pool.
        drop(batch);
        assert_eq!(pool.stats().recycled, 1);
        assert!(nic.inject_rx_frame(wire.data()));
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().allocated, 1, "steady state: no new slab");
    }

    #[test]
    fn inject_rx_frame_without_pool_still_steers_and_stamps() {
        use netkit_packet::packet::PacketBuilder;
        let nic = Nic::with_queues(PortId(0), 4, 8, 8, 1_000_000);
        let wire = PacketBuilder::udp_v4("10.0.0.9", "10.0.0.2", 7, 8).build();
        let key = FlowKey::from_packet(&wire).unwrap();
        assert!(nic.inject_rx_frame(wire.data()));
        let mut batch = PacketBatch::new();
        assert_eq!(
            nic.rx_burst_batch((key.rss_hash() % 4) as usize, 32, &mut batch),
            1
        );
        assert_eq!(batch.packets()[0].meta.rss_hash, Some(key.rss_hash()));
        // Non-flow frames park on queue 0.
        assert!(nic.inject_rx_frame(&[0u8; 14]));
        let mut batch0 = PacketBatch::new();
        assert_eq!(nic.rx_burst_batch(0, 32, &mut batch0), 1);
        assert_eq!(batch0.packets()[0].meta.rss_hash, None);
    }

    #[test]
    fn legacy_rss_injection_hash_is_stamped_at_materialisation() {
        let nic = Nic::with_queues(PortId(0), 4, 8, 8, 1_000_000);
        nic.inject_rx_rss(9, frame(1));
        let mut batch = PacketBatch::new();
        assert_eq!(nic.rx_burst_batch(9 % 4, 32, &mut batch), 1);
        assert_eq!(batch.packets()[0].meta.rss_hash, Some(9));
        // And legacy Bytes consumers still see pooled frames.
        let pool = BufferPool::new(256, 0, 4);
        let pooled = Nic::new(PortId(1), 4, 4, 1_000_000).with_buffer_pool(pool.clone());
        assert!(pooled.inject_rx_frame(&[0u8; 14]));
        assert_eq!(pooled.poll_rx().unwrap().len(), 14);
        // Detached, not recycled — documented legacy behaviour.
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn indirection_table_redirects_buckets() {
        use netkit_packet::steer::bucket_of;
        let nic = Nic::with_queues(PortId(0), 4, 8, 8, 1_000_000);
        assert!(nic.indirection().is_identity());
        // Migrate hash 5's bucket from queue 1 to queue 3.
        let mut map = nic.indirection();
        map.set(bucket_of(5), 3);
        nic.set_indirection(map);
        assert!(nic.inject_rx_rss(5, frame(5)));
        assert_eq!(nic.rx_burst_queue(1, 4).len(), 0, "old queue empty");
        assert_eq!(nic.rx_burst_queue(3, 4).len(), 1, "bucket followed table");
        // inject_rx_frame steers through the same table.
        use netkit_packet::packet::PacketBuilder;
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let key = FlowKey::from_packet(&wire).unwrap();
        let mut map = nic.indirection();
        map.set(key.bucket(), 2);
        nic.set_indirection(map);
        assert!(nic.inject_rx_frame(wire.data()));
        let mut batch = PacketBatch::new();
        assert_eq!(nic.rx_burst_batch(2, 4, &mut batch), 1);
        assert_eq!(batch.packets()[0].meta.rss_hash, Some(key.rss_hash()));
    }

    #[test]
    fn tx_packets_keep_their_pool_lease_through_the_ring() {
        use netkit_packet::packet::PacketBuilder;
        let pool = BufferPool::new(2048, 0, 8);
        let nic = Nic::with_queues(PortId(0), 2, 8, 8, 1_000_000).with_buffer_pool(pool.clone());
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 1234, 80).build();
        let queue = FlowKey::from_packet(&wire).unwrap().shard_for(2);

        // rx leg: slab leased, moved into the packet.
        assert!(nic.inject_rx_frame(wire.data()));
        let mut batch = PacketBatch::new();
        assert_eq!(nic.rx_burst_batch(queue, 4, &mut batch), 1);
        assert_eq!(pool.stats().allocated, 1);

        // tx leg: the SAME slab moves onto the tx ring, lease intact.
        assert_eq!(nic.tx_burst_packets(queue, batch), 1);
        assert_eq!(pool.stats().recycled, 0, "lease still outstanding");
        let drained = nic.drain_tx_frame(queue).expect("frame on the wire");
        assert_eq!(&*drained, wire.data());
        assert!(format!("{drained:?}").contains("pooled"));
        drop(drained);
        assert_eq!(pool.stats().recycled, 1, "slab recycled after serialise");
        assert_eq!(nic.stats().tx_frames, 1);

        // Heap-backed packets move without copying too (frozen).
        assert!(nic.send_tx_packet(0, wire.clone()));
        assert_eq!(nic.drain_tx_frame(0).unwrap().len(), wire.len());
        // Unknown queues drop and count.
        assert!(!nic.send_tx_packet(9, wire.clone()));
        let mut b2 = PacketBatch::new();
        b2.push(wire);
        assert_eq!(nic.tx_burst_packets(9, b2), 0);
        assert_eq!(nic.stats().tx_dropped, 2);
        assert!(nic.drain_tx_frame(9).is_none());
    }

    #[test]
    fn legacy_drain_detaches_pooled_tx_frames() {
        use netkit_packet::packet::PacketBuilder;
        let pool = BufferPool::new(2048, 0, 8);
        let nic = Nic::new(PortId(0), 8, 8, 1_000_000).with_buffer_pool(pool.clone());
        let wire = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.2", 7, 8).build();
        assert!(nic.inject_rx_frame(wire.data()));
        let mut batch = PacketBatch::new();
        nic.rx_burst_batch(0, 4, &mut batch);
        assert_eq!(nic.tx_burst_packets(0, batch), 1);
        // Legacy Bytes drain: correct bytes, but the slab detaches.
        assert_eq!(nic.drain_tx().as_deref(), Some(wire.data()));
        assert_eq!(pool.stats().recycled, 0, "documented legacy trade-off");
    }

    #[test]
    fn zero_queue_nic_equals_single_queue() {
        let nic = Nic::with_queues(PortId(0), 0, 4, 4, 1_000_000);
        assert_eq!(nic.queues(), 1);
        assert!(nic.inject_rx_rss(12345, frame(1)), "all hashes map to q0");
        assert_eq!(nic.rx_burst_queue(0, 4).len(), 1);
    }

    #[test]
    fn per_worker_tx_queues_count_into_one_stats_block() {
        let nic = Nic::with_queues(PortId(0), 2, 2, 1, 1_000_000);
        assert_eq!(nic.tx_burst_queue(0, [frame(1), frame(2)]), 1);
        assert_eq!(nic.tx_burst_queue(1, [frame(3)]), 1);
        assert_eq!(nic.tx_burst_queue(7, [frame(4)]), 0, "unknown queue");
        let s = nic.stats();
        assert_eq!((s.tx_frames, s.tx_dropped, s.tx_bytes), (2, 2, 128));
        assert_eq!(nic.drain_tx_queue(0).unwrap()[0], 1);
        assert_eq!(nic.drain_tx_queue(1).unwrap()[0], 3);
        assert_eq!(nic.drain_tx_queue(9), None);
        assert_eq!(nic.poll_rx_queue(0), None);
    }
}
