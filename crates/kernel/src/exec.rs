//! Cooperative executor with pluggable schedulers.
//!
//! The paper's OpenCOM ships a thread-management CF "offering pluggable
//! schedulers" (§2), and its stratum 1 provides the minimal concurrency
//! support programmable routers need. [`Executor`] reproduces that: tasks
//! are cooperative work functions; the scheduling *policy* is a plug-in
//! ([`SchedulePolicy`]) that can be **hot-swapped at run time** — the
//! executor-level analogue of component reconfiguration.
//!
//! Tasks are identified by the same [`TaskId`]s used by the resources
//! meta-model, so CPU accounting flows straight into
//! [`opencom::meta::resources::ResourceManager`].

use std::collections::HashMap;
use std::fmt;

use opencom::ident::TaskId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a task reports after one scheduling quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskStatus {
    /// More work immediately available.
    Ready,
    /// Nothing to do right now; stay runnable but deprioritise.
    Idle,
    /// Finished; remove from the executor.
    Done,
}

/// One run quantum: the work function returns its status and the number
/// of abstract CPU cycles it consumed.
pub type WorkFn = Box<dyn FnMut() -> (TaskStatus, u64) + Send>;

/// Scheduler-visible view of a task.
#[derive(Clone, Copy, Debug)]
pub struct TaskView {
    /// The task's id.
    pub id: TaskId,
    /// Static priority (higher runs first under strict priority).
    pub priority: u8,
    /// Proportional-share weight (used by weighted-fair policies).
    pub weight: u32,
    /// Total cycles consumed so far.
    pub cycles_used: u64,
    /// Virtual runtime (cycles divided by weight) for fairness policies.
    pub vruntime: f64,
}

/// A pluggable scheduling policy.
///
/// Implementations select the next task id from the runnable set. They
/// may keep internal state (round-robin cursors, deficit counters…).
pub trait SchedulePolicy: Send {
    /// Policy name for reporting.
    fn name(&self) -> &'static str;

    /// Picks the next task to run, or `None` to idle.
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId>;
}

/// First-in-first-out: always run the oldest-registered runnable task.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId> {
        runnable.first().map(|t| t.id)
    }
}

/// Round-robin with a rotating cursor.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl SchedulePolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId> {
        if runnable.is_empty() {
            return None;
        }
        let pick = runnable[self.cursor % runnable.len()].id;
        self.cursor = self.cursor.wrapping_add(1);
        Some(pick)
    }
}

/// Strict priority: highest priority first, FIFO within a level.
#[derive(Debug, Default)]
pub struct StrictPriorityPolicy;

impl SchedulePolicy for StrictPriorityPolicy {
    fn name(&self) -> &'static str {
        "strict-priority"
    }
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId> {
        runnable.iter().max_by_key(|t| t.priority).map(|t| t.id)
    }
}

/// Proportional-share lottery scheduling (deterministically seeded).
#[derive(Debug)]
pub struct LotteryPolicy {
    rng: StdRng,
}

impl LotteryPolicy {
    /// Creates a lottery scheduler with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SchedulePolicy for LotteryPolicy {
    fn name(&self) -> &'static str {
        "lottery"
    }
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId> {
        let total: u64 = runnable.iter().map(|t| t.weight as u64).sum();
        if total == 0 {
            return None;
        }
        let mut ticket = self.rng.gen_range(0..total);
        for t in runnable {
            let w = t.weight as u64;
            if ticket < w {
                return Some(t.id);
            }
            ticket -= w;
        }
        None
    }
}

/// Weighted-fair: run the task with the smallest virtual runtime
/// (cycles consumed divided by weight), CFS-style.
#[derive(Debug, Default)]
pub struct WeightedFairPolicy;

impl SchedulePolicy for WeightedFairPolicy {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }
    fn select(&mut self, runnable: &[TaskView]) -> Option<TaskId> {
        runnable
            .iter()
            .min_by(|a, b| a.vruntime.partial_cmp(&b.vruntime).expect("finite"))
            .map(|t| t.id)
    }
}

struct TaskState {
    view: TaskView,
    name: String,
    idle: bool,
    work: WorkFn,
}

struct ExecutorInner {
    tasks: HashMap<TaskId, TaskState>,
    order: Vec<TaskId>,
    policy: Box<dyn SchedulePolicy>,
    slices: u64,
    total_cycles: u64,
}

/// The cooperative executor.
///
/// # Examples
///
/// ```
/// use netkit_kernel::exec::{Executor, RoundRobinPolicy, TaskStatus};
///
/// let exec = Executor::new(Box::new(RoundRobinPolicy::default()));
/// let mut left = 3u32;
/// exec.spawn("countdown", 0, 1, Box::new(move || {
///     left -= 1;
///     (if left == 0 { TaskStatus::Done } else { TaskStatus::Ready }, 10)
/// }));
/// let ran = exec.run_until_idle(100);
/// assert_eq!(ran, 3);
/// assert_eq!(exec.task_count(), 0);
/// ```
pub struct Executor {
    inner: Mutex<ExecutorInner>,
}

impl Executor {
    /// Creates an executor with the given scheduling policy.
    pub fn new(policy: Box<dyn SchedulePolicy>) -> Self {
        Self {
            inner: Mutex::new(ExecutorInner {
                tasks: HashMap::new(),
                order: Vec::new(),
                policy,
                slices: 0,
                total_cycles: 0,
            }),
        }
    }

    /// Registers a task; returns its id (shared with the resources
    /// meta-model's task namespace).
    pub fn spawn(
        &self,
        name: impl Into<String>,
        priority: u8,
        weight: u32,
        work: WorkFn,
    ) -> TaskId {
        let id = TaskId::next();
        let mut inner = self.inner.lock();
        inner.tasks.insert(
            id,
            TaskState {
                view: TaskView {
                    id,
                    priority,
                    weight: weight.max(1),
                    cycles_used: 0,
                    vruntime: 0.0,
                },
                name: name.into(),
                idle: false,
                work,
            },
        );
        inner.order.push(id);
        id
    }

    /// Removes a task before completion.
    pub fn kill(&self, id: TaskId) -> bool {
        let mut inner = self.inner.lock();
        inner.order.retain(|t| *t != id);
        inner.tasks.remove(&id).is_some()
    }

    /// Hot-swaps the scheduling policy; returns the old policy's name.
    pub fn set_policy(&self, policy: Box<dyn SchedulePolicy>) -> &'static str {
        let mut inner = self.inner.lock();
        let old = inner.policy.name();
        inner.policy = policy;
        old
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.inner.lock().policy.name()
    }

    /// Runs one scheduling quantum. Returns the task that ran, or `None`
    /// if nothing was runnable.
    pub fn run_slice(&self) -> Option<TaskId> {
        let mut inner = self.inner.lock();
        // Prefer non-idle tasks; fall back to idle ones so they can poll.
        let runnable: Vec<TaskView> = inner
            .order
            .iter()
            .filter_map(|id| inner.tasks.get(id))
            .filter(|t| !t.idle)
            .map(|t| t.view)
            .collect();
        let pool: Vec<TaskView> = if runnable.is_empty() {
            inner
                .order
                .iter()
                .filter_map(|id| inner.tasks.get(id))
                .map(|t| t.view)
                .collect()
        } else {
            runnable
        };
        let picked = inner.policy.select(&pool)?;
        let state = inner.tasks.get_mut(&picked)?;
        let (status, cycles) = (state.work)();
        state.view.cycles_used += cycles;
        state.view.vruntime = state.view.cycles_used as f64 / state.view.weight as f64;
        state.idle = status == TaskStatus::Idle;
        if status == TaskStatus::Done {
            inner.tasks.remove(&picked);
            inner.order.retain(|t| *t != picked);
        }
        inner.slices += 1;
        inner.total_cycles += cycles;
        Some(picked)
    }

    /// Runs until every task reports [`TaskStatus::Idle`]/completes or
    /// `max_slices` quanta have elapsed. Returns the quanta executed.
    pub fn run_until_idle(&self, max_slices: u64) -> u64 {
        let mut ran = 0;
        while ran < max_slices {
            {
                let inner = self.inner.lock();
                if inner.tasks.is_empty() || inner.tasks.values().all(|t| t.idle) {
                    break;
                }
            }
            if self.run_slice().is_none() {
                break;
            }
            ran += 1;
        }
        ran
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// Cycles consumed by `id` so far, if alive.
    pub fn cycles_used(&self, id: TaskId) -> Option<u64> {
        self.inner.lock().tasks.get(&id).map(|t| t.view.cycles_used)
    }

    /// Name of task `id`, if alive.
    pub fn task_name(&self, id: TaskId) -> Option<String> {
        self.inner.lock().tasks.get(&id).map(|t| t.name.clone())
    }

    /// `(quanta executed, total cycles consumed)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.slices, inner.total_cycles)
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "Executor(policy=`{}`, {} tasks, {} slices)",
            inner.policy.name(),
            inner.tasks.len(),
            inner.slices
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn counting_task(counter: Arc<AtomicU64>, cycles: u64) -> WorkFn {
        Box::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
            (TaskStatus::Ready, cycles)
        })
    }

    #[test]
    fn round_robin_alternates() {
        let exec = Executor::new(Box::new(RoundRobinPolicy::default()));
        let (a, b) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
        exec.spawn("a", 0, 1, counting_task(Arc::clone(&a), 1));
        exec.spawn("b", 0, 1, counting_task(Arc::clone(&b), 1));
        for _ in 0..10 {
            exec.run_slice();
        }
        assert_eq!(a.load(Ordering::Relaxed), 5);
        assert_eq!(b.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn strict_priority_starves_low() {
        let exec = Executor::new(Box::new(StrictPriorityPolicy));
        let (hi, lo) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
        exec.spawn("lo", 1, 1, counting_task(Arc::clone(&lo), 1));
        exec.spawn("hi", 9, 1, counting_task(Arc::clone(&hi), 1));
        for _ in 0..10 {
            exec.run_slice();
        }
        assert_eq!(hi.load(Ordering::Relaxed), 10);
        assert_eq!(lo.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn weighted_fair_splits_by_weight() {
        let exec = Executor::new(Box::new(WeightedFairPolicy));
        let (heavy, light) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
        exec.spawn("heavy", 0, 3, counting_task(Arc::clone(&heavy), 100));
        exec.spawn("light", 0, 1, counting_task(Arc::clone(&light), 100));
        for _ in 0..400 {
            exec.run_slice();
        }
        let h = heavy.load(Ordering::Relaxed) as f64;
        let l = light.load(Ordering::Relaxed) as f64;
        let ratio = h / l;
        assert!((2.5..=3.5).contains(&ratio), "expected ~3:1, got {ratio}");
    }

    #[test]
    fn lottery_is_roughly_proportional_and_deterministic() {
        let run = || {
            let exec = Executor::new(Box::new(LotteryPolicy::new(42)));
            let (a, b) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
            exec.spawn("a", 0, 4, counting_task(Arc::clone(&a), 1));
            exec.spawn("b", 0, 1, counting_task(Arc::clone(&b), 1));
            for _ in 0..1000 {
                exec.run_slice();
            }
            (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed))
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!((a1, b1), (a2, b2), "seeded runs must be identical");
        let ratio = a1 as f64 / b1 as f64;
        assert!((3.0..=5.5).contains(&ratio), "expected ~4:1, got {ratio}");
    }

    #[test]
    fn done_tasks_are_reaped() {
        let exec = Executor::new(Box::new(FifoPolicy));
        let ran = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ran2 = std::sync::Arc::clone(&ran);
        exec.spawn(
            "once",
            0,
            1,
            Box::new(move || {
                ran2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                (TaskStatus::Done, 5)
            }),
        );
        assert_eq!(exec.task_count(), 1);
        exec.run_slice();
        assert_eq!(ran.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(exec.task_count(), 0);
        assert_eq!(exec.run_slice(), None);
    }

    #[test]
    fn idle_tasks_do_not_block_run_until_idle() {
        let exec = Executor::new(Box::new(RoundRobinPolicy::default()));
        exec.spawn("poller", 0, 1, Box::new(|| (TaskStatus::Idle, 1)));
        let ran = exec.run_until_idle(100);
        assert_eq!(ran, 1, "one slice marks the task idle, then we stop");
        assert_eq!(exec.task_count(), 1, "idle tasks stay registered");
    }

    #[test]
    fn policy_hot_swap_takes_effect() {
        let exec = Executor::new(Box::new(StrictPriorityPolicy));
        let (hi, lo) = (Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
        exec.spawn("lo", 1, 1, counting_task(Arc::clone(&lo), 1));
        exec.spawn("hi", 9, 1, counting_task(Arc::clone(&hi), 1));
        for _ in 0..4 {
            exec.run_slice();
        }
        assert_eq!(lo.load(Ordering::Relaxed), 0);
        let old = exec.set_policy(Box::new(RoundRobinPolicy::default()));
        assert_eq!(old, "strict-priority");
        assert_eq!(exec.policy_name(), "round-robin");
        for _ in 0..4 {
            exec.run_slice();
        }
        assert_eq!(lo.load(Ordering::Relaxed), 2, "low-priority task now runs");
    }

    #[test]
    fn kill_removes_task() {
        let exec = Executor::new(Box::new(FifoPolicy));
        let id = exec.spawn("victim", 0, 1, Box::new(|| (TaskStatus::Ready, 1)));
        assert!(exec.kill(id));
        assert!(!exec.kill(id));
        assert_eq!(exec.run_slice(), None);
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let exec = Executor::new(Box::new(FifoPolicy));
        let id = exec.spawn("worker", 0, 1, Box::new(|| (TaskStatus::Ready, 17)));
        exec.run_slice();
        exec.run_slice();
        assert_eq!(exec.cycles_used(id), Some(34));
        let (slices, cycles) = exec.stats();
        assert_eq!((slices, cycles), (2, 34));
        assert_eq!(exec.task_name(id).as_deref(), Some("worker"));
    }
}
