//! Accounted memory: quota-policed allocation tracking.
//!
//! Stratum 1 must offer "basic memory allocation" (paper §5) with the
//! fine-grained resource control of the resources meta-model. NETKIT-RS
//! does not replace the global allocator; instead, [`MemoryAccountant`]
//! tracks logical allocations per owner (a [`TaskId`]) against quotas, so
//! buffer pools and component tables can be policed and the footprint
//! experiment (E3) can report exact per-configuration numbers.

use std::collections::HashMap;
use std::fmt;

use opencom::error::{Error, Result};
use opencom::ident::TaskId;
use parking_lot::Mutex;

#[derive(Debug, Default, Clone, Copy)]
struct Account {
    quota: u64,
    used: u64,
    peak: u64,
}

/// Tracks logical memory use per owner against per-owner quotas.
///
/// # Examples
///
/// ```
/// use netkit_kernel::mem::MemoryAccountant;
/// use opencom::ident::TaskId;
///
/// let mem = MemoryAccountant::new(1024);
/// let task = TaskId::next();
/// mem.set_quota(task, 256);
/// mem.allocate(task, 200)?;
/// assert!(mem.allocate(task, 100).is_err()); // over task quota
/// mem.free(task, 200);
/// assert_eq!(mem.used(task), 0);
/// # Ok::<(), opencom::error::Error>(())
/// ```
pub struct MemoryAccountant {
    capacity: u64,
    total_used: Mutex<u64>,
    accounts: Mutex<HashMap<TaskId, Account>>,
}

impl MemoryAccountant {
    /// Creates an accountant with a global `capacity` in bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            total_used: Mutex::new(0),
            accounts: Mutex::new(HashMap::new()),
        }
    }

    /// Sets (or updates) the quota for `owner`. A quota of `u64::MAX`
    /// means "bounded only by global capacity".
    pub fn set_quota(&self, owner: TaskId, quota: u64) {
        self.accounts.lock().entry(owner).or_default().quota = quota;
    }

    /// Records an allocation of `bytes` by `owner`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::ResourceExhausted`] when the owner quota or the
    /// global capacity would be exceeded; nothing is recorded in that case.
    pub fn allocate(&self, owner: TaskId, bytes: u64) -> Result<()> {
        let mut total = self.total_used.lock();
        if *total + bytes > self.capacity {
            return Err(Error::ResourceExhausted {
                class: "memory".into(),
                requested: bytes,
                available: self.capacity - *total,
            });
        }
        let mut accounts = self.accounts.lock();
        let acct = accounts.entry(owner).or_insert(Account {
            quota: u64::MAX,
            used: 0,
            peak: 0,
        });
        if acct.quota != u64::MAX && acct.used + bytes > acct.quota {
            return Err(Error::ResourceExhausted {
                class: "memory".into(),
                requested: bytes,
                available: acct.quota - acct.used,
            });
        }
        acct.used += bytes;
        acct.peak = acct.peak.max(acct.used);
        *total += bytes;
        Ok(())
    }

    /// Records a free of `bytes` by `owner` (saturating).
    pub fn free(&self, owner: TaskId, bytes: u64) {
        let mut accounts = self.accounts.lock();
        if let Some(acct) = accounts.get_mut(&owner) {
            let freed = bytes.min(acct.used);
            acct.used -= freed;
            *self.total_used.lock() -= freed;
        }
    }

    /// Bytes currently attributed to `owner`.
    pub fn used(&self, owner: TaskId) -> u64 {
        self.accounts.lock().get(&owner).map_or(0, |a| a.used)
    }

    /// The owner's high-water mark.
    pub fn peak(&self, owner: TaskId) -> u64 {
        self.accounts.lock().get(&owner).map_or(0, |a| a.peak)
    }

    /// Bytes in use across all owners.
    pub fn total_used(&self) -> u64 {
        *self.total_used.lock()
    }

    /// Global capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl fmt::Debug for MemoryAccountant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemoryAccountant({}/{} bytes, {} owners)",
            self.total_used(),
            self.capacity,
            self.accounts.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_capacity_is_enforced() {
        let mem = MemoryAccountant::new(100);
        let a = TaskId::next();
        let b = TaskId::next();
        mem.allocate(a, 60).unwrap();
        let err = mem.allocate(b, 60).unwrap_err();
        assert!(matches!(
            err,
            Error::ResourceExhausted { available: 40, .. }
        ));
        assert_eq!(mem.total_used(), 60);
    }

    #[test]
    fn per_owner_quota_is_enforced() {
        let mem = MemoryAccountant::new(1_000_000);
        let t = TaskId::next();
        mem.set_quota(t, 128);
        mem.allocate(t, 100).unwrap();
        assert!(mem.allocate(t, 29).is_err());
        mem.allocate(t, 28).unwrap();
        assert_eq!(mem.used(t), 128);
    }

    #[test]
    fn failed_allocation_records_nothing() {
        let mem = MemoryAccountant::new(100);
        let t = TaskId::next();
        mem.set_quota(t, 10);
        assert!(mem.allocate(t, 11).is_err());
        assert_eq!(mem.used(t), 0);
        assert_eq!(mem.total_used(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mem = MemoryAccountant::new(1000);
        let t = TaskId::next();
        mem.allocate(t, 300).unwrap();
        mem.free(t, 200);
        mem.allocate(t, 100).unwrap();
        assert_eq!(mem.used(t), 200);
        assert_eq!(mem.peak(t), 300);
    }

    #[test]
    fn over_free_saturates() {
        let mem = MemoryAccountant::new(1000);
        let t = TaskId::next();
        mem.allocate(t, 50).unwrap();
        mem.free(t, 500);
        assert_eq!(mem.used(t), 0);
        assert_eq!(mem.total_used(), 0);
    }
}
