//! A cycle-cost model of the Intel IXP1200 network processor.
//!
//! Paper §5 plans to re-implement the Router CF on the IXP1200, whose
//! "exotic hardware architecture" comprises a StrongARM control processor,
//! six Intel 'micro-engine' processors with four hardware contexts each,
//! and a distributed/hierarchical memory array (on-chip scratchpad,
//! off-chip SRAM and SDRAM). The open question the paper raises is
//! *component placement*: which processor should each component run on,
//! managed transparently by the CF but overridable through a *placement
//! meta-model*.
//!
//! No IXP1200 hardware exists here, so [`IxpModel`] substitutes an
//! analytic cycle model (documented in `DESIGN.md`): each pipeline stage
//! declares per-packet compute cycles and memory references; processors
//! differ in clock rate and in memory-latency hiding (micro-engines
//! overlap stalls across hardware contexts, the StrongARM cannot); and
//! crossing processors costs a scratch-ring handoff. The *relative*
//! ranking of placements — which is what the placement experiment (E7)
//! needs — is preserved.

use std::collections::HashMap;
use std::fmt;

use opencom::error::{Error, Result};

/// The processors of an IXP1200.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Processor {
    /// The StrongARM control processor (runs the control plane; can also
    /// forward packets, slowly).
    StrongArm,
    /// One of the micro-engines (0-based index).
    Microengine(u8),
}

impl fmt::Display for Processor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Processor::StrongArm => write!(f, "sa"),
            Processor::Microengine(i) => write!(f, "ueng{i}"),
        }
    }
}

/// The memory hierarchy levels of the IXP1200.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemoryRegion {
    /// 4 KB on-chip scratchpad (~1 cycle).
    Scratchpad,
    /// 8 MB SRAM (~8 cycles).
    Sram,
    /// 256 MB SDRAM (~33 cycles).
    Sdram,
}

impl MemoryRegion {
    /// Access latency in processor cycles.
    pub const fn access_cycles(&self) -> u64 {
        match self {
            MemoryRegion::Scratchpad => 1,
            MemoryRegion::Sram => 8,
            MemoryRegion::Sdram => 33,
        }
    }

    /// Capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        match self {
            MemoryRegion::Scratchpad => 4 * 1024,
            MemoryRegion::Sram => 8 * 1024 * 1024,
            MemoryRegion::Sdram => 256 * 1024 * 1024,
        }
    }
}

/// Hardware parameters (defaults follow the IXP1200 datasheet).
#[derive(Clone, Copy, Debug)]
pub struct IxpConfig {
    /// Number of micro-engines.
    pub microengines: u8,
    /// Hardware contexts per micro-engine (memory-latency hiding depth).
    pub contexts_per_me: u32,
    /// StrongARM clock in MHz.
    pub strongarm_mhz: u64,
    /// Micro-engine clock in MHz.
    pub microengine_mhz: u64,
    /// One-sided scratch-ring handoff cost in cycles when consecutive
    /// stages run on different processors.
    pub handoff_cycles: u64,
}

impl Default for IxpConfig {
    fn default() -> Self {
        Self {
            microengines: 6,
            contexts_per_me: 4,
            strongarm_mhz: 232,
            microengine_mhz: 200,
            handoff_cycles: 40,
        }
    }
}

/// Per-packet cost profile of one pipeline stage (one component).
#[derive(Clone, Debug)]
pub struct StageProfile {
    /// Stage name (component type).
    pub name: String,
    /// Pure compute cycles per packet.
    pub compute_cycles: u64,
    /// Memory references per packet: `(region, count)`.
    pub mem_refs: Vec<(MemoryRegion, u32)>,
    /// Resident state and where it must live.
    pub state: Option<(MemoryRegion, u64)>,
}

impl StageProfile {
    /// Creates a stage profile with no memory references or state.
    pub fn new(name: impl Into<String>, compute_cycles: u64) -> Self {
        Self {
            name: name.into(),
            compute_cycles,
            mem_refs: Vec::new(),
            state: None,
        }
    }

    /// Adds `count` references to `region` per packet (builder-style).
    pub fn mem(mut self, region: MemoryRegion, count: u32) -> Self {
        self.mem_refs.push((region, count));
        self
    }

    /// Declares resident state of `bytes` in `region` (builder-style).
    pub fn state(mut self, region: MemoryRegion, bytes: u64) -> Self {
        self.state = Some((region, bytes));
        self
    }

    /// Raw memory stall cycles per packet (before latency hiding).
    pub fn mem_stall_cycles(&self) -> u64 {
        self.mem_refs
            .iter()
            .map(|(region, count)| region.access_cycles() * *count as u64)
            .sum()
    }
}

/// An ordered packet pipeline to be placed onto the chip.
#[derive(Clone, Debug, Default)]
pub struct PipelineSpec {
    /// Stages in packet-flow order.
    pub stages: Vec<StageProfile>,
}

impl PipelineSpec {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage (builder-style).
    pub fn stage(mut self, stage: StageProfile) -> Self {
        self.stages.push(stage);
        self
    }
}

/// A complete assignment of pipeline stages to processors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// `assignment[i]` is where stage `i` runs.
    pub assignment: Vec<Processor>,
}

/// Built-in placement policies — the intelligence the paper wants the CF
/// to contain, with [`PlacementPolicy::Manual`] as the placement
/// meta-model's override hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Everything on the StrongARM (the naive port).
    AllStrongArm,
    /// Stage *i* on micro-engine *i mod N* (ignores stage weight).
    RoundRobinMicroengines,
    /// Greedy load balancing: each stage goes to the processor whose
    /// finishing time (including handoff penalties) stays smallest.
    LoadBalanced,
    /// An explicit user-provided placement (the meta-model override).
    Manual(Placement),
}

/// The outcome of evaluating one placement.
#[derive(Clone, Debug)]
pub struct PlacementReport {
    /// Time per packet on each processor, in nanoseconds (the pipeline is
    /// limited by the slowest).
    pub per_processor_ns: HashMap<Processor, f64>,
    /// The bottleneck processor.
    pub bottleneck: Processor,
    /// Sustained throughput in packets per second.
    pub throughput_pps: f64,
    /// Number of inter-processor handoffs along the pipeline.
    pub handoffs: u32,
}

/// The analytic IXP1200 model.
#[derive(Clone, Copy, Debug, Default)]
pub struct IxpModel {
    /// Hardware parameters.
    pub config: IxpConfig,
}

impl IxpModel {
    /// Creates a model with default (datasheet) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    fn clock_hz(&self, p: Processor) -> f64 {
        match p {
            Processor::StrongArm => self.config.strongarm_mhz as f64 * 1e6,
            Processor::Microengine(_) => self.config.microengine_mhz as f64 * 1e6,
        }
    }

    /// Per-packet cycles stage `s` costs on processor `p`.
    ///
    /// Micro-engines hide memory stalls across their hardware contexts
    /// (divide by `contexts_per_me`); the StrongARM takes them in full.
    pub fn stage_cycles_on(&self, s: &StageProfile, p: Processor) -> f64 {
        let stalls = s.mem_stall_cycles() as f64;
        match p {
            Processor::StrongArm => s.compute_cycles as f64 + stalls,
            Processor::Microengine(_) => {
                s.compute_cycles as f64 + stalls / self.config.contexts_per_me as f64
            }
        }
    }

    /// Validates a placement's shape and memory-capacity fit.
    ///
    /// # Errors
    ///
    /// * [`Error::StaleReference`] if lengths mismatch or a micro-engine
    ///   index is out of range.
    /// * [`Error::ResourceExhausted`] if the resident state pinned to a
    ///   region exceeds its capacity.
    pub fn validate(&self, spec: &PipelineSpec, placement: &Placement) -> Result<()> {
        if placement.assignment.len() != spec.stages.len() {
            return Err(Error::StaleReference {
                what: format!(
                    "placement covers {} stages, pipeline has {}",
                    placement.assignment.len(),
                    spec.stages.len()
                ),
            });
        }
        for p in &placement.assignment {
            if let Processor::Microengine(i) = p {
                if *i >= self.config.microengines {
                    return Err(Error::StaleReference {
                        what: format!("microengine {i} out of range"),
                    });
                }
            }
        }
        let mut region_use: HashMap<MemoryRegion, u64> = HashMap::new();
        for stage in &spec.stages {
            if let Some((region, bytes)) = stage.state {
                *region_use.entry(region).or_insert(0) += bytes;
            }
        }
        for (region, used) in region_use {
            if used > region.capacity_bytes() {
                return Err(Error::ResourceExhausted {
                    class: format!("ixp-{region:?}"),
                    requested: used,
                    available: region.capacity_bytes(),
                });
            }
        }
        Ok(())
    }

    /// Computes a placement under `policy`.
    pub fn place(&self, spec: &PipelineSpec, policy: &PlacementPolicy) -> Placement {
        match policy {
            PlacementPolicy::AllStrongArm => Placement {
                assignment: vec![Processor::StrongArm; spec.stages.len()],
            },
            PlacementPolicy::RoundRobinMicroengines => Placement {
                assignment: (0..spec.stages.len())
                    .map(|i| Processor::Microengine((i % self.config.microengines as usize) as u8))
                    .collect(),
            },
            PlacementPolicy::LoadBalanced => self.place_load_balanced(spec),
            PlacementPolicy::Manual(p) => p.clone(),
        }
    }

    fn place_load_balanced(&self, spec: &PipelineSpec) -> Placement {
        let mut load_ns: HashMap<Processor, f64> = HashMap::new();
        let mut candidates: Vec<Processor> = (0..self.config.microengines)
            .map(Processor::Microengine)
            .collect();
        candidates.push(Processor::StrongArm);
        let mut assignment: Vec<Processor> = Vec::with_capacity(spec.stages.len());
        for (idx, stage) in spec.stages.iter().enumerate() {
            let mut best: Option<(Processor, f64)> = None;
            for p in &candidates {
                let mut cycles = self.stage_cycles_on(stage, *p);
                if idx > 0 && assignment[idx - 1] != *p {
                    cycles += self.config.handoff_cycles as f64;
                }
                let ns = cycles / self.clock_hz(*p) * 1e9;
                let total = load_ns.get(p).copied().unwrap_or(0.0) + ns;
                match best {
                    Some((_, best_total)) if total >= best_total => {}
                    _ => best = Some((*p, total)),
                }
            }
            let (chosen, total) = best.expect("candidates non-empty");
            load_ns.insert(chosen, total);
            assignment.push(chosen);
        }
        Placement { assignment }
    }

    /// Evaluates throughput for `spec` under `placement`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::validate`] failures.
    pub fn evaluate(&self, spec: &PipelineSpec, placement: &Placement) -> Result<PlacementReport> {
        self.validate(spec, placement)?;
        let mut per_processor_cycles: HashMap<Processor, f64> = HashMap::new();
        let mut handoffs = 0u32;
        for (idx, stage) in spec.stages.iter().enumerate() {
            let p = placement.assignment[idx];
            let mut cycles = self.stage_cycles_on(stage, p);
            if idx > 0 && placement.assignment[idx - 1] != p {
                handoffs += 1;
                // Producer pays the enqueue, consumer pays the dequeue.
                let prev = placement.assignment[idx - 1];
                *per_processor_cycles.entry(prev).or_insert(0.0) +=
                    self.config.handoff_cycles as f64;
                cycles += self.config.handoff_cycles as f64;
            }
            *per_processor_cycles.entry(p).or_insert(0.0) += cycles;
        }
        let per_processor_ns: HashMap<Processor, f64> = per_processor_cycles
            .iter()
            .map(|(p, cycles)| (*p, cycles / self.clock_hz(*p) * 1e9))
            .collect();
        let (&bottleneck, &worst_ns) = per_processor_ns
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("pipeline non-empty");
        Ok(PlacementReport {
            per_processor_ns: per_processor_ns.clone(),
            bottleneck,
            throughput_pps: 1e9 / worst_ns,
            handoffs,
        })
    }
}

/// A representative IPv4 forwarding pipeline with literature-flavoured
/// per-stage costs, used by tests, examples, and the placement bench.
pub fn reference_forwarding_pipeline() -> PipelineSpec {
    PipelineSpec::new()
        .stage(StageProfile::new("rx-dma", 30).mem(MemoryRegion::Sdram, 2))
        .stage(StageProfile::new("proto-recognise", 20).mem(MemoryRegion::Scratchpad, 2))
        .stage(
            StageProfile::new("ipv4-verify", 45)
                .mem(MemoryRegion::Sdram, 1)
                .mem(MemoryRegion::Scratchpad, 2),
        )
        .stage(
            StageProfile::new("route-lookup", 60)
                .mem(MemoryRegion::Sram, 4)
                .state(MemoryRegion::Sram, 512 * 1024),
        )
        .stage(StageProfile::new("ttl-checksum", 25).mem(MemoryRegion::Sdram, 1))
        .stage(
            StageProfile::new("queue", 20)
                .mem(MemoryRegion::Sram, 2)
                .state(MemoryRegion::Sram, 64 * 1024),
        )
        .stage(StageProfile::new("tx-schedule", 35).mem(MemoryRegion::Scratchpad, 2))
        .stage(StageProfile::new("tx-dma", 30).mem(MemoryRegion::Sdram, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microengines_hide_memory_latency() {
        let model = IxpModel::new();
        let stage = StageProfile::new("s", 10).mem(MemoryRegion::Sdram, 4); // 132 stall cycles
        let on_sa = model.stage_cycles_on(&stage, Processor::StrongArm);
        let on_me = model.stage_cycles_on(&stage, Processor::Microengine(0));
        assert_eq!(on_sa, 10.0 + 132.0);
        assert_eq!(on_me, 10.0 + 33.0);
    }

    #[test]
    fn load_balanced_beats_all_strongarm() {
        let model = IxpModel::new();
        let spec = reference_forwarding_pipeline();
        let sa = model.place(&spec, &PlacementPolicy::AllStrongArm);
        let lb = model.place(&spec, &PlacementPolicy::LoadBalanced);
        let sa_report = model.evaluate(&spec, &sa).unwrap();
        let lb_report = model.evaluate(&spec, &lb).unwrap();
        assert!(
            lb_report.throughput_pps > 2.0 * sa_report.throughput_pps,
            "parallel placement should win clearly: {} vs {}",
            lb_report.throughput_pps,
            sa_report.throughput_pps
        );
    }

    #[test]
    fn load_balanced_not_worse_than_round_robin() {
        let model = IxpModel::new();
        let spec = reference_forwarding_pipeline();
        let rr = model.place(&spec, &PlacementPolicy::RoundRobinMicroengines);
        let lb = model.place(&spec, &PlacementPolicy::LoadBalanced);
        let rr_t = model.evaluate(&spec, &rr).unwrap().throughput_pps;
        let lb_t = model.evaluate(&spec, &lb).unwrap().throughput_pps;
        assert!(
            lb_t >= rr_t * 0.95,
            "greedy ({lb_t}) must not lose badly to rr ({rr_t})"
        );
    }

    #[test]
    fn all_strongarm_has_no_handoffs() {
        let model = IxpModel::new();
        let spec = reference_forwarding_pipeline();
        let sa = model.place(&spec, &PlacementPolicy::AllStrongArm);
        let report = model.evaluate(&spec, &sa).unwrap();
        assert_eq!(report.handoffs, 0);
        assert_eq!(report.bottleneck, Processor::StrongArm);
    }

    #[test]
    fn manual_placement_is_respected() {
        let model = IxpModel::new();
        let spec = PipelineSpec::new()
            .stage(StageProfile::new("a", 10))
            .stage(StageProfile::new("b", 10));
        let manual = Placement {
            assignment: vec![Processor::Microengine(2), Processor::Microengine(5)],
        };
        let placed = model.place(&spec, &PlacementPolicy::Manual(manual.clone()));
        assert_eq!(placed, manual);
        let report = model.evaluate(&spec, &placed).unwrap();
        assert_eq!(report.handoffs, 1);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let model = IxpModel::new();
        let spec = PipelineSpec::new().stage(StageProfile::new("a", 10));
        let short = Placement { assignment: vec![] };
        assert!(model.validate(&spec, &short).is_err());
        let bad_me = Placement {
            assignment: vec![Processor::Microengine(9)],
        };
        assert!(model.validate(&spec, &bad_me).is_err());
    }

    #[test]
    fn validate_rejects_oversized_state() {
        let model = IxpModel::new();
        let spec = PipelineSpec::new()
            .stage(StageProfile::new("fat", 1).state(MemoryRegion::Scratchpad, 64 * 1024));
        let p = model.place(&spec, &PlacementPolicy::AllStrongArm);
        let err = model.evaluate(&spec, &p).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted { .. }));
    }

    #[test]
    fn throughput_is_bottleneck_bound() {
        let model = IxpModel::new();
        // Two equal stages on different MEs: throughput set by one stage,
        // not the sum.
        let spec = PipelineSpec::new()
            .stage(StageProfile::new("a", 200))
            .stage(StageProfile::new("b", 200));
        let split = Placement {
            assignment: vec![Processor::Microengine(0), Processor::Microengine(1)],
        };
        let report = model.evaluate(&spec, &split).unwrap();
        let expected = 200e6 / 240.0; // 200 MHz / (200 compute + 40 handoff)
        let ratio = report.throughput_pps / expected;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "got {}",
            report.throughput_pps
        );
    }
}
