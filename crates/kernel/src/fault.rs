//! Deterministic, replayable fault injection for the self-healing
//! dataplane.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, and faults found by accident do not replay. A [`FaultPlan`]
//! makes the fault schedule an *input*: seeded, deterministic, and
//! shared between the router's chaos tests and the sim's node
//! behaviours, so a failing seed reproduces bit-for-bit.
//!
//! One plan bundles the three fault families the chaos suite needs:
//!
//! * **Crash** — [`FaultPlan::should_panic`] fires exactly once, on the
//!   configured n-th packet ([`FaultConfig::panic_on_nth`]). An element
//!   wrapper (or sim behaviour) calls it per packet and panics when it
//!   returns true, killing that worker mid-run — the trigger for the
//!   respawn/quarantine recovery path.
//! * **Wire faults** — [`FaultPlan::rx_action`] draws a deterministic
//!   [`RxFault`] per frame (drop / corrupt / duplicate / deliver) from
//!   the seeded RNG; [`FaultPlan::inject_rx`] applies it in front of a
//!   [`Nic`]'s rx path. Every injected fault is counted on the plan
//!   ([`FaultPlan::stats`]) so tests can close the loss-accounting
//!   books: frames the plan dropped or duplicated are *expected*
//!   deviations, anything else is a real bug.
//! * **Ring pressure** — [`FaultPlan::hold`] wedges cooperating
//!   handlers (they call [`FaultPlan::wait_if_held`] per item) so
//!   submissions pile up behind a stalled worker and the ring-full
//!   paths are exercised on demand; [`FaultPlan::release`] lets the
//!   backlog drain.
//!
//! The plan is `Sync` and cheap to share (`Arc<FaultPlan>`); all
//! counters are atomics and the RNG sits behind a mutex that is only
//! touched on the rx-injection path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::nic::Nic;

/// What to do with one received frame — drawn deterministically from
/// the plan's seeded RNG by [`FaultPlan::rx_action`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxFault {
    /// Deliver the frame unmodified (the overwhelmingly common case).
    Deliver,
    /// Lose the frame before the NIC sees it (wire loss).
    Drop,
    /// Flip one deterministic byte, then deliver (wire corruption).
    Corrupt,
    /// Deliver the frame twice (e.g. a retransmit race).
    Duplicate,
}

/// Configuration of a [`FaultPlan`]: the seed plus the fault mix.
///
/// Probabilities are per-frame and evaluated in a fixed order (drop,
/// corrupt, duplicate) so a given seed + config always yields the same
/// schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for the plan's deterministic RNG.
    pub seed: u64,
    /// Panic on exactly the n-th packet (1-based) observed via
    /// [`FaultPlan::should_panic`]; `None` disables the crash fault.
    pub panic_on_nth: Option<u64>,
    /// Per-frame probability of [`RxFault::Drop`].
    pub rx_drop: f64,
    /// Per-frame probability of [`RxFault::Corrupt`].
    pub rx_corrupt: f64,
    /// Per-frame probability of [`RxFault::Duplicate`].
    pub rx_duplicate: f64,
}

impl FaultConfig {
    /// A benign plan (no faults at all) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_on_nth: None,
            rx_drop: 0.0,
            rx_corrupt: 0.0,
            rx_duplicate: 0.0,
        }
    }

    /// Arms the crash fault: panic on the `n`-th observed packet
    /// (1-based, clamped to ≥ 1).
    pub fn panic_on_nth(mut self, n: u64) -> Self {
        self.panic_on_nth = Some(n.max(1));
        self
    }

    /// Sets the per-frame drop probability (clamped to `[0, 1]`).
    pub fn rx_drop(mut self, p: f64) -> Self {
        self.rx_drop = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-frame corruption probability (clamped to `[0, 1]`).
    pub fn rx_corrupt(mut self, p: f64) -> Self {
        self.rx_corrupt = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-frame duplication probability (clamped to
    /// `[0, 1]`).
    pub fn rx_duplicate(mut self, p: f64) -> Self {
        self.rx_duplicate = p.clamp(0.0, 1.0);
        self
    }
}

/// Everything a fault plan did, for closing the accounting books.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to [`FaultPlan::inject_rx`].
    pub rx_frames: u64,
    /// Frames the plan dropped before the NIC ([`RxFault::Drop`]).
    pub rx_dropped: u64,
    /// Frames the plan corrupted ([`RxFault::Corrupt`]).
    pub rx_corrupted: u64,
    /// Frames the plan duplicated ([`RxFault::Duplicate`]) — each adds
    /// one *extra* delivery.
    pub rx_duplicated: u64,
    /// Crash faults fired ([`FaultPlan::should_panic`] returned true).
    pub panics_fired: u64,
}

/// A seeded, replayable fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Mutex<SmallRng>,
    packets_seen: AtomicU64,
    rx_frames: AtomicU64,
    rx_dropped: AtomicU64,
    rx_corrupted: AtomicU64,
    rx_duplicated: AtomicU64,
    panics_fired: AtomicU64,
    held: AtomicBool,
    hold_gate: Mutex<()>,
    hold_cv: Condvar,
}

impl FaultPlan {
    /// Builds the plan for `cfg`; the same config always produces the
    /// same schedule.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            rng: Mutex::new(SmallRng::seed_from_u64(cfg.seed)),
            packets_seen: AtomicU64::new(0),
            rx_frames: AtomicU64::new(0),
            rx_dropped: AtomicU64::new(0),
            rx_corrupted: AtomicU64::new(0),
            rx_duplicated: AtomicU64::new(0),
            panics_fired: AtomicU64::new(0),
            held: AtomicBool::new(false),
            hold_gate: Mutex::new(()),
            hold_cv: Condvar::new(),
        }
    }

    /// A benign plan (no faults) — useful as the control arm of a
    /// chaos experiment.
    pub fn benign(seed: u64) -> Self {
        Self::new(FaultConfig::new(seed))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Counts one observed packet and reports whether the crash fault
    /// fires on it. Fires **exactly once**: only the packet whose
    /// 1-based index equals [`FaultConfig::panic_on_nth`] returns true.
    /// The caller (an element wrapper, a sim behaviour, a worker
    /// handler) is the one that actually panics — the plan only keeps
    /// the deterministic count.
    pub fn should_panic(&self) -> bool {
        let n = self.packets_seen.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cfg.panic_on_nth == Some(n) {
            self.panics_fired.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Packets observed via [`Self::should_panic`] so far.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen.load(Ordering::Relaxed)
    }

    /// Draws the fault for the next rx frame from the seeded RNG and
    /// counts it. Deterministic: same seed, same call sequence, same
    /// schedule.
    pub fn rx_action(&self) -> RxFault {
        self.rx_frames.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        // Fixed evaluation order keeps the schedule a pure function of
        // (seed, frame index) regardless of which probabilities are 0.
        let roll: f64 = rng.gen();
        if roll < self.cfg.rx_drop {
            self.rx_dropped.fetch_add(1, Ordering::Relaxed);
            return RxFault::Drop;
        }
        if roll < self.cfg.rx_drop + self.cfg.rx_corrupt {
            self.rx_corrupted.fetch_add(1, Ordering::Relaxed);
            return RxFault::Corrupt;
        }
        if roll < self.cfg.rx_drop + self.cfg.rx_corrupt + self.cfg.rx_duplicate {
            self.rx_duplicated.fetch_add(1, Ordering::Relaxed);
            return RxFault::Duplicate;
        }
        RxFault::Deliver
    }

    /// Applies this plan to one frame in front of `nic`'s rx path: the
    /// drop/corrupt/duplicate injector for wire-level chaos. Returns
    /// the action taken and how many copies actually entered the NIC
    /// (0 for a drop or a full rx ring, 2 for a duplicate that fit
    /// twice).
    ///
    /// Corruption flips one deterministically chosen byte, so a
    /// corrupted frame may fail header parsing downstream — which is
    /// the point: the dataplane must account it, not wedge on it.
    pub fn inject_rx(&self, nic: &Nic, frame: &[u8]) -> (RxFault, usize) {
        let action = self.rx_action();
        let delivered = match action {
            RxFault::Deliver => usize::from(nic.inject_rx_frame(frame)),
            RxFault::Drop => 0,
            RxFault::Corrupt => {
                let mut copy = frame.to_vec();
                if !copy.is_empty() {
                    let idx = {
                        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
                        rng.gen_range(0..copy.len())
                    };
                    copy[idx] ^= 0xFF;
                }
                usize::from(nic.inject_rx_frame(&copy))
            }
            RxFault::Duplicate => {
                usize::from(nic.inject_rx_frame(frame)) + usize::from(nic.inject_rx_frame(frame))
            }
        };
        (action, delivered)
    }

    /// Starts forced ring pressure: cooperating handlers block in
    /// [`Self::wait_if_held`] until [`Self::release`], so upstream
    /// rings fill and the ring-full drop/backpressure paths run.
    pub fn hold(&self) {
        self.held.store(true, Ordering::SeqCst);
    }

    /// Ends forced ring pressure and wakes every blocked handler.
    pub fn release(&self) {
        self.held.store(false, Ordering::SeqCst);
        let _gate = self.hold_gate.lock().unwrap_or_else(|e| e.into_inner());
        self.hold_cv.notify_all();
    }

    /// True while [`Self::hold`] pressure is active.
    pub fn is_held(&self) -> bool {
        self.held.load(Ordering::SeqCst)
    }

    /// Blocks while the plan is held ([`Self::hold`]); returns
    /// immediately otherwise. Fault-injection wrappers call this per
    /// item to let a test wedge a worker at a deterministic point.
    pub fn wait_if_held(&self) {
        if !self.is_held() {
            return;
        }
        let mut gate = self.hold_gate.lock().unwrap_or_else(|e| e.into_inner());
        while self.held.load(Ordering::SeqCst) {
            gate = self.hold_cv.wait(gate).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Snapshot of everything the plan has done so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_dropped: self.rx_dropped.load(Ordering::Relaxed),
            rx_corrupted: self.rx_corrupted.load(Ordering::Relaxed),
            rx_duplicated: self.rx_duplicated.load(Ordering::Relaxed),
            panics_fired: self.panics_fired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(cfg: FaultConfig, frames: usize) -> Vec<RxFault> {
        let plan = FaultPlan::new(cfg);
        (0..frames).map(|_| plan.rx_action()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::new(42)
            .rx_drop(0.1)
            .rx_corrupt(0.1)
            .rx_duplicate(0.1);
        assert_eq!(schedule(cfg, 256), schedule(cfg, 256));
        let other = FaultConfig { seed: 43, ..cfg };
        assert_ne!(schedule(cfg, 256), schedule(other, 256));
    }

    #[test]
    fn benign_plan_never_faults() {
        let plan = FaultPlan::benign(7);
        for _ in 0..128 {
            assert_eq!(plan.rx_action(), RxFault::Deliver);
            assert!(!plan.should_panic());
        }
        let stats = plan.stats();
        assert_eq!(stats.rx_frames, 128);
        assert_eq!(
            stats.rx_dropped + stats.rx_corrupted + stats.rx_duplicated,
            0
        );
        assert_eq!(stats.panics_fired, 0);
    }

    #[test]
    fn panic_fires_exactly_once_on_the_nth_packet() {
        let plan = FaultPlan::new(FaultConfig::new(1).panic_on_nth(5));
        let fired: Vec<bool> = (0..10).map(|_| plan.should_panic()).collect();
        assert_eq!(
            fired,
            [false, false, false, false, true, false, false, false, false, false]
        );
        assert_eq!(plan.stats().panics_fired, 1);
        assert_eq!(plan.packets_seen(), 10);
    }

    #[test]
    fn fault_mix_respects_probabilities_and_counts() {
        let plan = FaultPlan::new(FaultConfig::new(99).rx_drop(0.5).rx_duplicate(0.25));
        let mut seen = [0u64; 4];
        for _ in 0..4096 {
            match plan.rx_action() {
                RxFault::Deliver => seen[0] += 1,
                RxFault::Drop => seen[1] += 1,
                RxFault::Corrupt => seen[2] += 1,
                RxFault::Duplicate => seen[3] += 1,
            }
        }
        let stats = plan.stats();
        assert_eq!(stats.rx_frames, 4096);
        assert_eq!(stats.rx_dropped, seen[1]);
        assert_eq!(stats.rx_corrupted, seen[2]);
        assert_eq!(stats.rx_duplicated, seen[3]);
        assert_eq!(seen[2], 0, "corrupt probability is zero");
        // Coarse sanity on the mix (deterministic given the seed).
        assert!(seen[1] > 1600 && seen[1] < 2500, "drop ≈ 50%: {}", seen[1]);
        assert!(seen[3] > 700 && seen[3] < 1400, "dup ≈ 25%: {}", seen[3]);
    }

    #[test]
    fn hold_release_gates_cooperating_workers() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::benign(3));
        plan.hold();
        let worker = {
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || {
                plan.wait_if_held();
                true
            })
        };
        assert!(plan.is_held());
        // The worker is (or will be) parked; release must wake it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        plan.release();
        assert!(worker.join().unwrap());
        assert!(!plan.is_held());
    }
}
