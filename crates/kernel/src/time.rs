//! Virtual time: the clock every stratum-1 service is driven by.
//!
//! NETKIT-RS runs on simulated time so that experiments are deterministic
//! and independent of host load. [`VirtualClock`] is a monotonically
//! advancing nanosecond counter; [`TimerQueue`] delivers ordered timer
//! expirations against it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// An instant on the simulated timeline, in nanoseconds since start.
///
/// # Examples
///
/// ```
/// use netkit_kernel::time::SimTime;
/// let t = SimTime::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!((t + 500).as_nanos(), 3_500);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds elapsed since `earlier` (saturating).
    pub fn since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, nanos: u64) -> SimTime {
        SimTime(self.0.saturating_add(nanos))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing simulated clock, safely shared across
/// threads.
#[derive(Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `nanos`, returning the new instant.
    pub fn advance(&self, nanos: u64) -> SimTime {
        SimTime(self.nanos.fetch_add(nanos, Ordering::AcqRel) + nanos)
    }

    /// Moves the clock forward to `to` if `to` is later; returns the
    /// current instant either way. The clock never goes backwards.
    pub fn advance_to(&self, to: SimTime) -> SimTime {
        let mut cur = self.nanos.load(Ordering::Acquire);
        while to.0 > cur {
            match self
                .nanos
                .compare_exchange_weak(cur, to.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return to,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtualClock({})", self.now())
    }
}

/// Identifies a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TimerId(u64);

#[derive(PartialEq, Eq)]
struct PendingTimer {
    deadline: SimTime,
    seq: u64,
    id: TimerId,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An ordered queue of timer deadlines against simulated time.
///
/// Ties are broken by arm order, making expiry fully deterministic.
#[derive(Default)]
pub struct TimerQueue {
    heap: Mutex<BinaryHeap<Reverse<PendingTimer>>>,
    next_seq: AtomicU64,
}

impl TimerQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a timer to fire at `deadline`, returning its id.
    pub fn arm(&self, deadline: SimTime) -> TimerId {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = TimerId(seq);
        self.heap
            .lock()
            .push(Reverse(PendingTimer { deadline, seq, id }));
        id
    }

    /// Pops every timer whose deadline is `<= now`, in deadline order.
    pub fn expire(&self, now: SimTime) -> Vec<TimerId> {
        let mut heap = self.heap.lock();
        let mut fired = Vec::new();
        while let Some(Reverse(top)) = heap.peek() {
            if top.deadline > now {
                break;
            }
            fired.push(heap.pop().expect("peeked").0.id);
        }
        fired
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.lock().peek().map(|Reverse(t)| t.deadline)
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// True if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for TimerQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimerQueue({} pending)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(100);
        assert_eq!(clock.now().as_nanos(), 100);
        clock.advance_to(SimTime::from_nanos(50)); // earlier: no-op
        assert_eq!(clock.now().as_nanos(), 100);
        clock.advance_to(SimTime::from_micros(1));
        assert_eq!(clock.now().as_nanos(), 1000);
    }

    #[test]
    fn timers_fire_in_deadline_then_arm_order() {
        let q = TimerQueue::new();
        let late = q.arm(SimTime::from_nanos(200));
        let early_a = q.arm(SimTime::from_nanos(100));
        let early_b = q.arm(SimTime::from_nanos(100));
        assert_eq!(q.next_deadline(), Some(SimTime::from_nanos(100)));
        assert_eq!(q.expire(SimTime::from_nanos(99)), vec![]);
        assert_eq!(q.expire(SimTime::from_nanos(150)), vec![early_a, early_b]);
        assert_eq!(q.expire(SimTime::from_nanos(500)), vec![late]);
        assert!(q.is_empty());
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn concurrent_advance_never_loses_ticks() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = std::sync::Arc::clone(&clock);
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(clock.now().as_nanos(), 4000);
    }
}
