//! # netkit-kernel — stratum-1 substrate
//!
//! The paper's Figure 1 places a *hardware abstraction* stratum at the
//! bottom of every programmable-networking node: "minimal operating
//! system functionality (e.g. threads, memory allocation, and access to
//! network hardware)" whose character "largely determines the QoS
//! capabilities … of the higher strata".
//!
//! This crate is that stratum, simulated:
//!
//! * [`time`] — a deterministic virtual clock and timer queue.
//! * [`exec`] — a cooperative executor with **pluggable, hot-swappable
//!   schedulers** (the paper's thread-management CF).
//! * [`mem`] — quota-policed memory accounting for the resources
//!   meta-model and the footprint experiments.
//! * [`nic`] — simulated NICs with bounded rx/tx rings.
//! * [`ixp`] — an analytic cycle model of the Intel IXP1200
//!   (StrongARM + 6 micro-engines + scratchpad/SRAM/SDRAM hierarchy)
//!   for the component-placement experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod ixp;
pub mod mem;
pub mod nic;
pub mod time;
