//! # netkit-kernel — stratum-1 substrate
//!
//! The paper's Figure 1 places a *hardware abstraction* stratum at the
//! bottom of every programmable-networking node: "minimal operating
//! system functionality (e.g. threads, memory allocation, and access to
//! network hardware)" whose character "largely determines the QoS
//! capabilities … of the higher strata".
//!
//! This crate is that stratum, simulated:
//!
//! * [`time`] — a deterministic virtual clock and timer queue.
//! * [`exec`] — a cooperative executor with **pluggable, hot-swappable
//!   schedulers** (the paper's thread-management CF).
//! * [`mem`] — quota-policed memory accounting for the resources
//!   meta-model and the footprint experiments.
//! * [`nic`] — simulated NICs with bounded multi-queue rx/tx rings
//!   (RSS steering via `inject_rx_rss`, per-worker
//!   `rx_burst_queue`/`tx_burst_queue`).
//! * [`shard`] — the sharded run-to-completion worker-pool runtime
//!   ([`shard::ShardSpec`], [`shard::WorkerPool`]) with the epoch-based
//!   quiesce protocol that keeps reflective reconfiguration atomic
//!   across workers.
//! * [`fault`] — seeded, replayable fault-injection plans
//!   ([`fault::FaultPlan`]: crash-on-nth-packet, wire drop/corrupt/
//!   duplicate, forced ring pressure) shared by the chaos tests and
//!   the sim.
//! * [`task`] — supervised periodic background tasks with idle backoff
//!   ([`task::PeriodicTask`]), the cadence primitive autonomous
//!   control loops run on.
//! * [`ixp`] — an analytic cycle model of the Intel IXP1200
//!   (StrongARM + 6 micro-engines + scratchpad/SRAM/SDRAM hierarchy)
//!   for the component-placement experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod fault;
pub mod ixp;
pub mod mem;
pub mod nic;
pub mod shard;
pub mod task;
pub mod time;
