//! The declarative description layer, end to end: a pipeline written
//! as *data*, compiled to the threaded dataplane, then reconfigured
//! twice through the diff-to-patch compiler — once with a hot
//! param-only patch (zero quiesce epochs), once structurally (exactly
//! one quiesce epoch) — while the description stays the single source
//! of truth.
//!
//! Run with: `cargo run --example declarative_pipeline`

use std::sync::Arc;

use netkit::kernel::shard::ShardSpec;
use netkit::opencom::meta::resources::ResourceManager;
use netkit::packet::batch::PacketBatch;
use netkit::packet::packet::PacketBuilder;
use netkit::router::desc::{Compiler, PipelineDesc};

const WORKERS: usize = 2;

fn burst(flows: u16) -> PacketBatch {
    (0..flows)
        .map(|i| {
            PacketBuilder::udp_v4("10.0.0.5", "203.0.113.9", 20_000 + i, 443)
                .payload_len(64)
                .build()
        })
        .collect()
}

fn main() -> Result<(), netkit::opencom::error::Error> {
    // 1. The topology as data: guard -> conntrack -> NAT44 -> counter
    //    -> discard, plus a control section picking the EWMA decision
    //    core for the autonomous rebalance loop.
    let v1 = PipelineDesc::new("declarative-edge")
        .element_with("guard", "guard", &[("byte_threshold", (4u64 << 20).into())])
        .element_with("ct", "conntrack", &[("capacity", 4_096u64.into())])
        .element_with(
            "nat",
            "nat44",
            &[
                ("external_ip", "192.0.2.1".into()),
                ("port_base", 10_000u16.into()),
            ],
        )
        .element("egress", "counter")
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "ct")
        .edge("ct", "nat")
        .edge("nat", "egress")
        .edge("egress", "sink")
        .control("ewma", &[("alpha", 0.3.into())]);
    println!("-- v1 --------------------------------------------------");
    print!("{}", v1.render());

    // 2. Compile it: every shard of the threaded pipeline replicates
    //    the described graph; the binding remembers what each name
    //    compiled to so later patches can address it.
    let (pipe, mut binding) = Compiler::new().build_sharded(
        &v1,
        ShardSpec::new(WORKERS),
        Arc::new(ResourceManager::new()),
    )?;
    if let Some(ctl) = binding.controller()? {
        println!("decision core: {}", ctl.core_name());
    }

    for _ in 0..8 {
        pipe.dispatch(burst(64));
    }
    pipe.flush();
    println!("v1 carried {} packets", pipe.stats().accepted);

    // 3. A param-only reconfiguration: double the conntrack table.
    //    The diff is a hot swap — the patch has zero structural ops
    //    and (since it never touches the ingress element, whose push
    //    handle the workers hold) applies without a pipeline-wide
    //    quiesce, mid-traffic.
    let v2 = v1.clone().set_param("ct", "capacity", 8_192u64.into());
    let patch = binding.diff_to(&v2)?;
    println!(
        "-- diff v1 -> v2 (param-only: {}) ----------------------",
        patch.param_only()
    );
    print!("{}", patch.render());
    let report = binding.apply_sharded(&pipe, &patch)?;
    assert!(patch.param_only());
    assert_eq!((report.structural, report.epochs), (0, 0));
    println!(
        "applied hot: {} element swap(s) across {} shard(s), {} quiesce epoch(s)",
        report.replaced, report.shards_touched, report.epochs
    );

    // 4. A structural reconfiguration: retire the NAT stage entirely.
    //    The diff unbinds, removes, and rebinds around the gap — and
    //    the applier takes exactly one quiesce epoch to do it without
    //    losing a packet.
    let v3 = PipelineDesc::new("declarative-edge")
        .element_with("guard", "guard", &[("byte_threshold", (4u64 << 20).into())])
        .element_with("ct", "conntrack", &[("capacity", 8_192u64.into())])
        .element("egress", "counter")
        .element("sink", "discard")
        .ingress("guard")
        .edge("guard", "ct")
        .edge("ct", "egress")
        .edge("egress", "sink")
        .control("ewma", &[("alpha", 0.3.into())]);
    let patch = binding.diff_to(&v3)?;
    println!(
        "-- diff v2 -> v3 (structural ops: {}) ------------------",
        patch.structural_ops()
    );
    print!("{}", patch.render());
    let before = pipe.stats().accepted;
    let report = binding.apply_sharded(&pipe, &patch)?;
    assert!(!patch.param_only());
    assert_eq!(
        report.epochs, 1,
        "structural patches take exactly one quiesce epoch"
    );
    println!(
        "applied structurally: {} mutation(s), {} quiesce epoch(s)",
        report.structural, report.epochs
    );

    // 5. Traffic still flows through the narrowed graph, and the
    //    binding has converged on v3: re-diffing is a no-op.
    for _ in 0..8 {
        pipe.dispatch(burst(64));
    }
    pipe.flush();
    let stats = pipe.stats();
    assert_eq!(stats.accepted - before, 8 * 64, "no loss across the patch");
    assert!(binding.diff_to(&v3)?.is_empty());
    println!(
        "v3 carried {} more packets; description and dataplane agree",
        stats.accepted - before
    );

    pipe.shutdown();
    Ok(())
}
