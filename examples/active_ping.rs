//! Stratum 3 in action: **active networking** over the simulated
//! network. Capsule programs (active ping, path collector) travel the
//! topology, execute in each node's sandboxed execution environment, and
//! carry their own state — the ANTS-style workload of paper §3.
//!
//! Run with: `cargo run --example active_ping`

use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use netkit::services::ee::{Capsule, EeBudget, EeError, EmitTarget, ExecutionEnv, NodeInfo};
use netkit::services::programs::{
    active_ping, mcast_capsule_args, multicast_duplicator, path_collector, ping_capsule_args,
};
use netkit::sim::link::LinkSpec;
use netkit::sim::node::{NodeBehaviour, NodeCtx};
use netkit::sim::Simulator;
use netkit_packet::packet::{Packet, PacketBuilder};

/// A sim node hosting an execution environment. Active packets execute;
/// everything else is dropped (this example network carries only
/// capsules).
struct EeNode {
    addr: Ipv4Addr,
    env: ExecutionEnv,
    routes: std::collections::HashMap<Ipv4Addr, u16>,
    delivered: Arc<std::sync::Mutex<Vec<Vec<i64>>>>,
    now: Arc<std::sync::atomic::AtomicU64>,
}

struct EeNodeInfo<'a> {
    addr: Ipv4Addr,
    now: u64,
    routes: &'a std::collections::HashMap<Ipv4Addr, u16>,
}

impl NodeInfo for EeNodeInfo<'_> {
    fn node_id(&self) -> u32 {
        u32::from(self.addr)
    }
    fn now_ns(&self) -> u64 {
        self.now
    }
    fn route_lookup(&self, dst: Ipv4Addr) -> Option<u16> {
        self.routes.get(&dst).copied()
    }
}

impl EeNode {
    fn new(addr: Ipv4Addr) -> (Self, Arc<std::sync::Mutex<Vec<Vec<i64>>>>) {
        let delivered = Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            Self {
                addr,
                env: ExecutionEnv::new(EeBudget::default()),
                routes: std::collections::HashMap::new(),
                delivered: Arc::clone(&delivered),
                now: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            },
            delivered,
        )
    }
}

impl NodeBehaviour for EeNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _ingress: u16, pkt: Packet) {
        self.now.store(ctx.now().as_nanos(), Ordering::Relaxed);
        let Ok(payload) = pkt.udp_payload_v4().map(<[u8]>::to_vec) else {
            ctx.drop_packet(pkt);
            return;
        };
        let info = EeNodeInfo {
            addr: self.addr,
            now: ctx.now().as_nanos(),
            routes: &self.routes,
        };
        match self.env.execute(&payload, &info) {
            Ok(outcome) => {
                if outcome.delivered {
                    self.delivered.lock().unwrap().push(outcome.args.clone());
                    ctx.deliver_local(pkt);
                } else {
                    drop(pkt);
                }
                for (target, bytes) in outcome.emitted {
                    let out_pkt = |dst: Ipv4Addr| {
                        PacketBuilder::udp_v4(&self.addr.to_string(), &dst.to_string(), 3322, 3322)
                            .payload(&bytes)
                            .build()
                    };
                    match target {
                        EmitTarget::Dst(dst) => {
                            if let Some(&port) = self.routes.get(&dst) {
                                ctx.emit(port, out_pkt(dst));
                            }
                        }
                        EmitTarget::Port(p) => ctx.emit(p, out_pkt(self.addr)),
                    }
                }
            }
            Err(EeError::CodeMiss { hash }) => {
                eprintln!(
                    "node {}: code miss for {hash:#x} (capsule dropped)",
                    self.addr
                );
                ctx.drop_packet(pkt);
            }
            Err(e) => {
                eprintln!("node {}: capsule fault contained: {e}", self.addr);
                ctx.drop_packet(pkt);
            }
        }
    }
    fn name(&self) -> &str {
        "ee-node"
    }
}

fn addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i as u8 + 1)
}

fn main() {
    // A 5-node line: 10.0.0.1 — … — 10.0.0.5.
    let n = 5;
    let mut sim = Simulator::new(42);
    let mut handles = Vec::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let (node, delivered) = EeNode::new(addr(i));
        ids.push(sim.add_node(Box::new(node)));
        handles.push(delivered);
    }
    for w in ids.windows(2) {
        sim.connect(w[0], w[1], LinkSpec::lan());
    }
    // Host routes along the line.
    for (i, &node_id) in ids.iter().enumerate() {
        let left = (i > 0).then_some(0u16);
        let right = (i + 1 < n).then_some(if i == 0 { 0u16 } else { 1u16 });
        let behaviour = sim.node_behaviour_mut::<EeNode>(node_id).unwrap();
        for j in 0..n {
            if j < i {
                if let Some(p) = left {
                    behaviour.routes.insert(addr(j), p);
                }
            } else if j > i {
                if let Some(p) = right {
                    behaviour.routes.insert(addr(j), p);
                }
            }
        }
    }

    // Pre-load the programs on every node (out-of-band code
    // distribution; the first capsule could equally carry its own code).
    let ping = active_ping();
    let collector = path_collector();
    let mcast = multicast_duplicator();
    for &id in &ids {
        let node = sim.node_behaviour_mut::<EeNode>(id).unwrap();
        node.env.install(ping.clone());
        node.env.install(collector.clone());
        node.env.install(mcast.clone());
    }

    // 1. Active ping from node 0 to node 4.
    let capsule = Capsule::by_hash(ping.hash(), ping_capsule_args(addr(4), addr(0), 0));
    let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.1", 3322, 3322)
        .payload(&capsule.encode())
        .build();
    sim.inject_after(ids[0], 0, pkt);

    // 2. Path collector from node 0 to node 3.
    let capsule = Capsule::by_hash(collector.hash(), vec![u32::from(addr(3)) as i64]);
    let pkt = PacketBuilder::udp_v4("10.0.0.1", "10.0.0.1", 3322, 3322)
        .payload(&capsule.encode())
        .build();
    sim.inject_after(ids[0], 1_000, pkt);

    // 3. Multicast duplicator from node 2 to nodes {0, 3, 4}.
    let capsule = Capsule::by_hash(
        mcast.hash(),
        mcast_capsule_args(&[addr(0), addr(3), addr(4)]),
    );
    let pkt = PacketBuilder::udp_v4("10.0.0.3", "10.0.0.3", 3322, 3322)
        .payload(&capsule.encode())
        .build();
    sim.inject_after(ids[2], 2_000, pkt);

    let stats = sim.run_to_idle().clone();
    println!("simulation: {stats}");

    // Report deliveries.
    let ping_result: Option<Vec<i64>> = {
        let deliveries = handles[0].lock().unwrap();
        // The ping delivery carries [dst, origin, phase, sent_at, rtt].
        deliveries.iter().find(|args| args.len() == 5).cloned()
    };
    match &ping_result {
        Some(args) => println!(
            "\nactive ping returned to node 1: rtt = {} ns (virtual)",
            args[4]
        ),
        None => println!("\nactive ping did not return"),
    }

    for (i, h) in handles.iter().enumerate() {
        for args in h.lock().unwrap().iter() {
            if args.len() > 2 && args[0] == u32::from(addr(3)) as i64 {
                let path: Vec<String> = args[1..]
                    .iter()
                    .map(|a| Ipv4Addr::from(*a as u32).to_string())
                    .collect();
                println!(
                    "path collector delivered at node {}: {}",
                    i + 1,
                    path.join(" -> ")
                );
            }
        }
    }

    let mcast_receivers: Vec<usize> = handles
        .iter()
        .enumerate()
        .filter(|(_, h)| {
            h.lock()
                .unwrap()
                .iter()
                .any(|args| args.first() == Some(&1))
        })
        .map(|(i, _)| i + 1)
        .collect();
    println!("multicast copies delivered at nodes: {mcast_receivers:?}");
}
