//! Figure 3, in code: the composite component accepted by the Router CF.
//!
//! "protocol recogn → {IPv4 hdr processor, IPv6 hdr processor} →
//! Gw CF instance (queueing) → Gw CF instance (forwarding) → link
//! scheduler", managed by a **controller** that polices topology
//! constraints and IClassifier access through an ACL — then reconfigured
//! live, exactly the paper's §5 story.
//!
//! Run with: `cargo run --example figure3_gateway`

use std::sync::Arc;

use netkit::opencom::binding::TopologyRule;
use netkit::opencom::capsule::{Capsule, Quiescence};
use netkit::opencom::cf::{CfOperation, Principal};
use netkit::opencom::component::Component;
use netkit::opencom::runtime::Runtime;
use netkit::packet::packet::PacketBuilder;
use netkit::router::api::{
    register_packet_interfaces, FilterPattern, FilterSpec, IPacketPull, IPacketPush, IPACKET_PULL,
    IPACKET_PUSH,
};
use netkit::router::cf::RouterCf;
use netkit::router::composite::CompositeBuilder;
use netkit::router::elements::{
    ClassifierEngine, Counter, DropTailQueue, Ipv4Processor, Ipv6Processor, ProtocolRecogniser,
    RedConfig, RedQueue, WfqScheduler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rt = Runtime::new();
    register_packet_interfaces(&rt);
    let capsule = Capsule::new("gateway-node", &rt);
    let admin = Principal::new("admin");

    // ---- build the Fig-3 composite -----------------------------------
    let composite = CompositeBuilder::new("netkit.Gateway", Arc::clone(&capsule))
        .owner(admin.clone())
        .add("recogniser", ProtocolRecogniser::new())?
        .add("ipv4", Ipv4Processor::new())?
        .add("ipv6", Ipv6Processor::new())?
        .add("classifier", ClassifierEngine::new())?
        .add("queueing", DropTailQueue::new(128))?
        .add("forwarding", Counter::new())?
        .add("link-sched", WfqScheduler::new(&[("main", 1.0)]))?
        // protocol recogniser fans out by protocol (Fig. 3's left edge)
        .wire("recogniser", "out", "ipv4", "ipv4", IPACKET_PUSH)
        .wire("recogniser", "out", "ipv6", "ipv6", IPACKET_PUSH)
        // both header processors feed the classifier stage
        .wire("ipv4", "out", "", "classifier", IPACKET_PUSH)
        .wire("ipv6", "out", "", "classifier", IPACKET_PUSH)
        // classified traffic lands in the queueing stage
        .wire("classifier", "out", "default", "queueing", IPACKET_PUSH)
        // the link scheduler drains the queue
        .wire("link-sched", "in", "main", "queueing", IPACKET_PULL)
        .ingress("recogniser")
        .egress("link-sched")
        .classifier("classifier")
        .build()?;

    println!("built composite: {composite:?}");

    // ---- the composite satisfies the Router CF recursively (R3) ------
    let outer = RouterCf::new("node-router", Arc::clone(&capsule));
    outer.plug(&Principal::system(), composite.core().id())?;
    println!("outer Router CF admitted the composite (rule R3)");

    // ---- controller: constraints policed by an ACL --------------------
    let controller = composite.controller();
    controller.grant(&admin, admin.clone(), CfOperation::AddConstraint)?;
    controller.grant(&admin, admin.clone(), CfOperation::Bind)?;
    controller.grant(&admin, admin.clone(), CfOperation::Replace)?;
    controller.grant(&admin, admin.clone(), CfOperation::Intercept)?;

    // Forbid wiring the recogniser straight into the queue (must go
    // through a header processor).
    controller.add_constraint(
        &admin,
        TopologyRule::Forbid(
            "netkit.ProtocolRecogniser".into(),
            "netkit.DropTailQueue".into(),
        )
        .into_constraint(),
    )?;
    let veto = controller.rewire(
        &admin,
        "recogniser",
        "out",
        "shortcut",
        "queueing",
        IPACKET_PUSH,
    );
    println!("constraint vetoed the shortcut: {}", veto.unwrap_err());

    // ---- classifier access through the controller (Fig. 3 arrow) -----
    let classifier = controller.classifier(&admin, "classifier")?;
    classifier.register_filter(FilterSpec::new(
        FilterPattern::any().dscp(46),
        "default", // EF traffic would get its own queue in a real config
        100,
    ))?;
    println!(
        "installed {} filters via ACL-gated IClassifier",
        classifier.filters().len()
    );

    // ---- run traffic through the composite ----------------------------
    for i in 0..6u16 {
        composite.push(
            PacketBuilder::udp_v4("192.0.2.1", "203.0.113.9", 1_000 + i, 7_000)
                .dscp(if i % 2 == 0 { 46 } else { 0 })
                .build(),
        )?;
        composite
            .push(PacketBuilder::udp_v6("2001:db8::1", "2001:db8::2", 1_000 + i, 7_000).build())?;
    }
    let mut drained = 0;
    while composite.pull().is_some() {
        drained += 1;
    }
    println!("composite forwarded {drained} packets end to end");

    // ---- hot-replace the queueing stage under the controller ----------
    let red = capsule.adopt(RedQueue::new(RedConfig::default()))?;
    controller.replace(&admin, "queueing", red, Quiescence::FullGraph)?;
    println!("controller hot-replaced drop-tail with RED");

    composite.push(PacketBuilder::udp_v4("192.0.2.1", "203.0.113.9", 9, 9).build())?;
    assert!(composite.pull().is_some(), "data path alive after the swap");

    // ---- introspection -------------------------------------------------
    println!("\nconstituents:");
    for (label, id) in controller.constituents() {
        println!("  {label:>12} -> {id}");
    }
    println!("\ncapsule graph:\n{}", capsule.to_dot());
    Ok(())
}
