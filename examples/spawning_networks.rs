//! Stratum 4 in action: **spawning networks** (Genesis) and **RSVP-style
//! reservations** — "out-of-band signaling protocols that perform
//! distributed coordination and (re)configuration of the lower strata"
//! (paper §3), with each virtual network realised as per-node virtual
//! routers built from real Router-CF components (paper §7).
//!
//! Run with: `cargo run --example spawning_networks`

use std::net::Ipv4Addr;

use netkit::router::api::IPacketPull;
use netkit::signaling::genesis::{Genesis, VirtnetDescriptor};
use netkit::signaling::rsvp::{FlowSpec, RsvpAgent, RsvpConfig, RsvpEvent, SessionId};
use netkit::sim::link::LinkSpec;
use netkit::sim::Simulator;
use netkit_packet::packet::PacketBuilder;

fn addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i as u8 + 1)
}

fn main() {
    // ---- Part 1: Genesis spawning over a 6-node line substrate --------
    let n = 6;
    let adjacency: Vec<Vec<(u16, usize)>> = (0..n)
        .map(|i| {
            let mut links = Vec::new();
            if i > 0 {
                links.push((0u16, i - 1));
            }
            if i + 1 < n {
                links.push((if i > 0 { 1u16 } else { 0u16 }, i + 1));
            }
            links
        })
        .collect();

    let mut genesis = Genesis::new(adjacency);

    // A "gold" virtnet over all six nodes with 70% of the links, and a
    // "best-effort" one over the middle four with the rest.
    let (gold, gold_report) = genesis
        .spawn(
            VirtnetDescriptor::new("gold", Ipv4Addr::new(10, 99, 0, 0), 24).share(0.7),
            &[0, 1, 2, 3, 4, 5],
        )
        .expect("gold spawns");
    let (be, be_report) = genesis
        .spawn(
            VirtnetDescriptor::new("best-effort", Ipv4Addr::new(10, 77, 0, 0), 24).share(0.3),
            &[1, 2, 3, 4],
        )
        .expect("best-effort spawns");

    println!("spawned `gold`:       {gold_report:?}");
    println!("spawned `best-effort`: {be_report:?}");

    // A child virtnet nested inside gold (Genesis nesting).
    let (child, child_report) = genesis
        .spawn_child(
            gold,
            VirtnetDescriptor::new("gold-video", Ipv4Addr::new(10, 88, 0, 0), 24).share(0.5),
            &[2, 3, 4],
        )
        .expect("child spawns");
    println!("spawned nested `gold-video`: {child_report:?}");
    println!(
        "effective shares: gold={:.2} best-effort={:.2} gold-video={:.2}",
        genesis.effective_share(gold).unwrap(),
        genesis.effective_share(be).unwrap(),
        genesis.effective_share(child).unwrap(),
    );

    // Traffic inside each virtnet routes on *virtual* addresses; the
    // shared substrate port is drained by one WFQ link scheduler.
    let pkt_gold = PacketBuilder::udp_v4("10.99.0.2", "10.99.0.5", 5, 5).build();
    let (port, _) = genesis.forward(gold, 1, pkt_gold).expect("gold forwards");
    println!("gold packet at node 1 leaves on substrate port {port}");

    let pkt_be = PacketBuilder::udp_v4("10.77.0.1", "10.77.0.4", 5, 5).build();
    let (port, _) = genesis
        .forward(be, 1, pkt_be)
        .expect("best-effort forwards");
    println!("best-effort packet at node 1 leaves on substrate port {port}");

    // Show the shared scheduler interleaving both virtnets by share.
    let sched = genesis.link_scheduler(1, 1).expect("shared scheduler");
    genesis
        .router(gold, 1)
        .unwrap()
        .push(PacketBuilder::udp_v4("10.99.0.2", "10.99.0.5", 1, 1).build())
        .unwrap();
    genesis
        .router(be, 1)
        .unwrap()
        .push(PacketBuilder::udp_v4("10.77.0.1", "10.77.0.4", 1, 1).build())
        .unwrap();
    let mut served = 0;
    while sched.pull().is_some() {
        served += 1;
    }
    println!("shared WFQ link scheduler drained {served} packets from 2 virtnets");

    // Teardown: children first (the controller refuses otherwise).
    assert!(genesis.teardown(gold).is_err(), "children must go first");
    genesis.teardown(child).unwrap();
    genesis.teardown(gold).unwrap();
    genesis.teardown(be).unwrap();
    println!("virtnets torn down cleanly\n");

    // ---- Part 2: RSVP reservation over the simulated network ----------
    let hops = 4;
    let mut sim = Simulator::new(7);
    let mut ids = Vec::new();
    for i in 0..=hops {
        let agent = RsvpAgent::new(addr(i), RsvpConfig::default());
        ids.push(sim.add_node(Box::new(agent)));
    }
    for w in ids.windows(2) {
        sim.connect(w[0], w[1], LinkSpec::lan());
    }
    for (i, &node) in ids.iter().enumerate() {
        let left = (i > 0).then_some(0u16);
        let right = (i < hops).then_some(if i == 0 { 0u16 } else { 1u16 });
        let agent = sim.node_behaviour_mut::<RsvpAgent>(node).unwrap();
        for j in 0..=hops {
            if j < i {
                if let Some(p) = left {
                    agent.route(addr(j), p);
                }
            } else if j > i {
                if let Some(p) = right {
                    agent.route(addr(j), p);
                }
            }
        }
        for p in [left, right].into_iter().flatten() {
            agent.budget(p, 10_000_000); // 10 Mbit/s reservable per port
        }
    }

    let session = SessionId(1);
    sim.node_behaviour_mut::<RsvpAgent>(ids[0])
        .unwrap()
        .open_session(
            session,
            addr(hops),
            FlowSpec {
                bandwidth_bps: 2_000_000,
            },
        );
    // Kick the sender's timers with any packet.
    sim.inject_after(
        ids[0],
        0,
        PacketBuilder::udp_v4("10.9.9.9", "10.9.9.8", 1, 1).build(),
    );
    sim.run_for(200_000_000);

    let sender = sim.node_behaviour_mut::<RsvpAgent>(ids[0]).unwrap();
    let events = sender.take_events();
    println!("sender events: {events:?}");
    assert!(events.contains(&RsvpEvent::Established(session)));
    for (i, &id) in ids.iter().enumerate().skip(1).take(hops - 1) {
        let agent = sim.node_behaviour_mut::<RsvpAgent>(id).unwrap();
        println!(
            "node {}: reserved sessions {:?}, {} bps allocated towards the receiver",
            i + 1,
            agent.reserved_sessions(),
            agent.allocated_on(1),
        );
    }
    println!("reservation established over {hops} hops");
}
