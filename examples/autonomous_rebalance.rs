//! The reflective loop, closed: a `ControlLoop` watches a sharded
//! pipeline and corrects a skewed placement **with no external
//! rebalance caller** — the example never invokes `rebalance()`.
//!
//! A 4-worker pipeline starts under the identity RSS table. The
//! offered load is pathological: one elephant flow plus seven mice
//! whose buckets all steer to shard 0, so statically one worker
//! carries 100% of the traffic. The spawned control loop ticks every
//! millisecond, peeks the decay-based observation window, weighs in
//! ring pressure, and — once the evidence clears the policy gates —
//! installs a better table through the epoch-quiesce migration. The
//! example just offers traffic and watches the per-shard spread flip.
//!
//! Run with: `cargo run --example autonomous_rebalance`

use std::sync::Arc;
use std::time::{Duration, Instant};

use netkit::kernel::shard::ShardSpec;
use netkit::opencom::capsule::Capsule;
use netkit::opencom::meta::resources::{classes, ResourceManager};
use netkit::opencom::runtime::Runtime;
use netkit::packet::batch::PacketBatch;
use netkit::packet::packet::PacketBuilder;
use netkit::router::api::register_packet_interfaces;
use netkit::router::elements::{Counter, Discard};
use netkit::router::shard::control::{ControlConfig, ControlLoop};
use netkit::router::shard::{
    RebalancePolicy, ShardGraph, ShardedPipeline, WeightedRebalancePolicy,
};
use netkit::router::IPACKET_PUSH;

const WORKERS: usize = 4;

fn main() -> Result<(), netkit::opencom::error::Error> {
    let rm = Arc::new(ResourceManager::new());
    let pipe = Arc::new(ShardedPipeline::build(
        "dataplane",
        ShardSpec::new(WORKERS),
        Arc::clone(&rm),
        |shard| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new(format!("worker-{shard}"), &rt);
            let head = Counter::new();
            let sink = Discard::new();
            let hid = capsule.adopt(head.clone())?;
            let sid = capsule.adopt(sink)?;
            capsule.bind_simple(hid, "out", sid, IPACKET_PUSH)?;
            Ok(ShardGraph::new(Arc::clone(&capsule), head).with_components(vec![hid, sid]))
        },
    )?);

    // The autonomous control plane: tick every 1ms, back off to 16ms
    // while there is nothing to do, at most one migration per 4 ticks.
    let ctl = ControlLoop::spawn(
        "dataplane-control",
        Arc::clone(&pipe),
        Vec::new(),
        ControlConfig {
            policy: WeightedRebalancePolicy {
                base: RebalancePolicy {
                    max_imbalance: 1.25,
                    min_samples: 64,
                },
                pressure_weight: 1.0,
                decay: 0.75,
            },
            tick: Duration::from_millis(1),
            max_tick: Duration::from_millis(16),
            backoff: 2.0,
            cooldown_ticks: 4,
            heavy_blend: 0.0,
        },
        Arc::clone(&rm),
    )?;

    // The pathological offered load: an elephant (bucket 0, 50% of
    // packets) plus seven mice on buckets ≡ 0 (mod 4) — everything
    // steers to shard 0 under the identity table.
    let skewed_burst = || -> PacketBatch {
        (0..32u64)
            .map(|i| {
                let mut p = PacketBuilder::udp_v4("10.0.0.1", "10.9.9.9", 9, 9).build();
                p.meta.rss_hash = Some(if i % 2 == 0 { 0 } else { 4 * (1 + i % 7) });
                p
            })
            .collect()
    };

    let spread = |pipe: &ShardedPipeline| -> Vec<u64> {
        (0..WORKERS).map(|s| pipe.shard_stats(s).packets).collect()
    };

    // Offer load until the loop has acted (bounded: ~4s worst case).
    let deadline = Instant::now() + Duration::from_secs(4);
    let mut bursts = 0u64;
    while ctl.stats().migrations == 0 && Instant::now() < deadline {
        pipe.dispatch(skewed_burst());
        pipe.flush();
        bursts += 1;
        std::thread::sleep(Duration::from_micros(500));
    }
    let before = spread(&pipe);
    println!("skewed spread (before the loop acted) : {before:?}");

    // Same traffic again: the loop has rewritten the table by now.
    let base = spread(&pipe);
    for _ in 0..bursts.max(8) {
        pipe.dispatch(skewed_burst());
        pipe.flush();
    }
    let after: Vec<u64> = spread(&pipe)
        .iter()
        .zip(&base)
        .map(|(a, b)| a - b)
        .collect();
    println!("same offered load after adaptation    : {after:?}");

    let stats = ctl.stats();
    println!(
        "control loop: {} ticks, {} migrations, {} holds, next tick in {:?}",
        stats.ticks, stats.migrations, stats.holds, stats.current_interval
    );

    // The adaptation trail on the resources meta-model: the loop's own
    // task counts inspections, the pipeline's task counts migrations.
    let ctl_info = rm.task_info(ctl.task())?;
    let pipe_info = rm.task_info(pipe.task())?;
    println!(
        "reflection: task `{}` consumed {} {}, task `{}` consumed {} {}",
        ctl_info.name,
        ctl_info.usage[classes::TICKS],
        classes::TICKS,
        pipe_info.name,
        pipe_info.usage[classes::REBALANCES],
        classes::REBALANCES,
    );

    assert!(stats.migrations >= 1, "the loop alone must have acted");
    let busy = after.iter().filter(|&&n| n > 0).count();
    assert!(
        busy > 1,
        "adapted placement must spread the mice: {after:?}"
    );

    let final_ctl = ctl.stop();
    let final_stats = Arc::try_unwrap(pipe).expect("sole owner").shutdown();
    println!(
        "shutdown: {final_stats:?} after {} autonomous migrations",
        final_ctl.migrations
    );
    Ok(())
}
