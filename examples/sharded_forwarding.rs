//! Sharded multi-core forwarding with an atomic hot reconfiguration.
//!
//! Builds a 4-worker `ShardedPipeline` (each worker owning a replica of
//! a counter→sink graph), RSS-dispatches a few thousand packets across
//! 64 flows, hot-swaps every replica's head inside one epoch quiesce,
//! and shows the single logical reflection surface: one resources task
//! whose rolled-up usage covers all workers.
//!
//! Run with: `cargo run --example sharded_forwarding`

use std::sync::Arc;

use netkit::kernel::shard::ShardSpec;
use netkit::opencom::capsule::Capsule;
use netkit::opencom::meta::resources::{classes, ResourceManager};
use netkit::opencom::runtime::Runtime;
use netkit::packet::batch::PacketBatch;
use netkit::packet::packet::PacketBuilder;
use netkit::router::api::register_packet_interfaces;
use netkit::router::elements::{Counter, Discard};
use netkit::router::shard::{ShardGraph, ShardedPipeline};
use netkit::router::IPACKET_PUSH;

fn main() -> Result<(), netkit::opencom::error::Error> {
    let rm = Arc::new(ResourceManager::new());
    let spec = ShardSpec::new(4);

    // One graph replica per worker: Counter -> Discard, in its own
    // capsule, admitted to no shared state at all.
    let sinks = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sinks_slot = Arc::clone(&sinks);
    let pipe = ShardedPipeline::build("example-dataplane", spec, Arc::clone(&rm), move |shard| {
        let rt = Runtime::new();
        register_packet_interfaces(&rt);
        let capsule = Capsule::new(format!("worker-{shard}"), &rt);
        let head = Counter::new();
        let sink = Discard::new();
        let hid = capsule.adopt(head.clone())?;
        let sid = capsule.adopt(sink.clone())?;
        capsule.bind_simple(hid, "out", sid, IPACKET_PUSH)?;
        sinks_slot.lock().push(sink);
        Ok(ShardGraph::new(Arc::clone(&capsule), head).with_components(vec![hid, sid]))
    })?;

    let burst = |round: u16| -> PacketBatch {
        (0..256u16)
            .map(|i| {
                PacketBuilder::udp_v4("10.0.0.1", "10.9.9.9", 4000 + (i % 64), 5000 + round).build()
            })
            .collect()
    };

    // Phase 1: forward under the original graphs.
    for round in 0..8 {
        pipe.dispatch(burst(round));
    }
    pipe.flush();
    println!("phase 1: {:?}", pipe.stats());

    // Atomic reconfiguration: retarget every worker's ingress to a
    // fresh head inside one epoch quiesce — no worker ever runs a
    // half-reconfigured dataplane, and queued traffic is preserved.
    let fresh_heads: Vec<Arc<Counter>> = (0..pipe.workers()).map(|_| Counter::new()).collect();
    pipe.quiesce(|| {
        for (shard, head) in fresh_heads.iter().enumerate() {
            pipe.set_entry(shard, head.clone());
        }
    });

    // Phase 2: forward under the swapped graphs.
    for round in 8..16 {
        pipe.dispatch(burst(round));
    }
    pipe.flush();

    let swapped: u64 = fresh_heads.iter().map(|c| c.count()).sum();
    println!(
        "phase 2: {:?} ({} via swapped heads)",
        pipe.stats(),
        swapped
    );

    // One logical component to reflection: a single task, usage rolled
    // up across all four workers.
    let info = rm.task_info(pipe.task())?;
    println!(
        "reflection sees task `{}` with {} packets over {} attached components",
        info.name,
        info.usage[classes::PACKETS],
        info.attached.len()
    );

    let per_shard: Vec<u64> = (0..pipe.workers())
        .map(|s| pipe.shard_stats(s).packets)
        .collect();
    println!("per-shard packet counts (flow-affine spread): {per_shard:?}");

    let stats = pipe.shutdown();
    assert_eq!(stats.packets, 16 * 256);
    assert_eq!(stats.dropped, 0);
    println!("shutdown: {stats:?}");
    Ok(())
}
