//! The stateful services layer on the sharded dataplane: every
//! replica runs its own conntrack → L4 load-balancer chain, with
//! per-shard single-writer flow tables — no shared state, no
//! cross-shard locks, because the canonical flow key pins both
//! directions of a connection to one shard.
//!
//! 64 client flows hit one VIP across a 2-worker pipeline. Each
//! shard's `ConnTracker` admits only the flows steered to it; the
//! shard-local `L4LoadBalancer` pins each flow to a backend by
//! rendezvous hashing, which is stable across shards — the same flow
//! would pick the same backend no matter where steering lands it.
//!
//! Run with: `cargo run --example stateful_services`

use std::sync::Arc;

use netkit::kernel::shard::ShardSpec;
use netkit::opencom::capsule::Capsule;
use netkit::opencom::meta::resources::ResourceManager;
use netkit::opencom::runtime::Runtime;
use netkit::packet::batch::PacketBatch;
use netkit::packet::packet::PacketBuilder;
use netkit::router::api::register_packet_interfaces;
use netkit::router::elements::Discard;
use netkit::router::flow::{ConnTracker, L4LoadBalancer};
use netkit::router::shard::{ShardGraph, ShardedPipeline};
use netkit::router::IPACKET_PUSH;

const WORKERS: usize = 2;
const FLOWS: u16 = 64;
const PACKETS_PER_FLOW: usize = 8;

fn main() -> Result<(), netkit::opencom::error::Error> {
    let rm = Arc::new(ResourceManager::new());

    // Keep handles to every shard's stateful elements so the control
    // plane can introspect them after traffic has run.
    let trackers: Arc<parking_lot::Mutex<Vec<Arc<ConnTracker>>>> = Arc::default();
    let balancers: Arc<parking_lot::Mutex<Vec<Arc<L4LoadBalancer>>>> = Arc::default();

    let (t2, b2) = (Arc::clone(&trackers), Arc::clone(&balancers));
    let pipe = ShardedPipeline::build(
        "stateful-edge",
        ShardSpec::new(WORKERS),
        Arc::clone(&rm),
        move |shard| {
            let rt = Runtime::new();
            register_packet_interfaces(&rt);
            let capsule = Capsule::new(format!("worker-{shard}"), &rt);

            // conntrack -> lb -> sink, one private chain per replica.
            let tracker = ConnTracker::new();
            let lb = L4LoadBalancer::new("10.0.7.9".parse().unwrap(), 443, 4096, u64::MAX);
            for backend in 1..=4u8 {
                lb.add_backend(format!("10.1.0.{backend}").parse().unwrap(), 8080);
            }
            let sink = Discard::new();
            let tid = capsule.adopt(tracker.clone())?;
            let lid = capsule.adopt(lb.clone())?;
            let sid = capsule.adopt(sink)?;
            capsule.bind_simple(tid, "out", lid, IPACKET_PUSH)?;
            capsule.bind_simple(lid, "out", sid, IPACKET_PUSH)?;

            t2.lock().push(tracker.clone());
            b2.lock().push(lb);
            Ok(ShardGraph::new(Arc::clone(&capsule), tracker).with_components(vec![tid, lid, sid]))
        },
    )?;

    // 64 distinct client flows, all aimed at the VIP.
    for _ in 0..PACKETS_PER_FLOW {
        let burst: PacketBatch = (0..FLOWS)
            .map(|i| {
                PacketBuilder::udp_v4("192.0.2.7", "10.0.7.9", 10_000 + i, 443)
                    .payload_len(64)
                    .build()
            })
            .collect();
        pipe.dispatch(burst);
    }
    pipe.flush();

    let trackers = trackers.lock();
    let balancers = balancers.lock();
    let mut tracked = 0;
    for shard in 0..WORKERS {
        let t = &trackers[shard];
        tracked += t.len();
        println!(
            "shard {shard}: {} connections tracked ({} B table footprint)",
            t.len(),
            t.footprint_bytes(),
        );
        for b in balancers[shard].backends() {
            println!(
                "  backend {}:{} — {} flows, {} packets",
                b.ip, b.port, b.flows, b.packets
            );
        }
    }
    assert_eq!(tracked, FLOWS as usize, "every flow tracked exactly once");
    let (balanced, _, _) = balancers.iter().fold((0, 0, 0), |acc, b| {
        let (x, y, z) = b.counters();
        (acc.0 + x, acc.1 + y, acc.2 + z)
    });
    println!("total: {tracked} connections across {WORKERS} shards, {balanced} packets balanced");
    pipe.shutdown();
    Ok(())
}
