//! The stateful services layer on the sharded dataplane — written as a
//! *description*, not as hand-built topology code.
//!
//! Earlier revisions of this example adopted and bound every element
//! by hand (capsule per shard, adopt conntrack, adopt balancer, bind
//! the edges, register the backends). All of that is now five lines of
//! data: a [`PipelineDesc`] with a conntrack → L4 load-balancer →
//! discard chain and a VIP backend table, compiled through the same
//! factory path. Every replica still runs its own chain with per-shard
//! single-writer flow tables — no shared state, no cross-shard locks,
//! because the canonical flow key pins both directions of a connection
//! to one shard.
//!
//! The description stays live after the build: the example grows the
//! backend set *mid-traffic* by diffing against an amended description
//! — a pure table patch, zero structural ops, no quiesce.
//!
//! Run with: `cargo run --example stateful_services`

use std::sync::Arc;

use netkit::kernel::shard::ShardSpec;
use netkit::opencom::meta::resources::ResourceManager;
use netkit::packet::batch::PacketBatch;
use netkit::packet::packet::PacketBuilder;
use netkit::router::desc::{Compiler, ElementHandle, PipelineDesc, TableEntry};

const WORKERS: usize = 2;
const FLOWS: u16 = 64;
const PACKETS_PER_FLOW: usize = 8;

/// conntrack -> lb -> sink, with `backends` servers behind the VIP.
fn edge_desc(backends: u8) -> PipelineDesc {
    let mut d = PipelineDesc::new("stateful-edge")
        .element_with("ct", "conntrack", &[("capacity", 4_096u64.into())])
        .element_with(
            "lb",
            "l4lb",
            &[("vip", "10.0.7.9".into()), ("vport", 443u16.into())],
        )
        .element("sink", "discard")
        .ingress("ct")
        .edge("ct", "lb")
        .edge("lb", "sink");
    for backend in 1..=backends {
        d = d.table(
            "lb",
            TableEntry::Backend {
                ip: format!("10.1.0.{backend}"),
                port: 8080,
            },
        );
    }
    d
}

fn burst(sport_base: u16) -> PacketBatch {
    (0..FLOWS)
        .map(|i| {
            PacketBuilder::udp_v4("192.0.2.7", "10.0.7.9", sport_base + i, 443)
                .payload_len(64)
                .build()
        })
        .collect()
}

fn main() -> Result<(), netkit::opencom::error::Error> {
    // 64 client flows hit one VIP across a 2-worker pipeline; each
    // shard's balancer pins its flows to backends by rendezvous
    // hashing, which is stable across shards.
    let v1 = edge_desc(4);
    let (pipe, mut binding) = Compiler::new().build_sharded(
        &v1,
        ShardSpec::new(WORKERS),
        Arc::new(ResourceManager::new()),
    )?;

    for _ in 0..PACKETS_PER_FLOW {
        pipe.dispatch(burst(10_000));
    }
    pipe.flush();

    // The binding resolves description names to live control handles,
    // so introspection needs no element references of its own.
    let mut balanced_flows = 0;
    for shard in 0..WORKERS {
        binding
            .with_shard(shard, |cs| {
                let Some(ElementHandle::Lb(lb)) = cs.handle_of("lb") else {
                    panic!("`lb` compiled to a balancer");
                };
                for b in lb.backends() {
                    balanced_flows += b.flows;
                    println!(
                        "shard {shard}: backend {}:{} — {} flows, {} packets",
                        b.ip, b.port, b.flows, b.packets
                    );
                }
            })
            .expect("shard exists");
    }
    assert_eq!(
        balanced_flows,
        u64::from(FLOWS),
        "every flow balanced exactly once"
    );

    // Grow the backend set mid-traffic: amend the description, diff,
    // apply. A backend addition is a pure table op — no structure, no
    // quiesce.
    let v2 = edge_desc(5);
    let patch = binding.diff_to(&v2)?;
    assert!(patch.param_only());
    let report = binding.apply_sharded(&pipe, &patch)?;
    assert_eq!(
        (report.structural, report.epochs, report.table_ops),
        (0, 0, WORKERS),
        "one table upsert per shard, nothing else"
    );
    println!(
        "grew VIP pool to 5 backends: {} table ops ({WORKERS} shards), 0 quiesce epochs",
        report.table_ops
    );

    // Existing flows keep their affinity; a second wave of *new*
    // flows sees the widened pool, and rendezvous hashing hands the
    // newcomer its share.
    for _ in 0..PACKETS_PER_FLOW {
        pipe.dispatch(burst(20_000));
    }
    pipe.flush();

    let mut on_new_backend = 0;
    for shard in 0..WORKERS {
        binding.with_shard(shard, |cs| {
            if let Some(ElementHandle::Lb(lb)) = cs.handle_of("lb") {
                on_new_backend += lb
                    .backends()
                    .iter()
                    .filter(|b| b.ip.octets()[3] == 5)
                    .map(|b| b.flows)
                    .sum::<u64>();
            }
        });
    }
    assert!(
        on_new_backend > 0,
        "the new backend takes a share of new flows"
    );
    println!("rendezvous hashing handed {on_new_backend} of the new flows to the new backend");

    let stats = pipe.stats();
    assert_eq!(
        stats.accepted,
        2 * (PACKETS_PER_FLOW as u64) * u64::from(FLOWS),
        "no loss across the live patch"
    );
    println!(
        "total: {} packets balanced across {WORKERS} shards, description and dataplane agree",
        stats.accepted
    );
    pipe.shutdown();
    Ok(())
}
